//! Loss functions and their output-layer gradients.

use cdl_tensor::{ops, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::Result;

/// A training objective.
///
/// * [`Loss::Mse`] — mean squared error against a one-hot target; this is
///   what the paper (following R. Palm's convolutional backprop toolbox)
///   uses for both the baseline DLN and the "least mean square rule" that
///   trains the linear classifiers.
/// * [`Loss::SoftmaxCrossEntropy`] — treats the network output as logits;
///   provided for ablations against the modern default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// `L = 1/n Σ (y_i - t_i)²`.
    Mse,
    /// `L = -Σ t_i log softmax(y)_i`.
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Scalar loss for one sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when output/target lengths differ or
    /// are empty.
    pub fn value(self, output: &Tensor, target: &Tensor) -> Result<f32> {
        check_pair(output, target)?;
        match self {
            Loss::Mse => {
                let n = output.len() as f32;
                let se: f32 = output
                    .data()
                    .iter()
                    .zip(target.data())
                    .map(|(&y, &t)| (y - t) * (y - t))
                    .sum();
                Ok(se / n)
            }
            Loss::SoftmaxCrossEntropy => {
                let p = ops::softmax(output);
                let mut loss = 0.0f32;
                for (&pi, &ti) in p.data().iter().zip(target.data()) {
                    if ti > 0.0 {
                        loss -= ti * pi.max(1e-12).ln();
                    }
                }
                Ok(loss)
            }
        }
    }

    /// Gradient of the loss w.r.t. the network output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when output/target lengths differ or
    /// are empty.
    pub fn gradient(self, output: &Tensor, target: &Tensor) -> Result<Tensor> {
        check_pair(output, target)?;
        match self {
            Loss::Mse => {
                let n = output.len() as f32;
                Ok(ops::zip_with(output, target, move |y, t| {
                    2.0 * (y - t) / n
                })?)
            }
            Loss::SoftmaxCrossEntropy => {
                let p = ops::softmax(output);
                Ok(ops::sub(&p, target)?)
            }
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Loss::Mse => "mse",
            Loss::SoftmaxCrossEntropy => "softmax-ce",
        }
    }
}

fn check_pair(output: &Tensor, target: &Tensor) -> Result<()> {
    if output.is_empty() {
        return Err(NnError::BadConfig("loss on empty output".into()));
    }
    if output.len() != target.len() {
        return Err(NnError::BadConfig(format!(
            "loss output/target length mismatch: {} vs {}",
            output.len(),
            target.len()
        )));
    }
    Ok(())
}

/// Builds a one-hot target vector of `classes` entries with `label` set hot.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] if `label >= classes`.
pub fn one_hot(label: usize, classes: usize) -> Result<Tensor> {
    if label >= classes {
        return Err(NnError::BadConfig(format!(
            "label {label} out of range for {classes} classes"
        )));
    }
    let mut t = Tensor::zeros(&[classes]);
    t.data_mut()[label] = 1.0;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    #[test]
    fn mse_perfect_prediction_is_zero() {
        let y = t(vec![0.0, 1.0, 0.0]);
        assert_eq!(Loss::Mse.value(&y, &y).unwrap(), 0.0);
        let g = Loss::Mse.gradient(&y, &y).unwrap();
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value() {
        let y = t(vec![1.0, 0.0]);
        let tgt = t(vec![0.0, 0.0]);
        assert!((Loss::Mse.value(&y, &tgt).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ce_prefers_correct_class() {
        let tgt = one_hot(0, 3).unwrap();
        let good = t(vec![5.0, 0.0, 0.0]);
        let bad = t(vec![0.0, 5.0, 0.0]);
        let lg = Loss::SoftmaxCrossEntropy.value(&good, &tgt).unwrap();
        let lb = Loss::SoftmaxCrossEntropy.value(&bad, &tgt).unwrap();
        assert!(lg < lb);
    }

    /// Finite-difference check of both gradients.
    #[test]
    fn gradients_match_finite_difference() {
        let tgt = one_hot(1, 4).unwrap();
        for loss in [Loss::Mse, Loss::SoftmaxCrossEntropy] {
            let mut y = t(vec![0.3, -0.2, 0.8, 0.1]);
            let g = loss.gradient(&y, &tgt).unwrap();
            let eps = 1e-3;
            for i in 0..y.len() {
                let orig = y.data()[i];
                y.data_mut()[i] = orig + eps;
                let lp = loss.value(&y, &tgt).unwrap();
                y.data_mut()[i] = orig - eps;
                let lm = loss.value(&y, &tgt).unwrap();
                y.data_mut()[i] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - g.data()[i]).abs() < 1e-2,
                    "{}: i={i} fd={fd} g={}",
                    loss.name(),
                    g.data()[i]
                );
            }
        }
    }

    #[test]
    fn validation() {
        let y = t(vec![1.0, 2.0]);
        let bad = t(vec![1.0]);
        assert!(Loss::Mse.value(&y, &bad).is_err());
        assert!(Loss::Mse.gradient(&y, &bad).is_err());
        assert!(Loss::Mse
            .value(&Tensor::default(), &Tensor::default())
            .is_err());
    }

    #[test]
    fn one_hot_works() {
        let t = one_hot(2, 4).unwrap();
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 0.0]);
        assert!(one_hot(4, 4).is_err());
    }

    #[test]
    fn ce_loss_is_never_negative() {
        let tgt = one_hot(0, 3).unwrap();
        for logits in [
            vec![0.0, 0.0, 0.0],
            vec![10.0, -10.0, 0.0],
            vec![-5.0, 5.0, 5.0],
        ] {
            let l = Loss::SoftmaxCrossEntropy.value(&t(logits), &tgt).unwrap();
            assert!(l >= 0.0);
        }
    }
}
