//! Concrete [`crate::Layer`] implementations.

mod act;
mod conv;
mod dense;
mod flatten;
mod pool;

pub use act::ActivationLayer;
pub use conv::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::{MaxPool2d, MeanPool2d};
