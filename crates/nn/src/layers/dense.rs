//! Fully connected layer.

use cdl_hw::OpCount;
use cdl_tensor::{init::Init, ops, Tensor};
use rand::Rng;

use crate::batch::BatchScratch;
use crate::error::NnError;
use crate::layer::{Layer, ParamGrad};
use crate::Result;

/// A fully connected (dense) layer `y = W x + b`.
///
/// Serves as the paper's final `FC` output stage and, in `cdl-core`, as the
/// linear classifier attached to each convolutional stage. The nonlinearity
/// (if any) is a separate [`crate::layers::ActivationLayer`].
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    grad_weight: Tensor,
    grad_bias: Tensor,
    cache_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with LeCun-uniform initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when either feature count is zero.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::BadConfig(format!(
                "dense dims must be non-zero: in={in_features} out={out_features}"
            )));
        }
        Ok(Dense {
            in_features,
            out_features,
            weight: Init::LecunUniform.build(
                &[out_features, in_features],
                in_features,
                out_features,
                rng,
            ),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cache_input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read-only weight matrix (`[out, in]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Read-only bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    fn check_input(&self, x: &Tensor) -> Result<()> {
        if x.len() != self.in_features {
            return Err(NnError::BadConfig(format!(
                "dense expects {} input features, got {}",
                self.in_features,
                x.len()
            )));
        }
        Ok(())
    }

    fn affine(&self, x: &Tensor) -> Result<Tensor> {
        let flat = if x.rank() == 1 {
            x.clone()
        } else {
            x.flatten()
        };
        let mut y = ops::matvec(&self.weight, &flat)?;
        for (o, b) in y.data_mut().iter_mut().zip(self.bias.data()) {
            *o += b;
        }
        Ok(y)
    }
}

impl Layer for Dense {
    fn name(&self) -> String {
        format!("dense {}->{}", self.in_features, self.out_features)
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        self.check_input(x)?;
        self.affine(x)
    }

    fn forward_batch(&self, xs: &[Tensor], scratch: &mut BatchScratch) -> Result<Vec<Tensor>> {
        if xs.len() < 2 {
            return xs.iter().map(|x| self.forward(x)).collect();
        }
        for x in xs {
            self.check_input(x)?;
        }
        let m = self.out_features;
        // tensors are row-major and contiguous, so each input's buffer is
        // already its flattened feature vector; the whole batch runs as one
        // GEMM into the shared dense scratch block under the scratch's
        // kernel choice (bit-identical to per-sample affine_row for every
        // kernel)
        let rows: Vec<&[f32]> = xs.iter().map(Tensor::data).collect();
        scratch.dense.resize(xs.len() * m, 0.0);
        ops::affine_rows_into(
            &rows,
            &self.weight,
            self.bias.data(),
            &mut scratch.dense,
            scratch.kernel,
        )?;
        (0..xs.len())
            .map(|i| {
                Ok(Tensor::from_vec(
                    scratch.dense[i * m..(i + 1) * m].to_vec(),
                    &[m],
                )?)
            })
            .collect()
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        self.check_input(x)?;
        let y = self.affine(x)?;
        self.cache_input = Some(if x.rank() == 1 {
            x.clone()
        } else {
            x.flatten()
        });
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache { layer: self.name() })?;
        if grad_out.len() != self.out_features {
            return Err(NnError::BadConfig(format!(
                "dense backward expects {} gradients, got {}",
                self.out_features,
                grad_out.len()
            )));
        }
        // dL/dW = g xᵀ ; dL/db = g ; dL/dx = Wᵀ g
        let gw = ops::outer(grad_out, x);
        ops::axpy(&mut self.grad_weight, 1.0, &gw)?;
        for (acc, &g) in self.grad_bias.data_mut().iter_mut().zip(grad_out.data()) {
            *acc += g;
        }
        Ok(ops::matvec_t(&self.weight, grad_out)?)
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                param: &mut self.weight,
                grad: &mut self.grad_weight,
            },
            ParamGrad {
                param: &mut self.bias,
                grad: &mut self.grad_bias,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn param_snapshot(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let n: usize = input.iter().product();
        if n != self.in_features {
            return Err(NnError::BadConfig(format!(
                "dense expects {} input features, got {n}",
                self.in_features
            )));
        }
        Ok(vec![self.out_features])
    }

    fn op_count(&self, input: &[usize]) -> Result<OpCount> {
        self.output_shape(input)?;
        let macs = (self.in_features * self.out_features) as u64;
        Ok(OpCount {
            macs,
            adds: self.out_features as u64, // bias
            compares: 0,
            activations: 0,
            mem_reads: self.weight.len() as u64 + self.in_features as u64,
            mem_writes: self.out_features as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(Dense::new(0, 10, &mut rng()).is_err());
        assert!(Dense::new(10, 0, &mut rng()).is_err());
    }

    #[test]
    fn forward_is_affine() {
        let mut d = Dense::new(2, 2, &mut rng()).unwrap();
        // overwrite weights for a deterministic check
        d.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        d.bias = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let y = d
            .forward(&Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap())
            .unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn accepts_multi_rank_input_by_flattening() {
        let d = Dense::new(12, 10, &mut rng()).unwrap();
        let x = Tensor::ones(&[3, 2, 2]);
        assert_eq!(d.forward(&x).unwrap().dims(), &[10]);
        assert!(d.forward(&Tensor::ones(&[11])).is_err());
    }

    /// Full finite-difference check of all three gradients.
    #[test]
    fn gradient_check() {
        let mut d = Dense::new(3, 2, &mut rng()).unwrap();
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let y = d.forward_train(&x).unwrap();
        let g_out = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        d.zero_grads();
        let gx = d.backward(&g_out).unwrap();

        let loss = |d: &Dense, x: &Tensor| -> f32 {
            let y = d.forward(x).unwrap();
            // weighted sum loss matching g_out
            y.data()[0] - 2.0 * y.data()[1]
        };
        let eps = 1e-3;

        // weights
        for i in 0..d.weight.len() {
            let orig = d.weight.data()[i];
            d.weight.data_mut()[i] = orig + eps;
            let lp = loss(&d, &x);
            d.weight.data_mut()[i] = orig - eps;
            let lm = loss(&d, &x);
            d.weight.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - d.grad_weight.data()[i]).abs() < 1e-2);
        }
        // bias
        for i in 0..d.bias.len() {
            let orig = d.bias.data()[i];
            d.bias.data_mut()[i] = orig + eps;
            let lp = loss(&d, &x);
            d.bias.data_mut()[i] = orig - eps;
            let lm = loss(&d, &x);
            d.bias.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - d.grad_bias.data()[i]).abs() < 1e-2);
        }
        // input
        let mut xm = x.clone();
        for i in 0..xm.len() {
            let orig = xm.data()[i];
            xm.data_mut()[i] = orig + eps;
            let lp = loss(&d, &xm);
            xm.data_mut()[i] = orig - eps;
            let lm = loss(&d, &xm);
            xm.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - gx.data()[i]).abs() < 1e-2);
        }
        assert_eq!(y.dims(), &[2]);
    }

    #[test]
    fn backward_validates() {
        let mut d = Dense::new(3, 2, &mut rng()).unwrap();
        assert!(d.backward(&Tensor::ones(&[2])).is_err()); // no cache
        d.forward_train(&Tensor::ones(&[3])).unwrap();
        assert!(d.backward(&Tensor::ones(&[3])).is_err()); // wrong grad size
    }

    #[test]
    fn op_count_matches_paper_o1_head() {
        // MNIST_2C O1: 864 features -> 10 outputs = 8640 MACs
        let d = Dense::new(864, 10, &mut rng()).unwrap();
        let ops = d.op_count(&[6, 12, 12]).unwrap();
        assert_eq!(ops.macs, 8640);
        assert_eq!(ops.adds, 10);
    }

    #[test]
    fn param_count() {
        let d = Dense::new(864, 10, &mut rng()).unwrap();
        assert_eq!(d.param_count(), 8650);
    }
}
