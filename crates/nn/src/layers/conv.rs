//! Valid 2-D convolution layer.

use cdl_hw::OpCount;
use cdl_tensor::{conv, init::Init, Tensor};
use rand::Rng;

use crate::batch::BatchScratch;
use crate::error::NnError;
use crate::layer::{Layer, ParamGrad};
use crate::Result;

/// A multi-channel *valid* convolution layer (`[C_in,H,W] → [C_out,H',W']`).
///
/// Matches the convolutional stages of the paper's baselines (Tables I & II):
/// square kernels, stride 1, no padding. The nonlinearity is a separate
/// [`crate::layers::ActivationLayer`] so the conditional stages can tap the
/// exact tensors they need.
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    kernels: Tensor,
    bias: Tensor,
    grad_kernels: Tensor,
    grad_bias: Tensor,
    cache_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a conv layer with `out_channels` square `kernel`×`kernel`
    /// filters over `in_channels` input maps, Xavier-initialised from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when any dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 {
            return Err(NnError::BadConfig(format!(
                "conv dims must be non-zero: in={in_channels} out={out_channels} k={kernel}"
            )));
        }
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let dims = [out_channels, in_channels, kernel, kernel];
        Ok(Conv2d {
            in_channels,
            out_channels,
            kernel,
            kernels: Init::XavierUniform.build(&dims, fan_in, fan_out, rng),
            bias: Tensor::zeros(&[out_channels]),
            grad_kernels: Tensor::zeros(&dims),
            grad_bias: Tensor::zeros(&[out_channels]),
            cache_input: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output maps.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Read-only access to the kernel bank (`[C_out, C_in, k, k]`).
    pub fn kernels(&self) -> &Tensor {
        &self.kernels
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv {k}x{k} {cin}->{cout} maps",
            k = self.kernel,
            cin = self.in_channels,
            cout = self.out_channels
        )
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(conv::conv2d_valid(x, &self.kernels, self.bias.data())?)
    }

    fn forward_batch(&self, xs: &[Tensor], scratch: &mut BatchScratch) -> Result<Vec<Tensor>> {
        // mixed-shape batches (never produced by the evaluators) fall back
        // to the per-image path rather than erroring
        if xs.len() < 2 || xs.iter().any(|x| x.shape() != xs[0].shape()) {
            return xs.iter().map(|x| self.forward(x)).collect();
        }
        Ok(cdl_tensor::im2col::conv2d_valid_batch(
            xs,
            &self.kernels,
            self.bias.data(),
            &mut scratch.conv,
            scratch.kernel,
        )?)
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let y = conv::conv2d_valid(x, &self.kernels, self.bias.data())?;
        self.cache_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_input
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache { layer: self.name() })?;
        let (gk, gb) = conv::conv2d_grad_kernels(x, self.kernels.dims(), grad_out)?;
        cdl_tensor::ops::axpy(&mut self.grad_kernels, 1.0, &gk)?;
        for (acc, g) in self.grad_bias.data_mut().iter_mut().zip(gb) {
            *acc += g;
        }
        let gx = conv::conv2d_grad_input(x.dims(), &self.kernels, grad_out)?;
        Ok(gx)
    }

    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                param: &mut self.kernels,
                grad: &mut self.grad_kernels,
            },
            ParamGrad {
                param: &mut self.bias,
                grad: &mut self.grad_bias,
            },
        ]
    }

    fn param_count(&self) -> usize {
        self.kernels.len() + self.bias.len()
    }

    fn param_snapshot(&self) -> Vec<Tensor> {
        vec![self.kernels.clone(), self.bias.clone()]
    }

    fn zero_grads(&mut self) {
        self.grad_kernels.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.len() != 3 {
            return Err(NnError::BadConfig(format!(
                "conv expects [C,H,W] input, got rank {}",
                input.len()
            )));
        }
        if input[0] != self.in_channels {
            return Err(NnError::BadConfig(format!(
                "conv expects {} input channels, got {}",
                self.in_channels, input[0]
            )));
        }
        let oh = conv::valid_out_size(input[1], self.kernel)?;
        let ow = conv::valid_out_size(input[2], self.kernel)?;
        Ok(vec![self.out_channels, oh, ow])
    }

    fn op_count(&self, input: &[usize]) -> Result<OpCount> {
        let out = self.output_shape(input)?;
        let (oh, ow) = (out[1], out[2]);
        let macs = conv::conv2d_macs(
            self.in_channels,
            input[1],
            input[2],
            self.out_channels,
            self.kernel,
            self.kernel,
        );
        let out_volume = (self.out_channels * oh * ow) as u64;
        let in_volume: u64 = input.iter().product::<usize>() as u64;
        Ok(OpCount {
            macs,
            adds: out_volume, // bias adds
            compares: 0,
            activations: 0,
            // weights + input activations are read; each output written once
            mem_reads: self.kernels.len() as u64 + in_volume,
            mem_writes: out_volume,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(Conv2d::new(0, 6, 5, &mut rng()).is_err());
        assert!(Conv2d::new(1, 0, 5, &mut rng()).is_err());
        assert!(Conv2d::new(1, 6, 0, &mut rng()).is_err());
    }

    #[test]
    fn shapes_match_paper_table1() {
        // Table I: 28x28 input, C1 = 5x5 kernels, 6 maps -> 24x24
        let c1 = Conv2d::new(1, 6, 5, &mut rng()).unwrap();
        assert_eq!(c1.output_shape(&[1, 28, 28]).unwrap(), vec![6, 24, 24]);
        // C2: 12x12x6 -> 8x8x12 with 5x5 kernels
        let c2 = Conv2d::new(6, 12, 5, &mut rng()).unwrap();
        assert_eq!(c2.output_shape(&[6, 12, 12]).unwrap(), vec![12, 8, 8]);
    }

    #[test]
    fn output_shape_validates_input() {
        let c = Conv2d::new(3, 6, 3, &mut rng()).unwrap();
        assert!(c.output_shape(&[1, 28, 28]).is_err()); // wrong channels
        assert!(c.output_shape(&[28, 28]).is_err()); // wrong rank
        assert!(c.output_shape(&[3, 2, 2]).is_err()); // too small
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut c = Conv2d::new(2, 3, 3, &mut rng()).unwrap();
        let x = Tensor::full(&[2, 5, 5], 0.3);
        let y1 = c.forward(&x).unwrap();
        let y2 = c.forward_train(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn backward_requires_cache() {
        let mut c = Conv2d::new(1, 1, 2, &mut rng()).unwrap();
        let g = Tensor::ones(&[1, 2, 2]);
        assert!(matches!(
            c.backward(&g),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut c = Conv2d::new(1, 1, 2, &mut rng()).unwrap();
        let x = Tensor::ones(&[1, 3, 3]);
        let g = Tensor::ones(&[1, 2, 2]);
        c.forward_train(&x).unwrap();
        c.backward(&g).unwrap();
        let after_one: f32 = c.params()[0].grad.sum();
        c.forward_train(&x).unwrap();
        c.backward(&g).unwrap();
        let after_two: f32 = c.params()[0].grad.sum();
        assert!((after_two - 2.0 * after_one).abs() < 1e-4);
        c.zero_grads();
        assert_eq!(c.params()[0].grad.sum(), 0.0);
    }

    /// End-to-end finite-difference gradient check through the layer.
    #[test]
    fn layer_gradient_check() {
        let mut c = Conv2d::new(2, 2, 2, &mut rng()).unwrap();
        let x = Tensor::from_vec(
            (0..18).map(|i| (i as f32) * 0.1 - 0.9).collect(),
            &[2, 3, 3],
        )
        .unwrap();
        let y = c.forward_train(&x).unwrap();
        let grad_out = Tensor::ones(y.dims());
        c.zero_grads();
        let gx = c.backward(&grad_out).unwrap();

        // check dL/dkernels via finite differences on a few indices
        let eps = 1e-2;
        let analytic = c.grad_kernels.clone();
        for idx in [0usize, 3, 7, 15] {
            let orig = c.kernels.data()[idx];
            c.kernels.data_mut()[idx] = orig + eps;
            let lp = c.forward(&x).unwrap().sum();
            c.kernels.data_mut()[idx] = orig - eps;
            let lm = c.forward(&x).unwrap().sum();
            c.kernels.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic.data()[idx]).abs() < 1e-2,
                "idx {idx}: fd {fd} vs {}",
                analytic.data()[idx]
            );
        }
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn op_count_matches_formula() {
        // Table I C1: 86_400 MACs (see cdl-tensor tests), 6*24*24 bias adds
        let c = Conv2d::new(1, 6, 5, &mut rng()).unwrap();
        let ops = c.op_count(&[1, 28, 28]).unwrap();
        assert_eq!(ops.macs, 86_400);
        assert_eq!(ops.adds, 6 * 24 * 24);
        assert_eq!(ops.mem_writes, 6 * 24 * 24);
        assert_eq!(ops.mem_reads as usize, 6 * 25 + 28 * 28);
    }

    #[test]
    fn param_count() {
        let c = Conv2d::new(3, 6, 5, &mut rng()).unwrap();
        assert_eq!(c.param_count(), 6 * 3 * 25 + 6);
    }
}
