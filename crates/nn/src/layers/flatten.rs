//! Rank-flattening layer bridging conv stacks and dense heads.

use cdl_hw::OpCount;
use cdl_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;
use crate::Result;

/// Flattens any input to rank 1, remembering the input shape so the
/// backward pass can restore it.
///
/// The paper concatenates "the CNN features … into a 1-D vector" before
/// feeding linear classifiers and the FC output layer; this layer is that
/// concatenation.
#[derive(Debug, Default)]
pub struct Flatten {
    cache_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cache_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".to_string()
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(x.flatten())
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        self.cache_shape = Some(x.dims().to_vec());
        Ok(x.flatten())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cache_shape
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache { layer: self.name() })?;
        Ok(grad_out.reshape(shape)?)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(vec![input.iter().product()])
    }

    fn op_count(&self, _input: &[usize]) -> Result<OpCount> {
        // a pure re-interpretation of memory: free in hardware
        Ok(OpCount::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut l = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 2, 2]).unwrap();
        let y = l.forward_train(&x).unwrap();
        assert_eq!(y.dims(), &[12]);
        let gx = l.backward(&Tensor::ones(&[12])).unwrap();
        assert_eq!(gx.dims(), &[3, 2, 2]);
    }

    #[test]
    fn backward_requires_cache() {
        let mut l = Flatten::new();
        assert!(l.backward(&Tensor::ones(&[4])).is_err());
    }

    #[test]
    fn output_shape_and_cost() {
        let l = Flatten::new();
        assert_eq!(l.output_shape(&[6, 12, 12]).unwrap(), vec![864]);
        assert!(l.op_count(&[6, 12, 12]).unwrap().is_zero());
    }

    #[test]
    fn backward_rejects_wrong_size() {
        let mut l = Flatten::new();
        l.forward_train(&Tensor::zeros(&[2, 2])).unwrap();
        assert!(l.backward(&Tensor::ones(&[5])).is_err());
    }
}
