//! Non-overlapping pooling layers.

use cdl_hw::OpCount;
use cdl_tensor::{pool, Tensor};

use crate::error::NnError;
use crate::layer::Layer;
use crate::Result;

/// Non-overlapping max pooling (`window` == stride).
///
/// A window of 1 is the identity and models the paper's size-preserving `P3`
/// stage (Table II).
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input shape, argmax)
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a zero window.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NnError::BadConfig("pooling window must be >= 1".into()));
        }
        Ok(MaxPool2d {
            window,
            cache: None,
        })
    }

    /// The pooling window/stride.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("maxpool {w}x{w}", w = self.window)
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(pool::maxpool2d(x, self.window)?.output)
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let out = pool::maxpool2d(x, self.window)?;
        self.cache = Some((
            x.dims().to_vec(),
            out.argmax.expect("maxpool2d always returns argmax"),
        ));
        Ok(out.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (shape, argmax) = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache { layer: self.name() })?;
        Ok(pool::maxpool2d_backward(shape, argmax, grad_out)?)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        pool_output_shape(input, self.window)
    }

    fn op_count(&self, input: &[usize]) -> Result<OpCount> {
        let out = self.output_shape(input)?;
        let out_volume: u64 = out.iter().product::<usize>() as u64;
        let in_volume: u64 = input.iter().product::<usize>() as u64;
        Ok(OpCount {
            macs: 0,
            adds: 0,
            compares: out_volume * (self.window * self.window - 1).max(1) as u64,
            activations: 0,
            mem_reads: in_volume,
            mem_writes: out_volume,
        })
    }
}

/// Non-overlapping mean pooling (`window` == stride).
#[derive(Debug)]
pub struct MeanPool2d {
    window: usize,
    cache_shape: Option<Vec<usize>>,
}

impl MeanPool2d {
    /// Creates a mean-pool layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a zero window.
    pub fn new(window: usize) -> Result<Self> {
        if window == 0 {
            return Err(NnError::BadConfig("pooling window must be >= 1".into()));
        }
        Ok(MeanPool2d {
            window,
            cache_shape: None,
        })
    }

    /// The pooling window/stride.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MeanPool2d {
    fn name(&self) -> String {
        format!("meanpool {w}x{w}", w = self.window)
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(pool::meanpool2d(x, self.window)?.output)
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let out = pool::meanpool2d(x, self.window)?;
        self.cache_shape = Some(x.dims().to_vec());
        Ok(out.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cache_shape
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache { layer: self.name() })?;
        Ok(pool::meanpool2d_backward(shape, self.window, grad_out)?)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        pool_output_shape(input, self.window)
    }

    fn op_count(&self, input: &[usize]) -> Result<OpCount> {
        let out = self.output_shape(input)?;
        let out_volume: u64 = out.iter().product::<usize>() as u64;
        let in_volume: u64 = input.iter().product::<usize>() as u64;
        Ok(OpCount {
            macs: 0,
            // window²-1 adds plus one scale per output cell
            adds: out_volume * (self.window * self.window) as u64,
            compares: 0,
            activations: 0,
            mem_reads: in_volume,
            mem_writes: out_volume,
        })
    }
}

fn pool_output_shape(input: &[usize], window: usize) -> Result<Vec<usize>> {
    if input.len() != 3 {
        return Err(NnError::BadConfig(format!(
            "pooling expects [C,H,W] input, got rank {}",
            input.len()
        )));
    }
    let (c, h, w) = (input[0], input[1], input[2]);
    if h % window != 0 || w % window != 0 {
        return Err(NnError::BadConfig(format!(
            "pooling window {window} does not tile {h}x{w}"
        )));
    }
    Ok(vec![c, h / window, w / window])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(MaxPool2d::new(0).is_err());
        assert!(MeanPool2d::new(0).is_err());
        assert!(MaxPool2d::new(2).is_ok());
    }

    #[test]
    fn shapes_match_paper() {
        // Table I: P1 pools 24x24x6 -> 12x12x6
        let p = MaxPool2d::new(2).unwrap();
        assert_eq!(p.output_shape(&[6, 24, 24]).unwrap(), vec![6, 12, 12]);
        // Table II: P3 identity pool keeps 3x3x9
        let p3 = MaxPool2d::new(1).unwrap();
        assert_eq!(p3.output_shape(&[9, 3, 3]).unwrap(), vec![9, 3, 3]);
    }

    #[test]
    fn forward_backward_round_trip_max() {
        let mut p = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[2, 2, 2]).unwrap();
        let y = p.forward_train(&x).unwrap();
        assert_eq!(y.data(), &[4.0, 8.0]);
        let gx = p.backward(&Tensor::ones(&[2, 1, 1])).unwrap();
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn forward_backward_round_trip_mean() {
        let mut p = MeanPool2d::new(2).unwrap();
        let x = Tensor::ones(&[1, 2, 2]);
        let y = p.forward_train(&x).unwrap();
        assert_eq!(y.data(), &[1.0]);
        let gx = p.backward(&Tensor::ones(&[1, 1, 1])).unwrap();
        assert!(gx.data().iter().all(|&g| (g - 0.25).abs() < 1e-6));
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut p = MaxPool2d::new(2).unwrap();
        assert!(p.backward(&Tensor::ones(&[1, 1, 1])).is_err());
        let mut m = MeanPool2d::new(2).unwrap();
        assert!(m.backward(&Tensor::ones(&[1, 1, 1])).is_err());
    }

    #[test]
    fn op_counts() {
        let p = MaxPool2d::new(2).unwrap();
        let ops = p.op_count(&[6, 24, 24]).unwrap();
        assert_eq!(ops.compares, 6 * 144 * 3);
        assert_eq!(ops.mem_reads, 6 * 576);
        assert_eq!(ops.mem_writes, 6 * 144);
        assert_eq!(ops.macs, 0);

        let m = MeanPool2d::new(2).unwrap();
        let ops = m.op_count(&[6, 24, 24]).unwrap();
        assert_eq!(ops.adds, 6 * 144 * 4);
    }

    #[test]
    fn geometry_validation() {
        let p = MaxPool2d::new(2).unwrap();
        assert!(p.output_shape(&[1, 3, 3]).is_err());
        assert!(p.output_shape(&[3, 3]).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(MaxPool2d::new(2).unwrap().name(), "maxpool 2x2");
        assert_eq!(MeanPool2d::new(3).unwrap().name(), "meanpool 3x3");
    }
}
