//! Elementwise activation layer.

use cdl_hw::OpCount;
use cdl_tensor::Tensor;

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::Layer;
use crate::Result;

/// Applies an [`Activation`] elementwise.
///
/// Caches its *output* during training — all supported activations have
/// derivatives expressible in the output, so this is the cheapest correct
/// cache.
#[derive(Debug)]
pub struct ActivationLayer {
    act: Activation,
    cache_output: Option<Tensor>,
}

impl ActivationLayer {
    /// Wraps an activation function as a layer.
    pub fn new(act: Activation) -> Self {
        ActivationLayer {
            act,
            cache_output: None,
        }
    }

    /// The wrapped activation.
    pub fn activation(&self) -> Activation {
        self.act
    }
}

impl Layer for ActivationLayer {
    fn name(&self) -> String {
        self.act.name().to_string()
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(x.map(|v| self.act.apply(v)))
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let y = x.map(|v| self.act.apply(v));
        self.cache_output = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .cache_output
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache { layer: self.name() })?;
        Ok(cdl_tensor::ops::zip_with(grad_out, y, |g, yv| {
            g * self.act.derivative_from_output(yv)
        })?)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(input.to_vec())
    }

    fn op_count(&self, input: &[usize]) -> Result<OpCount> {
        let n: u64 = input.iter().product::<usize>() as u64;
        if self.act == Activation::Identity {
            return Ok(OpCount::ZERO);
        }
        Ok(OpCount {
            activations: n,
            mem_reads: n,
            mem_writes: n,
            ..OpCount::ZERO
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_forward_values() {
        let l = ActivationLayer::new(Activation::Sigmoid);
        let y = l.forward(&Tensor::zeros(&[4])).unwrap();
        assert!(y.data().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn identity_is_free_and_transparent() {
        let l = ActivationLayer::new(Activation::Identity);
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        assert_eq!(l.forward(&x).unwrap(), x);
        assert!(l.op_count(&[2]).unwrap().is_zero());
    }

    #[test]
    fn backward_chain_rule() {
        let mut l = ActivationLayer::new(Activation::Sigmoid);
        let x = Tensor::zeros(&[3]);
        let _ = l.forward_train(&x).unwrap();
        // at x=0, y=0.5, dy/dx = 0.25
        let g = l.backward(&Tensor::ones(&[3])).unwrap();
        assert!(g.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn backward_requires_cache() {
        let mut l = ActivationLayer::new(Activation::Relu);
        assert!(l.backward(&Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn relu_masks_gradient() {
        let mut l = ActivationLayer::new(Activation::Relu);
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[2]).unwrap();
        l.forward_train(&x).unwrap();
        let g = l.backward(&Tensor::ones(&[2])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0]);
    }

    #[test]
    fn shape_is_preserved() {
        let l = ActivationLayer::new(Activation::Tanh);
        assert_eq!(l.output_shape(&[6, 12, 12]).unwrap(), vec![6, 12, 12]);
        let ops = l.op_count(&[6, 12, 12]).unwrap();
        assert_eq!(ops.activations, 864);
    }
}
