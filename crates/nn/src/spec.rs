//! Declarative network specifications.
//!
//! A [`NetworkSpec`] is a serialisable description of a sequential network —
//! the analogue of the architecture rows in the paper's Tables I & II. It is
//! the unit of model persistence: a spec plus an exported parameter list
//! reconstructs a trained network exactly.

use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::error::NnError;
use crate::Result;

/// One layer in a [`NetworkSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Valid convolution (`in_channels`, `out_channels`, square `kernel`)
    /// followed by `activation`.
    Conv {
        /// Input channel count.
        in_channels: usize,
        /// Output map count.
        out_channels: usize,
        /// Square kernel side.
        kernel: usize,
        /// Nonlinearity applied after the convolution.
        activation: Activation,
    },
    /// Non-overlapping max pooling with the given window.
    MaxPool {
        /// Window side length (= stride).
        window: usize,
    },
    /// Non-overlapping mean pooling with the given window.
    MeanPool {
        /// Window side length (= stride).
        window: usize,
    },
    /// Flatten to rank 1.
    Flatten,
    /// Fully connected layer followed by `activation`.
    Dense {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
        /// Nonlinearity applied after the affine map.
        activation: Activation,
    },
}

impl LayerSpec {
    /// Convolution + activation shorthand.
    pub fn conv(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        activation: Activation,
    ) -> Self {
        LayerSpec::Conv {
            in_channels,
            out_channels,
            kernel,
            activation,
        }
    }

    /// Max-pool shorthand.
    pub fn maxpool(window: usize) -> Self {
        LayerSpec::MaxPool { window }
    }

    /// Mean-pool shorthand.
    pub fn meanpool(window: usize) -> Self {
        LayerSpec::MeanPool { window }
    }

    /// Flatten shorthand.
    pub fn flatten() -> Self {
        LayerSpec::Flatten
    }

    /// Dense + activation shorthand.
    pub fn dense(in_features: usize, out_features: usize, activation: Activation) -> Self {
        LayerSpec::Dense {
            in_features,
            out_features,
            activation,
        }
    }
}

/// A sequential network description: layers plus the expected input shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Layer list, input to output.
    pub layers: Vec<LayerSpec>,
    /// Shape of a single input sample, e.g. `[1, 28, 28]`.
    pub input_shape: Vec<usize>,
}

impl NetworkSpec {
    /// Creates a spec.
    pub fn new(layers: Vec<LayerSpec>, input_shape: &[usize]) -> Self {
        NetworkSpec {
            layers,
            input_shape: input_shape.to_vec(),
        }
    }

    /// Walks the spec and returns each layer's *output* shape, validating
    /// the whole chain (this catches mis-sized dense fan-ins at build time,
    /// not at first forward pass).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] describing the first inconsistent
    /// layer.
    pub fn shape_chain(&self) -> Result<Vec<Vec<usize>>> {
        let mut shapes = Vec::with_capacity(self.layers.len());
        let mut cur = self.input_shape.clone();
        for (i, spec) in self.layers.iter().enumerate() {
            cur = match spec {
                LayerSpec::Conv {
                    in_channels,
                    out_channels,
                    kernel,
                    ..
                } => {
                    if cur.len() != 3 || cur[0] != *in_channels {
                        return Err(NnError::BadConfig(format!(
                            "layer {i}: conv expects [{in_channels},H,W], got {cur:?}"
                        )));
                    }
                    if cur[1] < *kernel || cur[2] < *kernel || *kernel == 0 {
                        return Err(NnError::BadConfig(format!(
                            "layer {i}: kernel {kernel} does not fit input {cur:?}"
                        )));
                    }
                    vec![*out_channels, cur[1] - kernel + 1, cur[2] - kernel + 1]
                }
                LayerSpec::MaxPool { window } | LayerSpec::MeanPool { window } => {
                    if cur.len() != 3 {
                        return Err(NnError::BadConfig(format!(
                            "layer {i}: pooling expects [C,H,W], got {cur:?}"
                        )));
                    }
                    if *window == 0
                        || !cur[1].is_multiple_of(*window)
                        || !cur[2].is_multiple_of(*window)
                    {
                        return Err(NnError::BadConfig(format!(
                            "layer {i}: window {window} does not tile {cur:?}"
                        )));
                    }
                    vec![cur[0], cur[1] / window, cur[2] / window]
                }
                LayerSpec::Flatten => vec![cur.iter().product()],
                LayerSpec::Dense {
                    in_features,
                    out_features,
                    ..
                } => {
                    let n: usize = cur.iter().product();
                    if n != *in_features {
                        return Err(NnError::BadConfig(format!(
                            "layer {i}: dense fan-in {in_features} vs incoming {n} features"
                        )));
                    }
                    vec![*out_features]
                }
            };
            shapes.push(cur.clone());
        }
        Ok(shapes)
    }

    /// Output shape of the whole network.
    ///
    /// # Errors
    ///
    /// Same as [`NetworkSpec::shape_chain`].
    pub fn output_shape(&self) -> Result<Vec<usize>> {
        Ok(self
            .shape_chain()?
            .last()
            .cloned()
            .unwrap_or_else(|| self.input_shape.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I baseline as a spec.
    fn table1() -> NetworkSpec {
        NetworkSpec::new(
            vec![
                LayerSpec::conv(1, 6, 5, Activation::Sigmoid),
                LayerSpec::maxpool(2),
                LayerSpec::conv(6, 12, 5, Activation::Sigmoid),
                LayerSpec::maxpool(2),
                LayerSpec::flatten(),
                LayerSpec::dense(192, 10, Activation::Sigmoid),
            ],
            &[1, 28, 28],
        )
    }

    #[test]
    fn table1_shape_chain() {
        let chain = table1().shape_chain().unwrap();
        assert_eq!(
            chain,
            vec![
                vec![6, 24, 24],
                vec![6, 12, 12],
                vec![12, 8, 8],
                vec![12, 4, 4],
                vec![192],
                vec![10],
            ]
        );
        assert_eq!(table1().output_shape().unwrap(), vec![10]);
    }

    #[test]
    fn detects_bad_dense_fan_in() {
        let mut spec = table1();
        if let LayerSpec::Dense { in_features, .. } = &mut spec.layers[5] {
            *in_features = 100;
        }
        let err = spec.shape_chain().unwrap_err();
        assert!(err.to_string().contains("fan-in"));
    }

    #[test]
    fn detects_bad_conv_channels() {
        let spec = NetworkSpec::new(
            vec![LayerSpec::conv(3, 6, 5, Activation::Sigmoid)],
            &[1, 28, 28],
        );
        assert!(spec.shape_chain().is_err());
    }

    #[test]
    fn detects_non_tiling_pool() {
        let spec = NetworkSpec::new(vec![LayerSpec::maxpool(5)], &[1, 28, 28]);
        assert!(spec.shape_chain().is_err());
    }

    #[test]
    fn detects_oversized_kernel() {
        let spec = NetworkSpec::new(
            vec![LayerSpec::conv(1, 2, 30, Activation::Relu)],
            &[1, 28, 28],
        );
        assert!(spec.shape_chain().is_err());
    }

    #[test]
    fn empty_spec_output_is_input() {
        let spec = NetworkSpec::new(vec![], &[1, 8, 8]);
        assert_eq!(spec.output_shape().unwrap(), vec![1, 8, 8]);
    }

    #[test]
    fn serde_round_trip() {
        let spec = table1();
        let json = serde_json::to_string(&spec).unwrap();
        let back: NetworkSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
