//! Batched inference support: shared scratch buffers and whole-batch
//! forwards through (slices of) a [`crate::network::Network`].
//!
//! The pattern follows batched GPU evaluators (one persistent evaluator,
//! preallocated buffers, whole batch per forward pass): a [`BatchScratch`]
//! is allocated once and threaded through every
//! [`crate::layer::Layer::forward_batch`] call, so steady-state batch
//! inference performs no im2col/GEMM allocations. Convolutions lower the
//! whole batch into one patch matrix and run a single GEMM; dense layers run
//! one batched affine map. Both reproduce the per-image path **bit for
//! bit** (see `cdl_tensor::im2col::conv2d_valid_batch` /
//! `cdl_tensor::ops::affine_rows_into`), which the cross-crate equivalence
//! tests pin down.

use cdl_tensor::im2col::ConvScratch;

/// Reusable buffers for batched forward passes.
///
/// One instance serves a whole network: each layer resizes the buffers it
/// needs, and repeated batches at the same geometry never reallocate.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// im2col patch matrix + GEMM output shared by all conv layers.
    pub conv: ConvScratch,
}

impl BatchScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        BatchScratch::default()
    }
}
