//! Batched inference support: shared scratch buffers, the batch-wide GEMM
//! kernel selection, and whole-batch forwards through (slices of) a
//! [`crate::network::Network`].
//!
//! The pattern follows batched GPU evaluators (one persistent evaluator,
//! preallocated buffers, whole batch per forward pass, conv algorithm
//! picked once at construction): a [`BatchScratch`] is allocated once and
//! threaded through every [`crate::layer::Layer::forward_batch`] call, so
//! steady-state batch inference performs no im2col/GEMM allocations, and
//! the [`GemmKernel`] it carries decides which microkernel runs every conv
//! GEMM and batched affine. Convolutions lower the whole batch into one
//! patch matrix and run a single GEMM; dense layers run one batched affine
//! map. Both reproduce the per-image path **bit for bit** for every kernel
//! (see `cdl_tensor::gemm` for why tiling never changes an element's
//! addition sequence), which the cross-crate equivalence tests pin down per
//! [`GemmKernel`] variant.

use cdl_tensor::gemm::GemmKernel;
use cdl_tensor::im2col::ConvScratch;

/// Reusable buffers plus the GEMM kernel choice for batched forward passes.
///
/// One instance serves a whole network: each layer resizes the buffers it
/// needs, and repeated batches at the same geometry never reallocate. The
/// kernel is fixed at construction ([`BatchScratch::new`] defaults to
/// [`GemmKernel::detect`] — the AVX2 `Simd` arm where the host supports
/// it, `Tiled` otherwise; [`BatchScratch::with_kernel`] pins a specific
/// one) so every layer of every batch runs the same microkernel.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// im2col patch matrix + GEMM output shared by all conv layers.
    pub conv: ConvScratch,
    /// Row-major `[batch, out_features]` output block shared by all dense
    /// layers' batched affine.
    pub dense: Vec<f32>,
    /// The GEMM microkernel every batched conv/dense/head evaluation runs.
    pub kernel: GemmKernel,
}

impl BatchScratch {
    /// A fresh, empty scratch running the detected kernel
    /// ([`GemmKernel::detect`]); buffers grow on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// A fresh, empty scratch pinned to `kernel`.
    pub fn with_kernel(kernel: GemmKernel) -> Self {
        BatchScratch {
            kernel,
            ..BatchScratch::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kernel_is_the_detected_one() {
        assert_eq!(BatchScratch::new().kernel, GemmKernel::detect());
        assert_eq!(BatchScratch::default().kernel, GemmKernel::detect());
        // never the baseline loops by default
        assert_ne!(BatchScratch::new().kernel, GemmKernel::Reference);
    }

    #[test]
    fn with_kernel_pins_the_choice() {
        for kernel in GemmKernel::ALL {
            let scratch = BatchScratch::with_kernel(kernel);
            assert_eq!(scratch.kernel, kernel);
            assert!(scratch.conv.patches.is_empty());
            assert!(scratch.dense.is_empty());
        }
    }
}
