//! Scalar activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// An elementwise nonlinearity.
///
/// The paper's baselines follow R. Palm's convolutional backprop setup, which
/// uses logistic sigmoid units throughout; `Tanh` and `ReLU` are provided for
/// ablations. `Identity` turns an activation slot off (used by linear
/// classifier heads that operate on raw scores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// No-op.
    Identity,
}

impl Activation {
    /// Applies the function to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* `y = apply(x)`.
    ///
    /// All supported activations admit this form (sigmoid: `y(1-y)`, tanh:
    /// `1-y²`, ReLU: `1[y>0]`), which lets layers cache only their outputs.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 4] = [
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Relu,
        Activation::Identity,
    ];

    #[test]
    fn known_values() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Identity.apply(1.25), 1.25);
    }

    #[test]
    fn sigmoid_saturates() {
        assert!(Activation::Sigmoid.apply(100.0) > 0.999);
        assert!(Activation::Sigmoid.apply(-100.0) < 0.001);
    }

    /// Finite-difference check of derivative_from_output for all activations.
    #[test]
    fn derivative_matches_finite_difference() {
        let eps = 1e-3f32;
        for act in ACTS {
            for &x in &[-2.0f32, -0.5, 0.1, 0.9, 2.5] {
                let y = act.apply(x);
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (fd - analytic).abs() < 1e-2,
                    "{act}: x={x} fd={fd} analytic={analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_zero_below() {
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(5.0), 1.0);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<&str> = ACTS.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), ACTS.len());
    }

    #[test]
    fn serde_round_trip() {
        for a in ACTS {
            let s = serde_json::to_string(&a).unwrap();
            assert_eq!(serde_json::from_str::<Activation>(&s).unwrap(), a);
        }
    }
}
