//! Optimizers.

use cdl_tensor::Tensor;

use crate::network::Network;
use crate::Result;

/// Minibatch SGD with classical momentum and L2 weight decay.
///
/// Velocity buffers are keyed by `(layer index, parameter index)` and created
/// lazily, so one optimizer can be reused across structurally identical
/// networks (e.g. when retraining from scratch in an ablation loop) — the
/// buffers are reset whenever shapes change.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
    pub momentum: f32,
    /// L2 weight-decay coefficient; 0 disables decay.
    pub weight_decay: f32,
    velocities: std::collections::HashMap<(usize, usize), Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocities: std::collections::HashMap::new(),
        }
    }

    /// Plain SGD without momentum or decay.
    pub fn plain(lr: f32) -> Self {
        Sgd::new(lr, 0.0, 0.0)
    }

    /// Applies one update step using the gradients currently accumulated in
    /// the network, then leaves the gradients untouched (callers usually
    /// `zero_grads` right before the next accumulation).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` for future-proofing
    /// against parameter bookkeeping errors.
    pub fn step(&mut self, net: &mut Network) -> Result<()> {
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            for (pi, pg) in layer.params().into_iter().enumerate() {
                let key = (li, pi);
                if self.momentum > 0.0 {
                    let vel = self
                        .velocities
                        .entry(key)
                        .or_insert_with(|| Tensor::zeros(pg.param.dims()));
                    if vel.shape() != pg.param.shape() {
                        *vel = Tensor::zeros(pg.param.dims());
                    }
                    for ((v, &g), &w) in vel
                        .data_mut()
                        .iter_mut()
                        .zip(pg.grad.data())
                        .zip(pg.param.data())
                    {
                        *v = self.momentum * *v - self.lr * (g + self.weight_decay * w);
                    }
                    for (w, &v) in pg.param.data_mut().iter_mut().zip(vel.data()) {
                        *w += v;
                    }
                } else {
                    let lr = self.lr;
                    let wd = self.weight_decay;
                    for (w, &g) in pg.param.data_mut().iter_mut().zip(pg.grad.data()) {
                        *w -= lr * (g + wd * *w);
                    }
                }
            }
        }
        Ok(())
    }

    /// Multiplies the learning rate by `factor` (step decay).
    pub fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    /// Drops all velocity state (e.g. when starting a fresh training run).
    pub fn reset(&mut self) {
        self.velocities.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::{one_hot, Loss};
    use crate::spec::{LayerSpec, NetworkSpec};
    use cdl_tensor::Tensor;

    fn net() -> Network {
        let spec = NetworkSpec::new(vec![LayerSpec::dense(4, 3, Activation::Identity)], &[4]);
        Network::from_spec(&spec, 17).unwrap()
    }

    fn loss_of(n: &Network, x: &Tensor, t: &Tensor) -> f32 {
        Loss::Mse.value(&n.forward(x).unwrap(), t).unwrap()
    }

    #[test]
    fn plain_sgd_descends() {
        let mut n = net();
        let x = Tensor::from_vec(vec![1.0, -0.5, 0.25, 2.0], &[4]).unwrap();
        let t = one_hot(1, 3).unwrap();
        let mut opt = Sgd::plain(0.1);
        let before = loss_of(&n, &x, &t);
        for _ in 0..20 {
            n.zero_grads();
            n.train_sample(&x, &t, Loss::Mse, 1.0).unwrap();
            opt.step(&mut n).unwrap();
        }
        assert!(loss_of(&n, &x, &t) < before);
    }

    #[test]
    fn momentum_descends_and_differs_from_plain() {
        let x = Tensor::from_vec(vec![1.0, -0.5, 0.25, 2.0], &[4]).unwrap();
        let t = one_hot(1, 3).unwrap();
        let run = |momentum: f32| -> (f32, Tensor) {
            let mut n = net();
            let mut opt = Sgd::new(0.02, momentum, 0.0);
            for _ in 0..30 {
                n.zero_grads();
                n.train_sample(&x, &t, Loss::Mse, 1.0).unwrap();
                opt.step(&mut n).unwrap();
            }
            (loss_of(&n, &x, &t), n.forward(&x).unwrap())
        };
        let initial = loss_of(&net(), &x, &t);
        let (loss_momentum, out_momentum) = run(0.9);
        let (loss_plain, out_plain) = run(0.0);
        // both descend from the initial loss …
        assert!(loss_momentum < initial);
        assert!(loss_plain < initial);
        // … and momentum genuinely changes the trajectory
        assert_ne!(out_momentum, out_plain);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut n = net();
        // no gradient signal at all: decay alone must shrink the norm
        let norm = |n: &mut Network| -> f32 {
            n.layers_mut()[0]
                .params()
                .iter()
                .map(|pg| pg.param.norm_sq())
                .sum()
        };
        let before = norm(&mut n);
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        n.zero_grads();
        for _ in 0..10 {
            opt.step(&mut n).unwrap();
        }
        assert!(norm(&mut n) < before);
    }

    #[test]
    fn lr_decay_and_reset() {
        let mut opt = Sgd::new(1.0, 0.9, 0.0);
        opt.decay_lr(0.5);
        assert!((opt.lr - 0.5).abs() < 1e-9);
        let mut n = net();
        let x = Tensor::ones(&[4]);
        let t = one_hot(0, 3).unwrap();
        n.zero_grads();
        n.train_sample(&x, &t, Loss::Mse, 1.0).unwrap();
        opt.step(&mut n).unwrap();
        assert!(!opt.velocities.is_empty());
        opt.reset();
        assert!(opt.velocities.is_empty());
    }

    #[test]
    fn zero_lr_is_a_no_op() {
        let mut n = net();
        let x = Tensor::ones(&[4]);
        let t = one_hot(0, 3).unwrap();
        let y_before = n.forward(&x).unwrap();
        let mut opt = Sgd::plain(0.0);
        n.zero_grads();
        n.train_sample(&x, &t, Loss::Mse, 1.0).unwrap();
        opt.step(&mut n).unwrap();
        assert_eq!(n.forward(&x).unwrap(), y_before);
    }
}
