//! Sequential network container.

use cdl_hw::OpCount;
use cdl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::activation::Activation;
use crate::batch::BatchScratch;
use crate::error::NnError;
use crate::layer::Layer;
use crate::layers::{ActivationLayer, Conv2d, Dense, Flatten, MaxPool2d, MeanPool2d};
use crate::loss::Loss;
use crate::spec::{LayerSpec, NetworkSpec};
use crate::Result;

/// A sequential feed-forward network (the paper's "DLN").
///
/// Built from a [`NetworkSpec`]; owns boxed [`Layer`]s. Besides the ordinary
/// forward pass it exposes [`Network::forward_all`], which returns the output
/// of *every* layer — the hook `cdl-core` uses to tap convolutional features
/// for its cascaded linear classifiers.
#[derive(Debug)]
pub struct Network {
    spec: NetworkSpec,
    layers: Vec<Box<dyn Layer>>,
    /// For each spec layer, the index of its *last* runtime layer (a conv or
    /// dense spec with a non-identity activation expands into two runtime
    /// layers; the mapping points at the activation output).
    spec_to_runtime: Vec<usize>,
}

impl Network {
    /// Builds a network from a spec with seeded parameter initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when the spec's shape chain is
    /// inconsistent.
    pub fn from_spec(spec: &NetworkSpec, seed: u64) -> Result<Self> {
        spec.shape_chain()?; // validate before building anything
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut spec_to_runtime = Vec::with_capacity(spec.layers.len());
        for layer in &spec.layers {
            match layer {
                LayerSpec::Conv {
                    in_channels,
                    out_channels,
                    kernel,
                    activation,
                } => {
                    layers.push(Box::new(Conv2d::new(
                        *in_channels,
                        *out_channels,
                        *kernel,
                        &mut rng,
                    )?));
                    if *activation != Activation::Identity {
                        layers.push(Box::new(ActivationLayer::new(*activation)));
                    }
                }
                LayerSpec::MaxPool { window } => {
                    layers.push(Box::new(MaxPool2d::new(*window)?));
                }
                LayerSpec::MeanPool { window } => {
                    layers.push(Box::new(MeanPool2d::new(*window)?));
                }
                LayerSpec::Flatten => layers.push(Box::new(Flatten::new())),
                LayerSpec::Dense {
                    in_features,
                    out_features,
                    activation,
                } => {
                    layers.push(Box::new(Dense::new(*in_features, *out_features, &mut rng)?));
                    if *activation != Activation::Identity {
                        layers.push(Box::new(ActivationLayer::new(*activation)));
                    }
                }
            }
            spec_to_runtime.push(layers.len() - 1);
        }
        Ok(Network {
            spec: spec.clone(),
            layers,
            spec_to_runtime,
        })
    }

    /// The runtime-layer index holding the *output* of spec layer
    /// `spec_idx` (after its activation, if any).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an out-of-range spec index.
    pub fn runtime_index_of(&self, spec_idx: usize) -> Result<usize> {
        self.spec_to_runtime.get(spec_idx).copied().ok_or_else(|| {
            NnError::BadConfig(format!(
                "spec layer {spec_idx} out of range for {} spec layers",
                self.spec_to_runtime.len()
            ))
        })
    }

    /// The spec this network was built from.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Number of runtime layers (note: conv/dense specs with a non-identity
    /// activation expand into two runtime layers).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Layer names in execution order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Inference-mode forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Inference-mode forward pass returning the output of **every** layer
    /// (index `i` = output of runtime layer `i`).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_all(&self, x: &Tensor) -> Result<Vec<Tensor>> {
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur)?;
            outs.push(cur.clone());
        }
        Ok(outs)
    }

    /// Forward pass up to and including runtime layer `upto` (inclusive
    /// index), returning that layer's output. Running a prefix of the
    /// network is the "conditional activation" primitive: later layers are
    /// simply never executed.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when `upto >= layer_count()`.
    pub fn forward_prefix(&self, x: &Tensor, upto: usize) -> Result<Tensor> {
        if upto >= self.layers.len() {
            return Err(NnError::BadConfig(format!(
                "prefix end {upto} out of range for {} layers",
                self.layers.len()
            )));
        }
        let mut cur = x.clone();
        for layer in &self.layers[..=upto] {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Continues a forward pass from the output of layer `from` (exclusive)
    /// to the output of layer `upto` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for out-of-range or inverted indices.
    pub fn forward_between(
        &self,
        intermediate: &Tensor,
        from: usize,
        upto: usize,
    ) -> Result<Tensor> {
        if upto >= self.layers.len() || from > upto {
            return Err(NnError::BadConfig(format!(
                "invalid range ({from}, {upto}] for {} layers",
                self.layers.len()
            )));
        }
        let mut cur = intermediate.clone();
        for layer in &self.layers[from + 1..=upto] {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Batched forward pass over runtime layers `(from, upto]`: `from` is
    /// *exclusive* (`None` starts at the input), `upto` is *inclusive*.
    ///
    /// Every element of `xs` must be at the same point of the network (the
    /// batched evaluators guarantee this). Results are bit-identical to
    /// running [`Network::forward_prefix`] / [`Network::forward_between`]
    /// per image; the win is one im2col+GEMM per conv layer and a
    /// direct-into-output affine per dense sample, against `scratch`'s
    /// preallocated buffers. The inputs are only borrowed — the first layer
    /// reads them in place, so no upfront batch copy is made.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for out-of-range or inverted indices
    /// and propagates layer shape errors.
    pub fn forward_batch_segment(
        &self,
        xs: &[Tensor],
        from: Option<usize>,
        upto: usize,
        scratch: &mut BatchScratch,
    ) -> Result<Vec<Tensor>> {
        if upto >= self.layers.len() || from.is_some_and(|f| f > upto) {
            return Err(NnError::BadConfig(format!(
                "invalid batch segment ({from:?}, {upto}] for {} layers",
                self.layers.len()
            )));
        }
        let start = from.map_or(0, |f| f + 1);
        if start > upto {
            // empty segment (from == upto): identity, exactly like
            // `forward_between` with an empty layer range
            return Ok(xs.to_vec());
        }
        let mut cur = self.layers[start].forward_batch(xs, scratch)?;
        for layer in &self.layers[start + 1..=upto] {
            cur = layer.forward_batch(&cur, scratch)?;
        }
        Ok(cur)
    }

    /// Training forward pass (caches per-layer state).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward_train(&cur)?;
        }
        Ok(cur)
    }

    /// Backpropagates a loss gradient, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. backward before forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// One training step on a single sample: forward, loss, backward.
    /// Returns the loss value. Gradients accumulate; callers divide the
    /// learning rate by the batch size (or scale here via `grad_scale`).
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_sample(
        &mut self,
        x: &Tensor,
        target: &Tensor,
        loss: Loss,
        grad_scale: f32,
    ) -> Result<f32> {
        let out = self.forward_train(x)?;
        let value = loss.value(&out, target)?;
        let mut grad = loss.gradient(&out, target)?;
        if grad_scale != 1.0 {
            grad.map_in_place(|g| g * grad_scale);
        }
        self.backward(&grad)?;
        Ok(value)
    }

    /// Predicted class (argmax of the output) for an input.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; errors on empty network output.
    pub fn predict(&self, x: &Tensor) -> Result<usize> {
        let out = self.forward(x)?;
        out.argmax()
            .ok_or_else(|| NnError::BadConfig("network produced empty output".into()))
    }

    /// Mutable access to the boxed layers (used by the optimizer).
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Immutable access to the boxed layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Per-runtime-layer operation counts for one forward pass, paired with
    /// each layer's input shape. Entry `i` is the cost of layer `i`.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn op_counts(&self) -> Result<Vec<OpCount>> {
        let mut shapes = self.spec.input_shape.clone();
        let mut counts = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            counts.push(layer.op_count(&shapes)?);
            shapes = layer.output_shape(&shapes)?;
        }
        Ok(counts)
    }

    /// Total operation count of a full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn total_ops(&self) -> Result<OpCount> {
        Ok(self.op_counts()?.into_iter().sum())
    }

    /// Exports all parameters in layer order (for persistence).
    pub fn export_params(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            for pg in layer.params() {
                out.push(pg.param.clone());
            }
        }
        out
    }

    /// Read-only parameter snapshot, identical to
    /// [`Network::export_params`] but without requiring `&mut self`.
    pub fn snapshot_params(&self) -> Vec<Tensor> {
        self.layers
            .iter()
            .flat_map(|l| l.param_snapshot())
            .collect()
    }

    /// Imports parameters previously produced by
    /// [`Network::export_params`] on a structurally identical network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamMismatch`] on count or shape disagreement.
    pub fn import_params(&mut self, params: &[Tensor]) -> Result<()> {
        let mut idx = 0usize;
        for layer in &mut self.layers {
            for pg in layer.params() {
                let incoming = params.get(idx).ok_or_else(|| {
                    NnError::ParamMismatch(format!("expected more than {idx} parameter tensors"))
                })?;
                if incoming.shape() != pg.param.shape() {
                    return Err(NnError::ParamMismatch(format!(
                        "parameter {idx}: shape {:?} vs expected {:?}",
                        incoming.dims(),
                        pg.param.dims()
                    )));
                }
                *pg.param = incoming.clone();
                idx += 1;
            }
        }
        if idx != params.len() {
            return Err(NnError::ParamMismatch(format!(
                "{} parameter tensors provided, {} consumed",
                params.len(),
                idx
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> NetworkSpec {
        NetworkSpec::new(
            vec![
                LayerSpec::conv(1, 2, 3, Activation::Sigmoid),
                LayerSpec::maxpool(2),
                LayerSpec::flatten(),
                LayerSpec::dense(2 * 3 * 3, 4, Activation::Sigmoid),
            ],
            &[1, 8, 8],
        )
    }

    #[test]
    fn builds_and_runs() {
        let net = Network::from_spec(&tiny_spec(), 1).unwrap();
        // conv+sigmoid, maxpool, flatten, dense+sigmoid = 6 runtime layers
        assert_eq!(net.layer_count(), 6);
        let y = net.forward(&Tensor::zeros(&[1, 8, 8])).unwrap();
        assert_eq!(y.dims(), &[4]);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn rejects_invalid_spec() {
        let bad = NetworkSpec::new(
            vec![LayerSpec::dense(100, 10, Activation::Identity)],
            &[1, 8, 8],
        );
        assert!(Network::from_spec(&bad, 0).is_err());
    }

    #[test]
    fn forward_all_returns_every_layer() {
        let net = Network::from_spec(&tiny_spec(), 1).unwrap();
        let outs = net.forward_all(&Tensor::zeros(&[1, 8, 8])).unwrap();
        assert_eq!(outs.len(), 6);
        assert_eq!(outs[0].dims(), &[2, 6, 6]); // conv
        assert_eq!(outs[1].dims(), &[2, 6, 6]); // sigmoid
        assert_eq!(outs[2].dims(), &[2, 3, 3]); // pool
        assert_eq!(outs[3].dims(), &[18]); // flatten
        assert_eq!(outs[5].dims(), &[4]); // final sigmoid
                                          // last entry equals plain forward
        assert_eq!(outs[5], net.forward(&Tensor::zeros(&[1, 8, 8])).unwrap());
    }

    #[test]
    fn forward_prefix_matches_forward_all() {
        let net = Network::from_spec(&tiny_spec(), 7).unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.5);
        let outs = net.forward_all(&x).unwrap();
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(&net.forward_prefix(&x, i).unwrap(), out, "layer {i}");
        }
        assert!(net.forward_prefix(&x, 6).is_err());
    }

    #[test]
    fn forward_between_continues_correctly() {
        let net = Network::from_spec(&tiny_spec(), 7).unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.25);
        let outs = net.forward_all(&x).unwrap();
        // continue from pool output (layer 2) to the end (layer 5)
        let cont = net.forward_between(&outs[2], 2, 5).unwrap();
        assert_eq!(cont, outs[5]);
        assert!(net.forward_between(&outs[2], 3, 2).is_err());
        assert!(net.forward_between(&outs[2], 2, 6).is_err());
    }

    #[test]
    fn forward_batch_segment_matches_per_image_paths() {
        let net = Network::from_spec(&tiny_spec(), 7).unwrap();
        let xs: Vec<Tensor> = (0..5)
            .map(|i| Tensor::full(&[1, 8, 8], 0.1 * i as f32))
            .collect();
        let mut scratch = crate::batch::BatchScratch::new();
        let last = net.layer_count() - 1;
        // full prefix
        let batched = net
            .forward_batch_segment(&xs, None, last, &mut scratch)
            .unwrap();
        for (x, b) in xs.iter().zip(&batched) {
            assert_eq!(&net.forward(x).unwrap(), b);
        }
        // mid-network continuation
        let taps: Vec<Tensor> = xs
            .iter()
            .map(|x| net.forward_prefix(x, 2).unwrap())
            .collect();
        let cont = net
            .forward_batch_segment(&taps, Some(2), last, &mut scratch)
            .unwrap();
        for (t, c) in taps.iter().zip(&cont) {
            assert_eq!(&net.forward_between(t, 2, last).unwrap(), c);
        }
        // empty segment (from == upto) is identity, like forward_between
        let idem = net
            .forward_batch_segment(&taps, Some(2), 2, &mut scratch)
            .unwrap();
        assert_eq!(idem, taps);
        let idem_last = net
            .forward_batch_segment(&batched, Some(last), last, &mut scratch)
            .unwrap();
        assert_eq!(idem_last, batched);
        // invalid ranges rejected
        assert!(net
            .forward_batch_segment(&xs, Some(3), 2, &mut scratch)
            .is_err());
        assert!(net
            .forward_batch_segment(&xs, None, last + 1, &mut scratch)
            .is_err());
    }

    #[test]
    fn deterministic_init() {
        let a = Network::from_spec(&tiny_spec(), 5).unwrap();
        let b = Network::from_spec(&tiny_spec(), 5).unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.1);
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        let c = Network::from_spec(&tiny_spec(), 6).unwrap();
        assert_ne!(a.forward(&x).unwrap(), c.forward(&x).unwrap());
    }

    #[test]
    fn training_reduces_loss_on_single_sample() {
        let mut net = Network::from_spec(&tiny_spec(), 3).unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.7);
        let target = crate::loss::one_hot(2, 4).unwrap();
        let mut opt = crate::optim::Sgd::new(0.5, 0.0, 0.0);
        let initial = Loss::Mse.value(&net.forward(&x).unwrap(), &target).unwrap();
        for _ in 0..50 {
            net.zero_grads();
            net.train_sample(&x, &target, Loss::Mse, 1.0).unwrap();
            opt.step(&mut net).unwrap();
        }
        let trained = Loss::Mse.value(&net.forward(&x).unwrap(), &target).unwrap();
        assert!(
            trained < initial * 0.5,
            "loss should halve: {initial} -> {trained}"
        );
        assert_eq!(net.predict(&x).unwrap(), 2);
    }

    #[test]
    fn op_counts_sum_to_total() {
        let net = Network::from_spec(&tiny_spec(), 1).unwrap();
        let per_layer = net.op_counts().unwrap();
        let total: OpCount = per_layer.iter().copied().sum();
        assert_eq!(total, net.total_ops().unwrap());
        // conv MACs: 2 maps * 6*6 out * 1*3*3 taps = 648
        assert_eq!(per_layer[0].macs, 648);
        // dense MACs: 18 * 4 = 72
        assert_eq!(per_layer[4].macs, 72);
    }

    #[test]
    fn param_export_import_round_trip() {
        let mut a = Network::from_spec(&tiny_spec(), 1).unwrap();
        let mut b = Network::from_spec(&tiny_spec(), 2).unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.3);
        assert_ne!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        let params = a.export_params();
        b.import_params(&params).unwrap();
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }

    #[test]
    fn import_params_validates() {
        let mut a = Network::from_spec(&tiny_spec(), 1).unwrap();
        let params = a.export_params();
        assert!(a.import_params(&params[..1]).is_err());
        let mut too_many = params.clone();
        too_many.push(Tensor::zeros(&[1]));
        assert!(a.import_params(&too_many).is_err());
        let mut wrong_shape = params;
        wrong_shape[0] = Tensor::zeros(&[1, 1, 1, 1]);
        assert!(a.import_params(&wrong_shape).is_err());
    }

    #[test]
    fn spec_to_runtime_mapping() {
        let net = Network::from_spec(&tiny_spec(), 1).unwrap();
        // spec: conv(+act), maxpool, flatten, dense(+act)
        assert_eq!(net.runtime_index_of(0).unwrap(), 1); // conv's sigmoid
        assert_eq!(net.runtime_index_of(1).unwrap(), 2); // pool
        assert_eq!(net.runtime_index_of(2).unwrap(), 3); // flatten
        assert_eq!(net.runtime_index_of(3).unwrap(), 5); // dense's sigmoid
        assert!(net.runtime_index_of(4).is_err());
    }

    #[test]
    fn param_count_is_sum_of_layers() {
        let net = Network::from_spec(&tiny_spec(), 1).unwrap();
        // conv: 2*1*3*3 + 2 = 20; dense: 18*4 + 4 = 76
        assert_eq!(net.param_count(), 96);
    }
}
