//! # cdl-nn
//!
//! A from-scratch convolutional neural network library — the "Deep Learning
//! convolutional Network (DLN)" substrate of the CDL (DATE 2016)
//! reproduction. It provides everything needed to train the paper's two
//! LeNet-style baselines (Tables I & II) with plain minibatch SGD:
//!
//! * [`layers`] — `Conv2d`, `MaxPool2d`/`MeanPool2d`, `Dense`, elementwise
//!   activations and `Flatten`, all implementing the [`Layer`] trait with
//!   exact backward passes;
//! * [`loss`] — mean-squared error (the paper trains sigmoid nets with MSE,
//!   following R. Palm's toolbox) and softmax cross-entropy;
//! * [`optim`] — SGD with momentum, weight decay and step decay;
//! * [`network`] — a sequential [`Network`] container with per-layer
//!   activation capture (the hook the conditional stages attach to);
//! * [`trainer`] — epoch/minibatch training loop with metrics;
//! * [`metrics`] — accuracy and confusion matrices;
//! * every layer reports categorised operation counts
//!   ([`cdl_hw::OpCount`]) so the energy model can cost any network.
//!
//! ## Example
//!
//! ```
//! use cdl_nn::network::Network;
//! use cdl_nn::spec::{LayerSpec, NetworkSpec};
//! use cdl_nn::activation::Activation;
//! use cdl_tensor::Tensor;
//!
//! // A tiny conv net for 8x8 single-channel inputs, 4 classes.
//! let spec = NetworkSpec::new(vec![
//!     LayerSpec::conv(1, 4, 3, Activation::Sigmoid),
//!     LayerSpec::maxpool(2),
//!     LayerSpec::flatten(),
//!     LayerSpec::dense(4 * 3 * 3, 4, Activation::Sigmoid),
//! ], &[1, 8, 8]);
//! let mut net = Network::from_spec(&spec, 42).unwrap();
//! let x = Tensor::zeros(&[1, 8, 8]);
//! let y = net.forward(&x).unwrap();
//! assert_eq!(y.dims(), &[4]);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod activation;
pub mod batch;
pub mod error;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod spec;
pub mod trainer;

pub use activation::Activation;
pub use batch::BatchScratch;
pub use error::NnError;
pub use layer::Layer;
pub use loss::Loss;
pub use network::Network;
pub use optim::Sgd;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;
