//! Minibatch training loop.

use cdl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::loss::{one_hot, Loss};
use crate::metrics::accuracy;
use crate::network::Network;
use crate::optim::Sgd;
use crate::Result;

/// A labelled classification dataset: one tensor and one integer label per
/// sample.
///
/// This is the exchange format between `cdl-dataset` and the training /
/// evaluation code; it deliberately stores samples individually (no batch
/// axis) to match the sample-at-a-time layer contract.
#[derive(Debug, Clone, Default)]
pub struct LabelledSet {
    /// Input tensors, one per sample.
    pub images: Vec<Tensor>,
    /// Class labels aligned with `images`.
    pub labels: Vec<usize>,
}

impl LabelledSet {
    /// Creates a set, validating alignment.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadDataset`] when images and labels disagree in
    /// length.
    pub fn new(images: Vec<Tensor>, labels: Vec<usize>) -> Result<Self> {
        if images.len() != labels.len() {
            return Err(NnError::BadDataset(format!(
                "{} images vs {} labels",
                images.len(),
                labels.len()
            )));
        }
        Ok(LabelledSet { images, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` when the set has no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Returns the subset whose labels equal `label`.
    pub fn filter_label(&self, label: usize) -> LabelledSet {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for (img, &l) in self.images.iter().zip(&self.labels) {
            if l == label {
                images.push(img.clone());
                labels.push(l);
            }
        }
        LabelledSet { images, labels }
    }

    /// Returns the first `n` samples (or fewer if the set is smaller).
    pub fn take(&self, n: usize) -> LabelledSet {
        LabelledSet {
            images: self.images.iter().take(n).cloned().collect(),
            labels: self.labels.iter().take(n).copied().collect(),
        }
    }

    /// Largest label + 1, or 0 for an empty set.
    pub fn class_count(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }
}

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size (gradients averaged within a batch).
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Learning-rate multiplier applied after every epoch.
    pub lr_decay: f32,
    /// Training loss.
    pub loss: Loss,
    /// Shuffle seed (shuffling is always on, for SGD to make sense).
    pub seed: u64,
}

impl Default for TrainConfig {
    /// The configuration used for the paper-scale baselines: 1 epoch of
    /// MSE-trained sigmoid nets is already enough on MNIST-like data; the
    /// experiments use a handful of epochs.
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.5,
            momentum: 0.9,
            weight_decay: 0.0,
            lr_decay: 0.7,
            loss: Loss::Mse,
            seed: 0xCD1,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss across the epoch.
    pub mean_loss: f32,
    /// Training accuracy measured on the fly (predictions during forward
    /// passes of training, before the update — a slight underestimate).
    pub train_accuracy: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Final epoch's mean loss (`None` before any epoch ran).
    pub fn final_loss(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.mean_loss)
    }
}

/// Trains `net` on `data` with minibatch SGD.
///
/// Gradients are accumulated per batch with a `1/batch` scale and applied
/// once per batch. Returns per-epoch statistics.
///
/// # Errors
///
/// Returns [`NnError::BadDataset`] for an empty dataset and propagates layer
/// errors.
pub fn train(net: &mut Network, data: &LabelledSet, cfg: &TrainConfig) -> Result<TrainReport> {
    if data.is_empty() {
        return Err(NnError::BadDataset("empty training set".into()));
    }
    let classes = output_classes(net)?;
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let batch = cfg.batch_size.max(1);
    let mut report = TrainReport { epochs: Vec::new() };

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(data.len());
        for chunk in order.chunks(batch) {
            net.zero_grads();
            let scale = 1.0 / chunk.len() as f32;
            for &i in chunk {
                let x = &data.images[i];
                let label = data.labels[i];
                let target = one_hot(label, classes)?;
                let out = net.forward_train(x)?;
                let lv = cfg.loss.value(&out, &target)?;
                let mut grad = cfg.loss.gradient(&out, &target)?;
                grad.map_in_place(|g| g * scale);
                net.backward(&grad)?;
                loss_sum += lv as f64;
                if let Some(pred) = out.argmax() {
                    pairs.push((label, pred));
                }
            }
            opt.step(net)?;
        }
        report.epochs.push(EpochStats {
            epoch,
            mean_loss: (loss_sum / data.len() as f64) as f32,
            train_accuracy: accuracy(pairs.iter().copied()),
        });
        opt.decay_lr(cfg.lr_decay);
    }
    Ok(report)
}

/// Evaluates classification accuracy of `net` on `data`.
///
/// # Errors
///
/// Propagates layer errors.
pub fn evaluate(net: &Network, data: &LabelledSet) -> Result<f64> {
    let mut pairs = Vec::with_capacity(data.len());
    for (x, &label) in data.images.iter().zip(&data.labels) {
        pairs.push((label, net.predict(x)?));
    }
    Ok(accuracy(pairs))
}

fn output_classes(net: &Network) -> Result<usize> {
    let out = net.spec().output_shape()?;
    if out.len() != 1 || out[0] == 0 {
        return Err(NnError::BadConfig(format!(
            "classifier network must end in a non-empty rank-1 output, got {out:?}"
        )));
    }
    Ok(out[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::spec::{LayerSpec, NetworkSpec};

    /// A linearly separable 2-class toy problem on 4-d inputs.
    fn toy_data(n: usize) -> LabelledSet {
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let label = rng.random_range(0..2usize);
            let center = if label == 0 { -1.0 } else { 1.0 };
            let v: Vec<f32> = (0..4)
                .map(|_| center + rng.random_range(-0.3..0.3))
                .collect();
            images.push(Tensor::from_vec(v, &[4]).unwrap());
            labels.push(label);
        }
        LabelledSet::new(images, labels).unwrap()
    }

    fn toy_net(seed: u64) -> Network {
        let spec = NetworkSpec::new(vec![LayerSpec::dense(4, 2, Activation::Sigmoid)], &[4]);
        Network::from_spec(&spec, seed).unwrap()
    }

    #[test]
    fn labelled_set_validation() {
        assert!(LabelledSet::new(vec![Tensor::zeros(&[1])], vec![]).is_err());
        let s = LabelledSet::new(vec![Tensor::zeros(&[1])], vec![3]).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.class_count(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn filter_and_take() {
        let s = toy_data(50);
        let zeros = s.filter_label(0);
        assert!(zeros.labels.iter().all(|&l| l == 0));
        assert!(!zeros.is_empty());
        assert_eq!(s.take(10).len(), 10);
        assert_eq!(s.take(10_000).len(), 50);
    }

    #[test]
    fn training_learns_separable_problem() {
        let data = toy_data(200);
        let mut net = toy_net(2);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 8,
            lr: 0.8,
            momentum: 0.5,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &data, &cfg).unwrap();
        assert_eq!(report.epochs.len(), 5);
        let acc = evaluate(&net, &data).unwrap();
        assert!(acc > 0.95, "accuracy {acc} too low for separable data");
        // loss decreased over epochs
        assert!(report.final_loss().unwrap() < report.epochs[0].mean_loss);
    }

    #[test]
    fn empty_dataset_rejected() {
        let mut net = toy_net(1);
        assert!(train(&mut net, &LabelledSet::default(), &TrainConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seeds() {
        let data = toy_data(64);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let mut a = toy_net(3);
        let mut b = toy_net(3);
        train(&mut a, &data, &cfg).unwrap();
        train(&mut b, &data, &cfg).unwrap();
        let x = &data.images[0];
        assert_eq!(a.forward(x).unwrap(), b.forward(x).unwrap());
    }

    #[test]
    fn evaluate_on_empty_is_zero() {
        let net = toy_net(1);
        assert_eq!(evaluate(&net, &LabelledSet::default()).unwrap(), 0.0);
    }

    #[test]
    fn batch_size_zero_is_clamped() {
        let data = toy_data(16);
        let mut net = toy_net(4);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, &data, &cfg).is_ok());
    }
}
