//! The [`Layer`] trait implemented by every network building block.

use cdl_hw::OpCount;
use cdl_tensor::Tensor;

use crate::batch::BatchScratch;
use crate::Result;

/// A mutable view of one parameter tensor and its accumulated gradient.
///
/// Returned by [`Layer::params`] so optimizers can update weights in place
/// without knowing layer internals.
#[derive(Debug)]
pub struct ParamGrad<'a> {
    /// The parameter tensor (updated in place by the optimizer).
    pub param: &'a mut Tensor,
    /// Gradient accumulated by `backward` calls since the last `zero_grads`.
    pub grad: &'a mut Tensor,
}

/// A differentiable network building block.
///
/// Layers operate on single samples (no batch axis); minibatching is done by
/// accumulating gradients across consecutive
/// [`forward_train`](Layer::forward_train)/[`backward`](Layer::backward)
/// pairs before an optimizer step. The networks in this reproduction are
/// LeNet-scale, where sample-at-a-time keeps every backward pass trivially
/// correct and still trains in seconds.
///
/// # Contract
///
/// * `forward` must be pure (no caching) so it can be called concurrently
///   during evaluation.
/// * `forward_train` caches whatever `backward` needs; `backward` consumes
///   the cache of the **most recent** `forward_train` and returns the
///   gradient w.r.t. that input while *accumulating* parameter gradients.
/// * `op_count` must describe the work done by `forward` for a given input
///   shape — it is the basis of the paper's OPS metric.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Human-readable layer description, e.g. `"conv 5x5x1 -> 6 maps"`.
    fn name(&self) -> String;

    /// Inference-mode forward pass (no side effects).
    ///
    /// # Errors
    ///
    /// Shape/geometry errors from the underlying tensor ops.
    fn forward(&self, x: &Tensor) -> Result<Tensor>;

    /// Inference-mode forward pass over a whole batch, reusing the shared
    /// scratch buffers (and running the GEMM microkernel they select — see
    /// [`crate::batch::BatchScratch::kernel`]).
    ///
    /// Must produce exactly [`Layer::forward`]'s output for every element
    /// (the default implementation simply loops); layers with a genuinely
    /// batched kernel (conv via one im2col+GEMM, dense via one batched
    /// affine) override this with a bit-identical vectorised path.
    ///
    /// # Errors
    ///
    /// Shape/geometry errors from the underlying tensor ops.
    fn forward_batch(&self, xs: &[Tensor], scratch: &mut BatchScratch) -> Result<Vec<Tensor>> {
        let _ = scratch;
        xs.iter().map(|x| self.forward(x)).collect()
    }

    /// Training-mode forward pass; caches intermediates for `backward`.
    ///
    /// # Errors
    ///
    /// Shape/geometry errors from the underlying tensor ops.
    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor>;

    /// Backpropagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Errors
    ///
    /// [`crate::NnError::NoForwardCache`] when called before
    /// `forward_train`, or shape errors when `grad_out` is malformed.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Mutable access to parameters and their gradients (empty for
    /// parameter-free layers).
    fn params(&mut self) -> Vec<ParamGrad<'_>> {
        Vec::new()
    }

    /// Read-only snapshot of the parameter tensors, in the same order as
    /// [`Layer::params`] (empty for parameter-free layers).
    fn param_snapshot(&self) -> Vec<cdl_tensor::Tensor> {
        Vec::new()
    }

    /// Number of trainable scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Clears accumulated gradients (no-op for parameter-free layers).
    fn zero_grads(&mut self) {}

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Geometry errors when the input shape is incompatible.
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>>;

    /// Work performed by one `forward` call on the given input shape.
    ///
    /// # Errors
    ///
    /// Geometry errors when the input shape is incompatible.
    fn op_count(&self, input: &[usize]) -> Result<OpCount>;
}

#[cfg(test)]
mod tests {
    use super::*;

    // a minimal layer proving the trait is object safe and defaults work
    #[derive(Debug)]
    struct Noop;

    impl Layer for Noop {
        fn name(&self) -> String {
            "noop".into()
        }
        fn forward(&self, x: &Tensor) -> Result<Tensor> {
            Ok(x.clone())
        }
        fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
            Ok(x.clone())
        }
        fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
            Ok(grad_out.clone())
        }
        fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
            Ok(input.to_vec())
        }
        fn op_count(&self, _input: &[usize]) -> Result<OpCount> {
            Ok(OpCount::ZERO)
        }
    }

    #[test]
    fn trait_is_object_safe_with_defaults() {
        let mut layer: Box<dyn Layer> = Box::new(Noop);
        assert_eq!(layer.name(), "noop");
        assert!(layer.params().is_empty());
        assert_eq!(layer.param_count(), 0);
        layer.zero_grads(); // default no-op must not panic
        let x = Tensor::ones(&[3]);
        assert_eq!(layer.forward(&x).unwrap(), x);
    }
}
