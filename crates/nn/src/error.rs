//! Error type for network construction and execution.

use cdl_tensor::TensorError;
use std::fmt;

/// Error produced by `cdl-nn` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape/geometry problems).
    Tensor(TensorError),
    /// A layer was configured inconsistently (e.g. dense fan-in that does not
    /// match the incoming feature count).
    BadConfig(String),
    /// `backward` was called without a preceding `forward_train`.
    NoForwardCache {
        /// Layer that was asked to backpropagate.
        layer: String,
    },
    /// A parameter import had the wrong number or shapes of tensors.
    ParamMismatch(String),
    /// The training set is malformed (empty, or images/labels disagree).
    BadDataset(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadConfig(msg) => write!(f, "bad layer configuration: {msg}"),
            NnError::NoForwardCache { layer } => {
                write!(
                    f,
                    "backward called on `{layer}` without a cached forward pass"
                )
            }
            NnError::ParamMismatch(msg) => write!(f, "parameter mismatch: {msg}"),
            NnError::BadDataset(msg) => write!(f, "bad dataset: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = NnError::from(TensorError::EmptyTensor);
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());

        let e = NnError::BadConfig("dense fan-in 10 vs features 864".into());
        assert!(e.to_string().contains("864"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
