//! Classification metrics.

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::Result;

/// A square confusion matrix over `classes` labels.
///
/// Rows are true labels, columns predicted labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>, // row-major [true][pred]
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for zero classes.
    pub fn new(classes: usize) -> Result<Self> {
        if classes == 0 {
            return Err(NnError::BadConfig(
                "confusion matrix needs >= 1 class".into(),
            ));
        }
        Ok(ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for out-of-range labels.
    pub fn record(&mut self, true_label: usize, predicted: usize) -> Result<()> {
        if true_label >= self.classes || predicted >= self.classes {
            return Err(NnError::BadConfig(format!(
                "label out of range: true={true_label} pred={predicted} classes={}",
                self.classes
            )));
        }
        self.counts[true_label * self.classes + predicted] += 1;
        Ok(())
    }

    /// Count for a (true, predicted) pair.
    pub fn count(&self, true_label: usize, predicted: usize) -> u64 {
        self.counts
            .get(true_label * self.classes + predicted)
            .copied()
            .unwrap_or(0)
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy in `[0, 1]`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (correct / instances of the class); `None` when the
    /// class has no observations.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Per-class precision (correct / predictions of the class); `None` when
    /// the class was never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / col as f64)
        }
    }

    /// Number of observations whose true label is `class`.
    pub fn class_total(&self, class: usize) -> u64 {
        (0..self.classes).map(|p| self.count(class, p)).sum()
    }

    /// Renders an aligned table.
    pub fn render(&self) -> String {
        let mut out = String::from("true\\pred");
        for p in 0..self.classes {
            out.push_str(&format!("{p:>7}"));
        }
        out.push('\n');
        for t in 0..self.classes {
            out.push_str(&format!("{t:>9}"));
            for p in 0..self.classes {
                out.push_str(&format!("{:>7}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

/// Accuracy of a prediction iterator: fraction of `(true, predicted)` pairs
/// that match. Returns 0 for an empty iterator.
pub fn accuracy(pairs: impl IntoIterator<Item = (usize, usize)>) -> f64 {
    let mut total = 0u64;
    let mut correct = 0u64;
    for (t, p) in pairs {
        total += 1;
        if t == p {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_classes() {
        assert!(ConfusionMatrix::new(0).is_err());
    }

    #[test]
    fn records_and_computes() {
        let mut m = ConfusionMatrix::new(3).unwrap();
        // 2 correct of class 0, 1 confusion 0->1, 1 correct class 2
        m.record(0, 0).unwrap();
        m.record(0, 0).unwrap();
        m.record(0, 1).unwrap();
        m.record(2, 2).unwrap();
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall(1), None);
        assert!((m.precision(1).unwrap() - 0.0).abs() < 1e-12);
        assert_eq!(m.precision(2), Some(1.0));
        assert_eq!(m.class_total(0), 3);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut m = ConfusionMatrix::new(2).unwrap();
        assert!(m.record(2, 0).is_err());
        assert!(m.record(0, 2).is_err());
    }

    #[test]
    fn empty_matrix_metrics() {
        let m = ConfusionMatrix::new(2).unwrap();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.total(), 0);
        assert_eq!(m.recall(0), None);
    }

    #[test]
    fn render_contains_counts() {
        let mut m = ConfusionMatrix::new(2).unwrap();
        m.record(1, 0).unwrap();
        let s = m.render();
        assert!(s.contains("true\\pred"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(Vec::<(usize, usize)>::new()), 0.0);
        assert!((accuracy(vec![(1, 1), (2, 3)]) - 0.5).abs() < 1e-12);
    }
}
