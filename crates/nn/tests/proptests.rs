//! Property-based tests for the CNN substrate: exact gradients on random
//! geometry, and training-loop invariants.

use cdl_nn::activation::Activation;
use cdl_nn::layer::Layer;
use cdl_nn::layers::{Conv2d, Dense, MaxPool2d, MeanPool2d};
use cdl_nn::loss::{one_hot, Loss};
use cdl_nn::network::Network;
use cdl_nn::spec::{LayerSpec, NetworkSpec};
use cdl_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Numerically checks dL/dx of a layer against finite differences, where
/// L = Σ output (so grad_out = ones).
fn input_gradient_matches<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) -> Result<(), String> {
    let y = layer
        .forward_train(x)
        .map_err(|e| format!("forward: {e}"))?;
    let gx = layer
        .backward(&Tensor::ones(y.dims()))
        .map_err(|e| format!("backward: {e}"))?;
    let mut xp = x.clone();
    let eps = 1e-2f32;
    for i in (0..x.len()).step_by((x.len() / 12).max(1)) {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let lp = layer.forward(&xp).map_err(|e| e.to_string())?.sum();
        xp.data_mut()[i] = orig - eps;
        let lm = layer.forward(&xp).map_err(|e| e.to_string())?.sum();
        xp.data_mut()[i] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        let analytic = gx.data()[i];
        if (fd - analytic).abs() > tol {
            return Err(format!("grad[{i}]: fd {fd} vs analytic {analytic}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conv input gradients are exact for random geometry and data.
    #[test]
    fn conv_input_gradient_random_geometry(
        cin in 1usize..3,
        cout in 1usize..3,
        k in 2usize..4,
        size in 5usize..8,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Conv2d::new(cin, cout, k, &mut rng).unwrap();
        let data: Vec<f32> = (0..cin * size * size).map(|_| rng.random_range(-1.0..1.0)).collect();
        let x = Tensor::from_vec(data, &[cin, size, size]).unwrap();
        input_gradient_matches(&mut layer, &x, 0.05).map_err(TestCaseError::fail)?;
    }

    /// Dense input gradients are exact for random geometry and data.
    #[test]
    fn dense_input_gradient_random_geometry(
        fin in 1usize..24,
        fout in 1usize..8,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(fin, fout, &mut rng).unwrap();
        let data: Vec<f32> = (0..fin).map(|_| rng.random_range(-1.0..1.0)).collect();
        let x = Tensor::from_vec(data, &[fin]).unwrap();
        input_gradient_matches(&mut layer, &x, 0.03).map_err(TestCaseError::fail)?;
    }

    /// Pooling gradients conserve mass for random inputs.
    #[test]
    fn pool_gradients_random(size in 2usize..5, c in 1usize..4, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..c * size * 2 * size * 2).map(|_| rng.random_range(-2.0..2.0)).collect();
        let x = Tensor::from_vec(data, &[c, size * 2, size * 2]).unwrap();

        let mut maxp = MaxPool2d::new(2).unwrap();
        let y = maxp.forward_train(&x).unwrap();
        let g = maxp.backward(&Tensor::ones(y.dims())).unwrap();
        prop_assert!((g.sum() - y.len() as f32).abs() < 1e-3);

        let mut meanp = MeanPool2d::new(2).unwrap();
        let y = meanp.forward_train(&x).unwrap();
        let g = meanp.backward(&Tensor::ones(y.dims())).unwrap();
        prop_assert!((g.sum() - y.len() as f32).abs() < 1e-3);
    }

    /// One SGD step along the accumulated gradient reduces the loss when
    /// the step is small enough (descent property), for random networks.
    #[test]
    fn sgd_step_descends(seed in 0u64..60, label in 0usize..4) {
        let spec = NetworkSpec::new(
            vec![
                LayerSpec::conv(1, 2, 3, Activation::Tanh),
                LayerSpec::maxpool(2),
                LayerSpec::flatten(),
                LayerSpec::dense(2 * 3 * 3, 4, Activation::Identity),
            ],
            &[1, 8, 8],
        );
        let mut net = Network::from_spec(&spec, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABC);
        let data: Vec<f32> = (0..64).map(|_| rng.random_range(0.0..1.0)).collect();
        let x = Tensor::from_vec(data, &[1, 8, 8]).unwrap();
        let t = one_hot(label, 4).unwrap();
        let before = Loss::Mse.value(&net.forward(&x).unwrap(), &t).unwrap();
        if before < 1e-6 {
            return Ok(()); // already at minimum
        }
        let mut opt = cdl_nn::optim::Sgd::plain(0.01);
        net.zero_grads();
        net.train_sample(&x, &t, Loss::Mse, 1.0).unwrap();
        opt.step(&mut net).unwrap();
        let after = Loss::Mse.value(&net.forward(&x).unwrap(), &t).unwrap();
        prop_assert!(after <= before + 1e-6, "loss rose: {before} -> {after}");
    }

    /// forward_all's last element always equals forward, and prefix runs
    /// agree with it, for random inputs.
    #[test]
    fn forward_variants_agree(seed in 0u64..60) {
        let spec = NetworkSpec::new(
            vec![
                LayerSpec::conv(1, 3, 3, Activation::Sigmoid),
                LayerSpec::meanpool(2),
                LayerSpec::flatten(),
                LayerSpec::dense(3 * 3 * 3, 5, Activation::Sigmoid),
            ],
            &[1, 8, 8],
        );
        let net = Network::from_spec(&spec, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..64).map(|_| rng.random_range(0.0..1.0)).collect();
        let x = Tensor::from_vec(data, &[1, 8, 8]).unwrap();
        let outs = net.forward_all(&x).unwrap();
        prop_assert_eq!(outs.last().unwrap(), &net.forward(&x).unwrap());
        for (i, out) in outs.iter().enumerate() {
            prop_assert_eq!(&net.forward_prefix(&x, i).unwrap(), out);
        }
        // continuing from any split point reaches the same output
        for split in 0..net.layer_count() - 1 {
            let cont = net.forward_between(&outs[split], split, net.layer_count() - 1).unwrap();
            prop_assert_eq!(&cont, outs.last().unwrap());
        }
    }

    /// Parameter export/import is lossless for random networks.
    #[test]
    fn param_round_trip(seed_a in 0u64..40, seed_b in 40u64..80) {
        let spec = NetworkSpec::new(
            vec![
                LayerSpec::conv(1, 2, 3, Activation::Relu),
                LayerSpec::flatten(),
                LayerSpec::dense(2 * 6 * 6, 3, Activation::Identity),
            ],
            &[1, 8, 8],
        );
        let mut a = Network::from_spec(&spec, seed_a).unwrap();
        let mut b = Network::from_spec(&spec, seed_b).unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.37);
        b.import_params(&a.export_params()).unwrap();
        prop_assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }
}
