//! Property-based tests for the tensor crate's core invariants.

use cdl_tensor::gemm::{self, GemmKernel};
use cdl_tensor::im2col::{conv2d_valid_batch, ConvScratch};
use cdl_tensor::{conv, im2col, ops, pool, Shape, Tensor};
use proptest::prelude::*;

/// Strategy: a small tensor with shape `[c, h, w]` and bounded values.
fn small_chw() -> impl Strategy<Value = Tensor> {
    (1usize..4, 2usize..7, 2usize..7).prop_flat_map(|(c, h, w)| {
        proptest::collection::vec(-10.0f32..10.0, c * h * w)
            .prop_map(move |v| Tensor::from_vec(v, &[c, h, w]).unwrap())
    })
}

proptest! {
    /// linear_index and multi_index are mutual inverses for every offset.
    #[test]
    fn shape_index_round_trip(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let s = Shape::new(&dims);
        for off in 0..s.volume() {
            let idx = s.multi_index(off).unwrap();
            prop_assert_eq!(s.linear_index(&idx).unwrap(), off);
        }
    }

    /// Elementwise addition commutes, subtraction anti-commutes.
    #[test]
    fn add_commutes(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = v.len();
        let a = Tensor::from_vec(v.clone(), &[n]).unwrap();
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = ops::add(&a, &b).unwrap();
        let ba = ops::add(&b, &a).unwrap();
        prop_assert_eq!(ab, ba);
        let s1 = ops::sub(&a, &b).unwrap();
        let s2 = ops::scale(&ops::sub(&b, &a).unwrap(), -1.0);
        for (x, y) in s1.data().iter().zip(s2.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// softmax output is a probability distribution and preserves argmax.
    #[test]
    fn softmax_is_distribution(v in proptest::collection::vec(-30.0f32..30.0, 2..16)) {
        let n = v.len();
        let x = Tensor::from_vec(v, &[n]).unwrap();
        let p = ops::softmax(&x);
        let sum: f32 = p.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.data().iter().all(|&q| (0.0..=1.0).contains(&q)));
        prop_assert_eq!(p.argmax(), x.argmax());
    }

    /// Max pooling dominates mean pooling pointwise.
    #[test]
    fn maxpool_geq_meanpool(x in small_chw()) {
        let dims = x.dims().to_vec();
        let window = 1 + (dims[1].min(dims[2]) > 1) as usize;
        if !dims[1].is_multiple_of(window) || !dims[2].is_multiple_of(window) {
            return Ok(()); // geometry not tileable; covered by unit tests
        }
        let mx = pool::maxpool2d(&x, window).unwrap().output;
        let mn = pool::meanpool2d(&x, window).unwrap().output;
        for (a, b) in mx.data().iter().zip(mn.data()) {
            prop_assert!(a >= b || (a - b).abs() < 1e-6);
        }
    }

    /// Convolution is linear in the input: conv(αx) = α·conv(x) when bias=0.
    #[test]
    fn conv_is_linear(x in small_chw(), alpha in -3.0f32..3.0) {
        let c = x.dims()[0];
        let k = Tensor::full(&[2, c, 2, 2], 0.25);
        let bias = vec![0.0f32; 2];
        if x.dims()[1] < 2 || x.dims()[2] < 2 {
            return Ok(());
        }
        let y1 = conv::conv2d_valid(&x, &k, &bias).unwrap();
        let xs = ops::scale(&x, alpha);
        let y2 = conv::conv2d_valid(&xs, &k, &bias).unwrap();
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a * alpha - b).abs() < 1e-2);
        }
    }

    /// Max-pool backward conserves gradient mass.
    #[test]
    fn maxpool_backward_conserves_mass(x in small_chw()) {
        let dims = x.dims().to_vec();
        if !dims[1].is_multiple_of(2) || !dims[2].is_multiple_of(2) {
            return Ok(());
        }
        let p = pool::maxpool2d(&x, 2).unwrap();
        let g = Tensor::ones(p.output.dims());
        let gx = pool::maxpool2d_backward(&dims, p.argmax.as_ref().unwrap(), &g).unwrap();
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-4);
    }

    /// Mean-pool backward conserves gradient mass.
    #[test]
    fn meanpool_backward_conserves_mass(x in small_chw()) {
        let dims = x.dims().to_vec();
        if !dims[1].is_multiple_of(2) || !dims[2].is_multiple_of(2) {
            return Ok(());
        }
        let p = pool::meanpool2d(&x, 2).unwrap();
        let g = Tensor::ones(p.output.dims());
        let gx = pool::meanpool2d_backward(&dims, 2, &g).unwrap();
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-4);
    }

    /// reshape never changes the data, only the shape.
    #[test]
    fn reshape_preserves_buffer(v in proptest::collection::vec(-5.0f32..5.0, 12)) {
        let t = Tensor::from_vec(v, &[12]).unwrap();
        for dims in [[3usize, 4], [4, 3], [2, 6], [6, 2]] {
            let r = t.reshape(&dims).unwrap();
            prop_assert_eq!(r.data(), t.data());
        }
    }

    /// The im2col+GEMM lowering agrees with direct convolution within 1e-4
    /// across random shapes, and the batched path is bit-identical to the
    /// direct path for every image of the batch.
    #[test]
    fn batched_conv_matches_direct(
        n in 1usize..5,
        cin in 1usize..4,
        cout in 1usize..5,
        k in 1usize..4,
        // up to ow = 12: exercises both the fused direct-conv path of the
        // Simd arm (ow >= 8, incl. the 8..=15 single-vector tile and the
        // scalar column tail) and its narrow-geometry GEMM fallback
        extra in 0usize..12,
        seed in 0u64..500,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let size = k + extra; // guarantees a valid geometry
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| {
                let d: Vec<f32> = (0..cin * size * size)
                    .map(|_| rng.random_range(-2.0..2.0))
                    .collect();
                Tensor::from_vec(d, &[cin, size, size]).unwrap()
            })
            .collect();
        let kd: Vec<f32> = (0..cout * cin * k * k).map(|_| rng.random_range(-1.0..1.0)).collect();
        let kernels = Tensor::from_vec(kd, &[cout, cin, k, k]).unwrap();
        let bias: Vec<f32> = (0..cout).map(|_| rng.random_range(-0.3..0.3)).collect();

        // single-image im2col+GEMM lowering: within 1e-4 of direct
        for x in &inputs {
            let direct = conv::conv2d_valid(x, &kernels, &bias).unwrap();
            let lowered = im2col::conv2d_valid_im2col(x, &kernels, &bias).unwrap();
            prop_assert_eq!(direct.dims(), lowered.dims());
            for (a, b) in direct.data().iter().zip(lowered.data()) {
                prop_assert!((a - b).abs() < 1e-4, "lowered mismatch: {} vs {}", a, b);
            }
        }

        // batched scratch path: bit-identical to direct, per image, for
        // every GEMM microkernel
        let mut scratch = ConvScratch::default();
        for gemm_kernel in GemmKernel::ALL {
            let batched =
                conv2d_valid_batch(&inputs, &kernels, &bias, &mut scratch, gemm_kernel).unwrap();
            prop_assert_eq!(batched.len(), inputs.len());
            for (x, b) in inputs.iter().zip(&batched) {
                let direct = conv::conv2d_valid(x, &kernels, &bias).unwrap();
                prop_assert_eq!(direct.dims(), b.dims());
                for (dv, bv) in direct.data().iter().zip(b.data()) {
                    prop_assert_eq!(dv.to_bits(), bv.to_bits(), "kernel {}", gemm_kernel);
                }
            }
        }
    }

    /// Batched affine rows are bit-identical to matvec + bias per sample.
    #[test]
    fn affine_rows_matches_matvec(
        rows in 1usize..6,
        m in 1usize..5,
        kdim in 1usize..8,
        seed in 0u64..500,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w_data: Vec<f32> = (0..m * kdim).map(|_| rng.random_range(-2.0..2.0)).collect();
        let w = Tensor::from_vec(w_data, &[m, kdim]).unwrap();
        let bias: Vec<f32> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
        let samples: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..kdim).map(|_| rng.random_range(-2.0..2.0)).collect())
            .collect();
        let refs: Vec<&[f32]> = samples.iter().map(|s| s.as_slice()).collect();
        for gemm_kernel in GemmKernel::ALL {
            let mut out = vec![0.0f32; rows * m];
            ops::affine_rows_into(&refs, &w, &bias, &mut out, gemm_kernel).unwrap();
            for (i, s) in samples.iter().enumerate() {
                let x = Tensor::from_vec(s.clone(), &[kdim]).unwrap();
                let mut y = ops::matvec(&w, &x).unwrap();
                for (o, b) in y.data_mut().iter_mut().zip(&bias) {
                    *o += b;
                }
                for (a, b) in y.data().iter().zip(&out[i * m..(i + 1) * m]) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "kernel {}", gemm_kernel);
                }
            }
        }
    }

    /// Kernel parity, nn shape: every [`GemmKernel`] — the reference
    /// loops, the register-blocked tiles, and the AVX2 `Simd` arm (or its
    /// transparent fallback on non-AVX2 hosts) — is bit-identical to a
    /// naive triple loop replaying the reference accumulation order (bias
    /// first, then k ascending), across random (m, k, n) — including
    /// remainder tails (m % 4 ≠ 0 and unaligned n % 8 ≠ 0, the SIMD
    /// vector-tail case, by construction of the ranges), k = 0, and
    /// single-row/column outputs.
    #[test]
    fn gemm_nn_kernels_match_naive_triple_loop(
        m in 1usize..11,
        kdim in 0usize..30,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * kdim).map(|_| rng.random_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..kdim * n).map(|_| rng.random_range(-2.0..2.0)).collect();
        let bias: Vec<f32> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut expected = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for p in 0..kdim {
                    acc += a[i * kdim + p] * b[p * n + j];
                }
                expected[i * n + j] = acc;
            }
        }
        for gemm_kernel in GemmKernel::ALL {
            let mut out = vec![f32::NAN; m * n];
            gemm::gemm_nn(gemm_kernel, m, kdim, n, &a, &b, &bias, &mut out);
            for (got, want) in out.iter().zip(&expected) {
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "kernel {} at ({}, {}, {})", gemm_kernel, m, kdim, n
                );
            }
        }
    }

    /// Kernel parity, nt shape: every [`GemmKernel`] (including the AVX2
    /// `Simd` arm's packed-weight path and its ragged last block when
    /// m % 8 ≠ 0) is bit-identical to a naive per-element dot-then-bias
    /// loop across random (rows, m, k) — including ragged tile tails,
    /// k = 0 and single-sample/single-output extremes.
    #[test]
    fn gemm_nt_kernels_match_naive_dot_loop(
        rows in 1usize..10,
        m in 1usize..11,
        kdim in 0usize..30,
        seed in 0u64..1000,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..kdim).map(|_| rng.random_range(-2.0..2.0)).collect())
            .collect();
        let refs: Vec<&[f32]> = samples.iter().map(|s| s.as_slice()).collect();
        let w: Vec<f32> = (0..m * kdim).map(|_| rng.random_range(-2.0..2.0)).collect();
        let bias: Vec<f32> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut expected = vec![0.0f32; rows * m];
        for (i, s) in samples.iter().enumerate() {
            for r in 0..m {
                let mut acc = 0.0f32;
                for p in 0..kdim {
                    acc += w[r * kdim + p] * s[p];
                }
                expected[i * m + r] = acc + bias[r];
            }
        }
        for gemm_kernel in GemmKernel::ALL {
            let mut out = vec![f32::NAN; rows * m];
            gemm::gemm_nt(gemm_kernel, kdim, &refs, &w, &bias, &mut out);
            for (got, want) in out.iter().zip(&expected) {
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "kernel {} at ({}, {}, {})", gemm_kernel, rows, m, kdim
                );
            }
        }
    }

    /// matvec agrees with an explicit double loop.
    #[test]
    fn matvec_matches_reference(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w_data: Vec<f32> = (0..rows * cols).map(|_| rng.random_range(-2.0..2.0)).collect();
        let x_data: Vec<f32> = (0..cols).map(|_| rng.random_range(-2.0..2.0)).collect();
        let w = Tensor::from_vec(w_data.clone(), &[rows, cols]).unwrap();
        let x = Tensor::from_vec(x_data.clone(), &[cols]).unwrap();
        let y = ops::matvec(&w, &x).unwrap();
        for r in 0..rows {
            let expect: f32 = (0..cols).map(|c| w_data[r * cols + c] * x_data[c]).sum();
            prop_assert!((y.data()[r] - expect).abs() < 1e-4);
        }
    }
}
