//! Elementwise arithmetic, reductions over axes, and dense linear algebra.
//!
//! All binary operations require exactly matching shapes — the networks in
//! this reproduction never need broadcasting, and omitting it removes a whole
//! class of silent-shape bugs.

use crate::error::TensorError;
use crate::gemm::{self, GemmKernel};
use crate::tensor::Tensor;
use crate::Result;

/// Elementwise addition: `out = a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x + y)
}

/// Elementwise subtraction: `out = a - b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x - y)
}

/// Elementwise (Hadamard) product: `out = a ⊙ b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x * y)
}

/// Applies `f` pairwise to two same-shaped tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn zip_with(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor::from_vec(data, a.dims())
}

/// In-place AXPY: `acc += alpha * x`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn axpy(acc: &mut Tensor, alpha: f32, x: &Tensor) -> Result<()> {
    if acc.shape() != x.shape() {
        return Err(TensorError::ShapeMismatch {
            left: acc.dims().to_vec(),
            right: x.dims().to_vec(),
        });
    }
    for (a, &b) in acc.data_mut().iter_mut().zip(x.data()) {
        *a += alpha * b;
    }
    Ok(())
}

/// Multiplies every element by a scalar, returning a new tensor.
pub fn scale(a: &Tensor, alpha: f32) -> Tensor {
    a.map(|x| x * alpha)
}

/// Dot product of two tensors viewed as flat vectors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when element counts differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    Ok(a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum())
}

/// Matrix–vector product `W x` where `w` is `[rows, cols]` and `x` has `cols`
/// elements (any shape, read flat). Returns a rank-1 tensor of `rows`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `w` is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
pub fn matvec(w: &Tensor, x: &Tensor) -> Result<Tensor> {
    if w.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: w.rank(),
        });
    }
    let (rows, cols) = (w.dims()[0], w.dims()[1]);
    if x.len() != cols {
        return Err(TensorError::ShapeMismatch {
            left: w.dims().to_vec(),
            right: x.dims().to_vec(),
        });
    }
    let wd = w.data();
    let xd = x.data();
    let mut out = vec![0.0f32; rows];
    for (r, o) in out.iter_mut().enumerate() {
        let row = &wd[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (a, b) in row.iter().zip(xd) {
            acc += a * b;
        }
        *o = acc;
    }
    Tensor::from_vec(out, &[rows])
}

/// Transposed matrix–vector product `Wᵀ y` where `w` is `[rows, cols]` and
/// `y` has `rows` elements. Returns a rank-1 tensor of `cols`.
///
/// Used to backpropagate gradients through a dense layer without materialising
/// the transpose.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] on
/// bad operands.
pub fn matvec_t(w: &Tensor, y: &Tensor) -> Result<Tensor> {
    if w.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: w.rank(),
        });
    }
    let (rows, cols) = (w.dims()[0], w.dims()[1]);
    if y.len() != rows {
        return Err(TensorError::ShapeMismatch {
            left: w.dims().to_vec(),
            right: y.dims().to_vec(),
        });
    }
    let wd = w.data();
    let yd = y.data();
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        let yv = yd[r];
        if yv == 0.0 {
            continue;
        }
        let row = &wd[r * cols..(r + 1) * cols];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += wv * yv;
        }
    }
    Tensor::from_vec(out, &[cols])
}

/// Outer product `y xᵀ` returning a `[y.len(), x.len()]` matrix.
///
/// This is exactly the weight-gradient of a dense layer: `dL/dW = δ · aᵀ`.
pub fn outer(y: &Tensor, x: &Tensor) -> Tensor {
    let rows = y.len();
    let cols = x.len();
    let mut out = vec![0.0f32; rows * cols];
    for (r, &yv) in y.data().iter().enumerate() {
        if yv == 0.0 {
            continue;
        }
        let row = &mut out[r * cols..(r + 1) * cols];
        for (o, &xv) in row.iter_mut().zip(x.data()) {
            *o = yv * xv;
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("outer: length is rows*cols by construction")
}

/// Matrix–matrix product of `[m, k]` by `[k, n]`, returning `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] on
/// bad operands.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Batched affine map `out[i] = W·rows[i] + b` into a preallocated buffer,
/// evaluated by the chosen [`GemmKernel`].
///
/// `rows` are the flattened input vectors of a batch (each of length
/// `W.cols`), `w` is `[m, k]`, `bias` has `m` entries, and `out` must hold
/// `rows.len()·m` values (row-major, one output row per input row). The
/// per-element accumulation — `k` ascending, bias added after the dot
/// product — is exactly [`matvec`]-then-bias for **every** kernel, so
/// results are bit-identical to the per-sample path used by dense layers
/// and classifier heads regardless of the kernel picked (see
/// [`crate::gemm`]).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] on
/// operand disagreement.
pub fn affine_rows_into(
    rows: &[&[f32]],
    w: &Tensor,
    bias: &[f32],
    out: &mut [f32],
    kernel: GemmKernel,
) -> Result<()> {
    if w.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: w.rank(),
        });
    }
    let (m, k) = (w.dims()[0], w.dims()[1]);
    if bias.len() != m || out.len() != rows.len() * m {
        return Err(TensorError::ShapeMismatch {
            left: w.dims().to_vec(),
            right: vec![rows.len(), bias.len(), out.len()],
        });
    }
    for row in rows {
        if row.len() != k {
            return Err(TensorError::ShapeMismatch {
                left: w.dims().to_vec(),
                right: vec![row.len()],
            });
        }
    }
    gemm::gemm_nt(kernel, k, rows, w.data(), bias, out);
    Ok(())
}

/// One affine row `out = W·row + b` against pre-validated operands (`wd` is
/// the row-major `[out.len(), k]` weight buffer) — the per-sample
/// **reference kernel** of the batched affine: `GemmKernel::Reference`
/// replays exactly this loop per row, and every other kernel must match it
/// bit for bit (see [`crate::gemm`]). Accumulates `k` ascending, bias
/// after: bit-identical to [`matvec`]-then-bias.
pub fn affine_row(row: &[f32], wd: &[f32], k: usize, bias: &[f32], out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        let wrow = &wd[r * k..(r + 1) * k];
        let mut acc = 0.0f32;
        for (a, b) in wrow.iter().zip(row) {
            acc += a * b;
        }
        *o = acc + bias[r];
    }
}

/// Numerically stable softmax over a flat vector.
///
/// Subtracts the maximum before exponentiating, so arbitrarily large logits
/// do not overflow. An empty input yields an empty output.
pub fn softmax(x: &Tensor) -> Tensor {
    if x.is_empty() {
        return x.clone();
    }
    let m = x.max().expect("non-empty checked above");
    let exps: Vec<f32> = x.data().iter().map(|&v| (v - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    let data = exps.into_iter().map(|e| e / z).collect();
    Tensor::from_vec(data, x.dims()).expect("softmax preserves shape")
}

/// Shannon entropy (nats) of a probability vector.
///
/// Zero-probability entries contribute zero (the `p log p → 0` limit).
pub fn entropy(p: &Tensor) -> f32 {
    p.data()
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| -v * v.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn elementwise_ops() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn elementwise_shape_checked() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0], &[2, 1]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = t(vec![1.0, 1.0], &[2]);
        let x = t(vec![2.0, 3.0], &[2]);
        axpy(&mut acc, 0.5, &x).unwrap();
        assert_eq!(acc.data(), &[2.0, 2.5]);
        assert!(axpy(&mut acc, 1.0, &t(vec![0.0], &[1])).is_err());
    }

    #[test]
    fn scale_works() {
        assert_eq!(scale(&t(vec![1.0, -2.0], &[2]), -2.0).data(), &[-2.0, 4.0]);
    }

    #[test]
    fn dot_product() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
        assert!(dot(&a, &t(vec![1.0], &[1])).is_err());
    }

    #[test]
    fn matvec_known_values() {
        // W = [[1,2],[3,4],[5,6]], x = [1,-1] => [-1,-1,-1]
        let w = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let x = t(vec![1.0, -1.0], &[2]);
        assert_eq!(matvec(&w, &x).unwrap().data(), &[-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_validates() {
        let w = t(vec![1.0, 2.0], &[2]);
        assert!(matvec(&w, &t(vec![1.0], &[1])).is_err()); // rank 1 w
        let w = t(vec![1.0, 2.0], &[1, 2]);
        assert!(matvec(&w, &t(vec![1.0], &[1])).is_err()); // bad inner dim
    }

    #[test]
    fn matvec_t_is_transpose() {
        let w = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let y = t(vec![1.0, 0.0, -1.0], &[3]);
        // Wt y = [1*1+5*(-1), 2*1+6*(-1)] = [-4, -4]
        assert_eq!(matvec_t(&w, &y).unwrap().data(), &[-4.0, -4.0]);
    }

    #[test]
    fn outer_matches_manual() {
        let y = t(vec![1.0, 2.0], &[2]);
        let x = t(vec![3.0, 4.0, 5.0], &[3]);
        let o = outer(&y, &x);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rect() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_checks_dims() {
        let a = t(vec![1.0, 2.0], &[1, 2]);
        let b = t(vec![1.0, 2.0], &[1, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_consistency_with_matmul() {
        let w = t(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[2, 3]);
        let x = t(vec![0.3, -0.7, 2.0], &[3]);
        let via_mv = matvec(&w, &x).unwrap();
        let via_mm = matmul(&w, &x.reshape(&[3, 1]).unwrap()).unwrap();
        for (a, b) in via_mv.data().iter().zip(via_mm.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn affine_rows_matches_matvec_bitwise() {
        let w = t(vec![0.3, -1.7, 0.05, 2.0, 4.0, -0.01], &[2, 3]);
        let bias = [0.125f32, -0.5];
        let rows_data = [
            vec![0.1f32, -0.9, 7.0],
            vec![0.0, 0.0, 0.0],
            vec![-3.0, 2.5, 0.125],
        ];
        let rows: Vec<&[f32]> = rows_data.iter().map(|r| r.as_slice()).collect();
        for kernel in crate::gemm::GemmKernel::ALL {
            let mut out = vec![0.0f32; rows.len() * 2];
            affine_rows_into(&rows, &w, &bias, &mut out, kernel).unwrap();
            for (i, row) in rows_data.iter().enumerate() {
                let x = t(row.clone(), &[3]);
                let mut y = matvec(&w, &x).unwrap();
                for (o, b) in y.data_mut().iter_mut().zip(&bias) {
                    *o += b;
                }
                for (a, b) in y.data().iter().zip(&out[i * 2..(i + 1) * 2]) {
                    assert_eq!(a.to_bits(), b.to_bits(), "kernel {kernel}");
                }
            }
        }
    }

    #[test]
    fn affine_rows_validates() {
        let kernel = crate::gemm::GemmKernel::default();
        let w = t(vec![1.0, 2.0], &[1, 2]);
        let row: &[f32] = &[1.0, 2.0];
        let mut out = vec![0.0f32; 1];
        assert!(affine_rows_into(&[row], &w, &[0.0], &mut out, kernel).is_ok());
        // wrong bias length
        assert!(affine_rows_into(&[row], &w, &[0.0, 0.0], &mut out, kernel).is_err());
        // wrong out length
        let mut bad_out = vec![0.0f32; 2];
        assert!(affine_rows_into(&[row], &w, &[0.0], &mut bad_out, kernel).is_err());
        // wrong row length
        let short: &[f32] = &[1.0];
        assert!(affine_rows_into(&[short], &w, &[0.0], &mut out, kernel).is_err());
        // rank-1 weight
        let w1 = t(vec![1.0, 2.0], &[2]);
        assert!(affine_rows_into(&[row], &w1, &[0.0], &mut out, kernel).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let x = t(vec![1000.0, 1001.0, 1002.0], &[3]);
        let p = softmax(&x);
        let s: f32 = p.data().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!(p.data()[2] > p.data()[1] && p.data()[1] > p.data()[0]);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let p = softmax(&t(vec![0.5; 4], &[4]));
        for &v in p.data() {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_empty_is_empty() {
        let p = softmax(&Tensor::default());
        assert!(p.is_empty());
    }

    #[test]
    fn entropy_extremes() {
        // one-hot: zero entropy
        assert_eq!(entropy(&t(vec![1.0, 0.0, 0.0], &[3])), 0.0);
        // uniform over 4: ln 4
        let e = entropy(&t(vec![0.25; 4], &[4]));
        assert!((e - 4.0f32.ln()).abs() < 1e-6);
    }
}
