//! Dynamic tensor shapes with row-major strides.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::Result;

/// A dynamic, row-major tensor shape.
///
/// `Shape` owns its dimension list and lazily exposes the row-major strides
/// used to linearise multi-dimensional indices. The rightmost dimension is
/// contiguous (stride 1).
///
/// ```
/// use cdl_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.linear_index(&[1, 2, 3]).unwrap(), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions).
    ///
    /// A rank-0 shape has volume 1 (a scalar).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if any axis has zero length.
    pub fn is_empty(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linearises a multi-dimensional index into a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its axis length.
    pub fn linear_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut offset = 0usize;
        let mut stride = 1usize;
        for i in (0..self.dims.len()).rev() {
            if index[i] >= self.dims[i] {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            offset += index[i] * stride;
            stride *= self.dims[i];
        }
        Ok(offset)
    }

    /// Inverse of [`linear_index`](Self::linear_index): converts a flat
    /// offset back into a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `offset >= volume()`.
    pub fn multi_index(&self, offset: usize) -> Result<Vec<usize>> {
        if offset >= self.volume() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![offset],
                shape: self.dims.clone(),
            });
        }
        let mut rem = offset;
        let mut idx = vec![0usize; self.dims.len()];
        for (i, stride) in self.strides().into_iter().enumerate() {
            idx[i] = rem / stride;
            rem %= stride;
        }
        Ok(idx)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[6, 12, 12]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.volume(), 864);
        assert!(!s.is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn zero_axis_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.volume(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[7, 2]).strides(), vec![2, 1]);
    }

    #[test]
    fn linear_index_round_trip() {
        let s = Shape::new(&[3, 4, 5]);
        for off in 0..s.volume() {
            let idx = s.multi_index(off).unwrap();
            assert_eq!(s.linear_index(&idx).unwrap(), off);
        }
    }

    #[test]
    fn linear_index_rejects_bad_rank() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.linear_index(&[1]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn linear_index_rejects_out_of_range() {
        let s = Shape::new(&[2, 2]);
        assert!(s.linear_index(&[0, 2]).is_err());
        assert!(s.linear_index(&[2, 0]).is_err());
        assert!(s.linear_index(&[1, 1]).is_ok());
    }

    #[test]
    fn multi_index_rejects_past_end() {
        let s = Shape::new(&[2, 2]);
        assert!(s.multi_index(4).is_err());
        assert_eq!(s.multi_index(3).unwrap(), vec![1, 1]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(&[6, 12, 12]).to_string(), "(6x12x12)");
        assert_eq!(Shape::new(&[10]).to_string(), "(10)");
    }

    #[test]
    fn from_conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
    }
}
