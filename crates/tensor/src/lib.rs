//! # cdl-tensor
//!
//! A deliberately small, dependency-light tensor library providing exactly the
//! numeric primitives that the Conditional Deep Learning (CDL, DATE 2016)
//! reproduction needs:
//!
//! * a row-major, heap-allocated `f32` [`Tensor`] with a dynamic [`Shape`],
//! * elementwise arithmetic and reductions ([`ops`]),
//! * dense matrix–vector / matrix–matrix products ([`ops`]),
//! * register-blocked and explicit-AVX2 GEMM microkernels behind a
//!   runtime [`GemmKernel`] selection for the batched hot paths
//!   ([`gemm`]), all bit-identical to the reference loops,
//! * *valid* 2-D multi-channel convolution / cross-correlation and their
//!   gradients ([`conv`]),
//! * max- and mean-pooling with argmax bookkeeping for backprop ([`pool`]),
//! * weight initialisers (uniform, Xavier/Glorot, LeCun) ([`init`]).
//!
//! The layer zoo in `cdl-nn` is written against this crate; nothing here is
//! specific to CDL itself.
//!
//! ## Example
//!
//! ```
//! use cdl_tensor::{Tensor, conv};
//!
//! // one 3x3 input channel, one 2x2 kernel
//! let input = Tensor::from_vec(vec![1., 2., 3.,
//!                                   4., 5., 6.,
//!                                   7., 8., 9.], &[1, 3, 3]).unwrap();
//! let kernel = Tensor::from_vec(vec![1., 0.,
//!                                    0., 1.], &[1, 1, 2, 2]).unwrap();
//! let out = conv::conv2d_valid(&input, &kernel, &[0.0]).unwrap();
//! assert_eq!(out.shape().dims(), &[1, 2, 2]);
//! assert_eq!(out.data(), &[6., 8., 12., 14.]); // x[i][j] + x[i+1][j+1]
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod conv;
pub mod error;
pub mod gemm;
pub mod im2col;
pub mod init;
pub mod ops;
pub mod pool;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use gemm::GemmKernel;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
