//! Weight initialisers.
//!
//! All initialisers take an explicit RNG so that every experiment in the
//! reproduction is seedable and deterministic.

use rand::{Rng, RngExt};

use crate::tensor::Tensor;

/// How to initialise a weight tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// Xavier/Glorot uniform: `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// The classic choice for the sigmoid/tanh nets the paper trains.
    XavierUniform,
    /// LeCun uniform: `a = sqrt(3 / fan_in)`.
    LecunUniform,
}

impl Init {
    /// Materialises a tensor of the given shape.
    ///
    /// `fan_in`/`fan_out` are the effective fan counts of the layer the
    /// weights belong to (for a conv layer, `fan_in = C_in·kH·kW`).
    ///
    /// # Panics
    ///
    /// Panics if a fan-dependent scheme is used with `fan_in + fan_out == 0`.
    pub fn build<R: Rng + ?Sized>(
        self,
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> Tensor {
        match self {
            Init::Zeros => Tensor::zeros(dims),
            Init::Uniform(a) => random_uniform(dims, a, rng),
            Init::XavierUniform => {
                assert!(fan_in + fan_out > 0, "Xavier init requires non-zero fans");
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                random_uniform(dims, a, rng)
            }
            Init::LecunUniform => {
                assert!(fan_in > 0, "LeCun init requires non-zero fan_in");
                let a = (3.0 / fan_in as f32).sqrt();
                random_uniform(dims, a, rng)
            }
        }
    }
}

/// Tensor with elements drawn i.i.d. from `U(-a, a)`.
pub fn random_uniform<R: Rng + ?Sized>(dims: &[usize], a: f32, rng: &mut R) -> Tensor {
    let shape = crate::Shape::new(dims);
    let n = shape.volume();
    let data = (0..n)
        .map(|_| {
            if a == 0.0 {
                0.0
            } else {
                rng.random_range(-a..a)
            }
        })
        .collect();
    Tensor::from_vec(data, dims).expect("length equals shape volume by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_init() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Init::Zeros.build(&[3, 3], 9, 9, &mut rng);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Init::Uniform(0.25).build(&[1000], 1, 1, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= 0.25));
        // not degenerate
        assert!(t.data().iter().any(|&x| x.abs() > 0.01));
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let small_fan = Init::XavierUniform.build(&[2000], 10, 10, &mut rng);
        let big_fan = Init::XavierUniform.build(&[2000], 1000, 1000, &mut rng);
        let spread = |t: &Tensor| t.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(spread(&small_fan) > spread(&big_fan));
    }

    #[test]
    fn lecun_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Init::LecunUniform.build(&[500], 3, 0, &mut rng);
        let bound = (3.0f32 / 3.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = Init::XavierUniform.build(&[64], 8, 8, &mut StdRng::seed_from_u64(7));
        let b = Init::XavierUniform.build(&[64], 8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_zero_bound_is_zeros() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = random_uniform(&[16], 0.0, &mut rng);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "Xavier")]
    fn xavier_panics_on_zero_fans() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Init::XavierUniform.build(&[4], 0, 0, &mut rng);
    }
}
