//! Error type shared by all fallible tensor operations.

use std::fmt;

/// Error returned by fallible operations in this crate.
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger: offending shapes, lengths, or indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length handed to a constructor does not match the product of
    /// the requested dimensions.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
    },
    /// A multi-dimensional index is out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// Convolution/pooling geometry is impossible (e.g. kernel larger than
    /// input, zero-sized window, channel-count mismatch).
    InvalidGeometry(String),
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Element count of the existing tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
    /// An empty shape (rank 0 or a zero-length axis) was supplied where a
    /// non-empty tensor is required.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from} elements into shape with {to} elements"
                )
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('5'));

        let e = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
        };
        assert!(e.to_string().contains("[2, 3]"));

        let e = TensorError::InvalidGeometry("kernel 5x5 larger than input 3x3".into());
        assert!(e.to_string().contains("kernel"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
