//! Max- and mean-pooling over `[C, H, W]` tensors, with the bookkeeping
//! needed to backpropagate through them.
//!
//! The paper's DLN baselines use non-overlapping pooling (window == stride),
//! which is what these helpers implement. A window of 1 is the identity and
//! is used to model the paper's size-preserving `P3` stage (Table II).

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Result of a pooling forward pass.
///
/// `argmax` is only populated for max pooling; it stores, for every output
/// cell, the flat input offset of the winning element so the backward pass
/// can route gradients.
#[derive(Debug, Clone)]
pub struct PoolOutput {
    /// Pooled activations, `[C, H/k, W/k]`.
    pub output: Tensor,
    /// For max pooling: flat input offset of each output cell's maximum.
    pub argmax: Option<Vec<usize>>,
}

fn check_pool(input: &Tensor, window: usize) -> Result<(usize, usize, usize, usize, usize)> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    if window == 0 {
        return Err(TensorError::InvalidGeometry(
            "zero-sized pooling window".into(),
        ));
    }
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    if h % window != 0 || w % window != 0 {
        return Err(TensorError::InvalidGeometry(format!(
            "pooling window {window} does not tile input {h}x{w}"
        )));
    }
    Ok((c, h, w, h / window, w / window))
}

/// Non-overlapping max pooling.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when the window does not evenly
/// tile the input, and [`TensorError::RankMismatch`] for non-rank-3 inputs.
pub fn maxpool2d(input: &Tensor, window: usize) -> Result<PoolOutput> {
    let (c, h, w, oh, ow) = check_pool(input, window)?;
    let x = input.data();
    let mut out = vec![0.0f32; c * oh * ow];
    let mut arg = vec![0usize; c * oh * ow];
    let in_plane = h * w;

    for ch in 0..c {
        let xbase = ch * in_plane;
        let obase = ch * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best_off = xbase + (oy * window) * w + ox * window;
                let mut best = x[best_off];
                for wy in 0..window {
                    let row = xbase + (oy * window + wy) * w + ox * window;
                    for wx in 0..window {
                        let off = row + wx;
                        if x[off] > best {
                            best = x[off];
                            best_off = off;
                        }
                    }
                }
                out[obase + oy * ow + ox] = best;
                arg[obase + oy * ow + ox] = best_off;
            }
        }
    }
    Ok(PoolOutput {
        output: Tensor::from_vec(out, &[c, oh, ow])?,
        argmax: Some(arg),
    })
}

/// Non-overlapping mean pooling.
///
/// # Errors
///
/// Same geometry conditions as [`maxpool2d`].
pub fn meanpool2d(input: &Tensor, window: usize) -> Result<PoolOutput> {
    let (c, h, w, oh, ow) = check_pool(input, window)?;
    let x = input.data();
    let mut out = vec![0.0f32; c * oh * ow];
    let in_plane = h * w;
    let norm = 1.0 / (window * window) as f32;

    for ch in 0..c {
        let xbase = ch * in_plane;
        let obase = ch * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for wy in 0..window {
                    let row = xbase + (oy * window + wy) * w + ox * window;
                    for wx in 0..window {
                        acc += x[row + wx];
                    }
                }
                out[obase + oy * ow + ox] = acc * norm;
            }
        }
    }
    Ok(PoolOutput {
        output: Tensor::from_vec(out, &[c, oh, ow])?,
        argmax: None,
    })
}

/// Backward pass for max pooling: routes each upstream gradient cell to the
/// input offset recorded in `argmax`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `grad_out` does not have one
/// gradient per argmax entry.
pub fn maxpool2d_backward(
    input_shape: &[usize],
    argmax: &[usize],
    grad_out: &Tensor,
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            left: vec![grad_out.len()],
            right: vec![argmax.len()],
        });
    }
    let mut gx = Tensor::zeros(input_shape);
    let data = gx.data_mut();
    for (&off, &g) in argmax.iter().zip(grad_out.data()) {
        if off >= data.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![off],
                shape: input_shape.to_vec(),
            });
        }
        data[off] += g;
    }
    Ok(gx)
}

/// Backward pass for mean pooling: spreads each upstream gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns geometry errors when `grad_out` is inconsistent with
/// `input_shape`/`window`.
pub fn meanpool2d_backward(
    input_shape: &[usize],
    window: usize,
    grad_out: &Tensor,
) -> Result<Tensor> {
    if input_shape.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input_shape.len(),
        });
    }
    if window == 0 {
        return Err(TensorError::InvalidGeometry(
            "zero-sized pooling window".into(),
        ));
    }
    let (c, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
    if h % window != 0 || w % window != 0 {
        return Err(TensorError::InvalidGeometry(format!(
            "pooling window {window} does not tile input {h}x{w}"
        )));
    }
    let (oh, ow) = (h / window, w / window);
    if grad_out.dims() != [c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_out.dims().to_vec(),
            right: vec![c, oh, ow],
        });
    }
    let norm = 1.0 / (window * window) as f32;
    let g = grad_out.data();
    let mut gx = vec![0.0f32; c * h * w];
    let in_plane = h * w;

    for ch in 0..c {
        let xbase = ch * in_plane;
        let obase = ch * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let gv = g[obase + oy * ow + ox] * norm;
                for wy in 0..window {
                    let row = xbase + (oy * window + wy) * w + ox * window;
                    for wx in 0..window {
                        gx[row + wx] += gv;
                    }
                }
            }
        }
    }
    Tensor::from_vec(gx, input_shape)
}

/// Comparison operations performed by a max-pool of the given geometry
/// (window²−1 compares per output cell), used by the OPS accounting.
pub fn pool_ops(c: usize, h: usize, w: usize, window: usize) -> u64 {
    if window == 0 || !h.is_multiple_of(window) || !w.is_multiple_of(window) {
        return 0;
    }
    let oh = h / window;
    let ow = w / window;
    (c * oh * ow) as u64 * (window * window - 1).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn maxpool_basic() {
        let x = t(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, 0.0, 0.5, 0.25, //
                -2.0, -3.0, 0.75, 0.1,
            ],
            &[1, 4, 4],
        );
        let p = maxpool2d(&x, 2).unwrap();
        assert_eq!(p.output.dims(), &[1, 2, 2]);
        assert_eq!(p.output.data(), &[4.0, 8.0, 0.0, 0.75]);
        let arg = p.argmax.unwrap();
        assert_eq!(arg, vec![5, 7, 9, 14]);
    }

    #[test]
    fn meanpool_basic() {
        let x = t(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let p = meanpool2d(&x, 2).unwrap();
        assert_eq!(p.output.data(), &[2.5]);
        assert!(p.argmax.is_none());
    }

    #[test]
    fn window_one_is_identity() {
        let x = t((0..8).map(|v| v as f32).collect(), &[2, 2, 2]);
        let pm = maxpool2d(&x, 1).unwrap();
        assert_eq!(pm.output, x);
        let pa = meanpool2d(&x, 1).unwrap();
        assert_eq!(pa.output, x);
    }

    #[test]
    fn rejects_non_tiling_window() {
        let x = Tensor::zeros(&[1, 3, 3]);
        assert!(maxpool2d(&x, 2).is_err());
        assert!(meanpool2d(&x, 2).is_err());
        assert!(maxpool2d(&x, 0).is_err());
    }

    #[test]
    fn rejects_bad_rank() {
        let x = Tensor::zeros(&[4, 4]);
        assert!(maxpool2d(&x, 2).is_err());
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = t(
            vec![
                1.0, 2.0, //
                3.0, 4.0,
            ],
            &[1, 2, 2],
        );
        let p = maxpool2d(&x, 2).unwrap();
        let g = t(vec![10.0], &[1, 1, 1]);
        let gx = maxpool2d_backward(x.dims(), p.argmax.as_ref().unwrap(), &g).unwrap();
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn meanpool_backward_spreads_uniformly() {
        let g = t(vec![8.0], &[1, 1, 1]);
        let gx = meanpool2d_backward(&[1, 2, 2], 2, &g).unwrap();
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    /// Finite-difference check of mean-pool backward.
    #[test]
    fn meanpool_gradient_matches_finite_difference() {
        let mut x = t((0..16).map(|v| v as f32 * 0.1).collect(), &[1, 4, 4]);
        let g_out = Tensor::ones(&[1, 2, 2]);
        let gx = meanpool2d_backward(x.dims(), 2, &g_out).unwrap();
        let eps = 1e-3;
        for i in 0..x.len() {
            let orig = x.data()[i];
            x.data_mut()[i] = orig + eps;
            let lp = meanpool2d(&x, 2).unwrap().output.sum();
            x.data_mut()[i] = orig - eps;
            let lm = meanpool2d(&x, 2).unwrap().output.sum();
            x.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - gx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_validates_lengths() {
        let g = Tensor::ones(&[1, 2, 2]);
        assert!(maxpool2d_backward(&[1, 4, 4], &[0, 1, 2], &g).is_err());
        assert!(meanpool2d_backward(&[1, 4, 4], 3, &g).is_err());
        assert!(meanpool2d_backward(&[1, 4, 4], 2, &Tensor::ones(&[1, 3, 3])).is_err());
    }

    #[test]
    fn pool_ops_counting() {
        // 6 maps of 24x24 pooled by 2: 6*12*12 cells * 3 compares
        assert_eq!(pool_ops(6, 24, 24, 2), 6 * 144 * 3);
        // identity pool still costs 1 op per cell (a copy/compare)
        assert_eq!(pool_ops(9, 3, 3, 1), 81);
        assert_eq!(pool_ops(1, 3, 3, 2), 0);
    }
}
