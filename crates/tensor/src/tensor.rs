//! The core row-major `f32` tensor type.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major, heap-allocated `f32` tensor with dynamic rank.
///
/// `Tensor` is the single value type flowing through every layer of the CDL
/// networks. It is intentionally simple: owned contiguous storage, no views
/// with independent strides, no lazy evaluation. The networks in this
/// reproduction are LeNet-scale, where clarity beats cleverness.
///
/// ```
/// use cdl_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok::<(), cdl_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the volume of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        let off = self.shape.linear_index(index)?;
        Ok(self.data[off])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.linear_index(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Unchecked read by precomputed flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len()`.
    #[inline]
    pub fn at(&self, offset: usize) -> f32 {
        self.data[offset]
    }

    /// Returns a copy with a new shape sharing the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.volume() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: new_shape.volume(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// In-place reshape (no data copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when volumes differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let new_shape = Shape::new(dims);
        if new_shape.volume() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: new_shape.volume(),
            });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// Flattens to rank 1 without copying element data.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::new(&[self.len()]),
            data: self.data.clone(),
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.max(x)),
        })
    }

    /// Minimum element; `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.min(x)),
        })
    }

    /// Index of the maximum element (first occurrence); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Extracts channel `c` of a rank-3 `[C, H, W]` tensor as a `[H, W]`
    /// tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-3 tensors and
    /// [`TensorError::IndexOutOfBounds`] for a bad channel.
    pub fn channel(&self, c: usize) -> Result<Tensor> {
        if self.rank() != 3 {
            return Err(TensorError::RankMismatch {
                expected: 3,
                actual: self.rank(),
            });
        }
        let dims = self.dims();
        let (ch, h, w) = (dims[0], dims[1], dims[2]);
        if c >= ch {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![c],
                shape: dims.to_vec(),
            });
        }
        let plane = h * w;
        Ok(Tensor {
            shape: Shape::new(&[h, w]),
            data: self.data[c * plane..(c + 1) * plane].to_vec(),
        })
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor {
            shape: Shape::new(&[0]),
            data: Vec::new(),
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const MAX_SHOWN: usize = 8;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", … {} more", self.data.len() - MAX_SHOWN)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(&[2, 2], 0.5);
        assert_eq!(f.sum(), 2.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn reshape_in_place_works() {
        let mut t = Tensor::zeros(&[4]);
        t.reshape_in_place(&[2, 2]).unwrap();
        assert_eq!(t.dims(), &[2, 2]);
        assert!(t.reshape_in_place(&[3]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 4.0, 1.0], &[4]).unwrap();
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 1.75);
        assert_eq!(t.max(), Some(4.0));
        assert_eq!(t.min(), Some(-1.0));
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.norm_sq(), 9.0 + 1.0 + 16.0 + 1.0);
    }

    #[test]
    fn argmax_first_occurrence() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0], &[3]).unwrap();
        assert_eq!(t.argmax(), Some(1));
    }

    #[test]
    fn empty_reductions() {
        let t = Tensor::default();
        assert!(t.is_empty());
        assert_eq!(t.max(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.argmax(), None);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn map_and_map_in_place() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let m = t.map(|x| x * 2.0);
        assert_eq!(m.data(), &[2.0, 4.0]);
        let mut u = t.clone();
        u.map_in_place(|x| -x);
        assert_eq!(u.data(), &[-1.0, -2.0]);
    }

    #[test]
    fn channel_extraction() {
        // [2, 2, 2]: channel 0 = 0..4, channel 1 = 4..8
        let t = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[2, 2, 2]).unwrap();
        let c1 = t.channel(1).unwrap();
        assert_eq!(c1.dims(), &[2, 2]);
        assert_eq!(c1.data(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(t.channel(2).is_err());
        assert!(Tensor::zeros(&[4]).channel(0).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains("more"));
        assert!(s.contains("(100)"));
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
