//! *Valid* 2-D multi-channel convolution (cross-correlation) and its
//! gradients.
//!
//! Conventions match the CNN literature as used by the paper's DLN baselines:
//!
//! * inputs are `[C_in, H, W]`,
//! * kernel banks are `[C_out, C_in, kH, kW]`,
//! * "convolution" here means **cross-correlation** (no kernel flip), which is
//!   what every deep-learning framework computes in the forward pass,
//! * only *valid* padding is supported — LeNet-style nets (Tables I & II of
//!   the paper) use shrinking feature maps and no zero padding.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Output spatial size of a valid convolution/pooling: `in - k + 1`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when the kernel exceeds the input
/// or is zero-sized.
pub fn valid_out_size(input: usize, kernel: usize) -> Result<usize> {
    if kernel == 0 {
        return Err(TensorError::InvalidGeometry("zero-sized kernel".into()));
    }
    if kernel > input {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel {kernel} larger than input {input}"
        )));
    }
    Ok(input - kernel + 1)
}

pub(crate) fn check_conv_operands(
    input: &Tensor,
    kernels: &Tensor,
) -> Result<(usize, usize, usize, usize, usize, usize)> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    if kernels.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: kernels.rank(),
        });
    }
    let (c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (c_out, kc, kh, kw) = (
        kernels.dims()[0],
        kernels.dims()[1],
        kernels.dims()[2],
        kernels.dims()[3],
    );
    if kc != c_in {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel expects {kc} input channels, input has {c_in}"
        )));
    }
    Ok((c_in, h, w, c_out, kh, kw))
}

pub(crate) fn check_conv_bias(c_out: usize, bias: &[f32]) -> Result<()> {
    if bias.len() != c_out {
        return Err(TensorError::InvalidGeometry(format!(
            "bias has {} entries for {c_out} output maps",
            bias.len()
        )));
    }
    Ok(())
}

/// Forward valid cross-correlation.
///
/// `input` is `[C_in, H, W]`, `kernels` is `[C_out, C_in, kH, kW]`, `bias`
/// has one entry per output map. Returns `[C_out, H-kH+1, W-kW+1]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InvalidGeometry`]
/// for malformed operands, including a bias length that differs from
/// `C_out`.
pub fn conv2d_valid(input: &Tensor, kernels: &Tensor, bias: &[f32]) -> Result<Tensor> {
    let (c_in, h, w, c_out, kh, kw) = check_conv_operands(input, kernels)?;
    check_conv_bias(c_out, bias)?;
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;

    let x = input.data();
    let k = kernels.data();
    let mut out = vec![0.0f32; c_out * oh * ow];

    let in_plane = h * w;
    let k_plane = kh * kw;
    let k_filter = c_in * k_plane;

    for (m, &b) in bias.iter().enumerate() {
        let kbase = m * k_filter;
        let obase = m * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                for c in 0..c_in {
                    let xbase = c * in_plane;
                    let kcbase = kbase + c * k_plane;
                    for ky in 0..kh {
                        let xrow = xbase + (oy + ky) * w + ox;
                        let krow = kcbase + ky * kw;
                        for kx in 0..kw {
                            acc += x[xrow + kx] * k[krow + kx];
                        }
                    }
                }
                out[obase + oy * ow + ox] = acc;
            }
        }
    }
    Tensor::from_vec(out, &[c_out, oh, ow])
}

/// Gradient of the loss w.r.t. the kernel bank and bias, given the upstream
/// gradient `grad_out` of shape `[C_out, oH, oW]`.
///
/// Returns `(grad_kernels [C_out, C_in, kH, kW], grad_bias [C_out])`.
///
/// # Errors
///
/// Propagates shape/geometry errors from the operand checks.
pub fn conv2d_grad_kernels(
    input: &Tensor,
    kernels_shape: &[usize],
    grad_out: &Tensor,
) -> Result<(Tensor, Vec<f32>)> {
    if input.rank() != 3 || grad_out.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: if input.rank() != 3 {
                input.rank()
            } else {
                grad_out.rank()
            },
        });
    }
    if kernels_shape.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: kernels_shape.len(),
        });
    }
    let (c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (c_out, kc, kh, kw) = (
        kernels_shape[0],
        kernels_shape[1],
        kernels_shape[2],
        kernels_shape[3],
    );
    if kc != c_in {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel expects {kc} input channels, input has {c_in}"
        )));
    }
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;
    if grad_out.dims() != [c_out, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_out.dims().to_vec(),
            right: vec![c_out, oh, ow],
        });
    }

    let x = input.data();
    let g = grad_out.data();
    let mut gk = vec![0.0f32; c_out * c_in * kh * kw];
    let mut gb = vec![0.0f32; c_out];

    let in_plane = h * w;
    let out_plane = oh * ow;
    let k_plane = kh * kw;
    let k_filter = c_in * k_plane;

    for (m, gbm) in gb.iter_mut().enumerate() {
        let obase = m * out_plane;
        // bias gradient: sum of upstream gradient over the output map
        *gbm = g[obase..obase + out_plane].iter().sum();
        for c in 0..c_in {
            let xbase = c * in_plane;
            let kbase = m * k_filter + c * k_plane;
            for ky in 0..kh {
                for kx in 0..kw {
                    let mut acc = 0.0f32;
                    for oy in 0..oh {
                        let xrow = xbase + (oy + ky) * w + kx;
                        let grow = obase + oy * ow;
                        for ox in 0..ow {
                            acc += x[xrow + ox] * g[grow + ox];
                        }
                    }
                    gk[kbase + ky * kw + kx] = acc;
                }
            }
        }
    }
    Ok((Tensor::from_vec(gk, kernels_shape)?, gb))
}

/// Gradient of the loss w.r.t. the layer *input* — a "full" correlation of
/// the upstream gradient with the 180°-rotated kernels.
///
/// `grad_out` is `[C_out, oH, oW]`; returns `[C_in, H, W]` matching
/// `input_shape`.
///
/// # Errors
///
/// Propagates shape/geometry errors from the operand checks.
pub fn conv2d_grad_input(
    input_shape: &[usize],
    kernels: &Tensor,
    grad_out: &Tensor,
) -> Result<Tensor> {
    if input_shape.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input_shape.len(),
        });
    }
    if kernels.rank() != 4 || grad_out.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: kernels.rank(),
        });
    }
    let (c_in, h, w) = (input_shape[0], input_shape[1], input_shape[2]);
    let (c_out, kc, kh, kw) = (
        kernels.dims()[0],
        kernels.dims()[1],
        kernels.dims()[2],
        kernels.dims()[3],
    );
    if kc != c_in {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel expects {kc} input channels, input shape has {c_in}"
        )));
    }
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;
    if grad_out.dims() != [c_out, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_out.dims().to_vec(),
            right: vec![c_out, oh, ow],
        });
    }

    let k = kernels.data();
    let g = grad_out.data();
    let mut gx = vec![0.0f32; c_in * h * w];

    let in_plane = h * w;
    let out_plane = oh * ow;
    let k_plane = kh * kw;
    let k_filter = c_in * k_plane;

    // dL/dx[c, y, x] = Σ_m Σ_ky Σ_kx  g[m, y-ky, x-kx] * k[m, c, ky, kx]
    // Iterate the forward pattern instead: scatter each g into gx.
    for m in 0..c_out {
        let obase = m * out_plane;
        for oy in 0..oh {
            for ox in 0..ow {
                let gv = g[obase + oy * ow + ox];
                if gv == 0.0 {
                    continue;
                }
                for c in 0..c_in {
                    let xbase = c * in_plane;
                    let kbase = m * k_filter + c * k_plane;
                    for ky in 0..kh {
                        let xrow = xbase + (oy + ky) * w + ox;
                        let krow = kbase + ky * kw;
                        for kx in 0..kw {
                            gx[xrow + kx] += gv * k[krow + kx];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gx, input_shape)
}

/// Number of multiply-accumulate operations performed by
/// [`conv2d_valid`] for the given geometry.
///
/// This is the count that the paper's "OPS" efficiency metric is built on.
pub fn conv2d_macs(c_in: usize, h: usize, w: usize, c_out: usize, kh: usize, kw: usize) -> u64 {
    let oh = h.saturating_sub(kh) + 1;
    let ow = w.saturating_sub(kw) + 1;
    (c_out * oh * ow) as u64 * (c_in * kh * kw) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn out_size() {
        assert_eq!(valid_out_size(28, 5).unwrap(), 24);
        assert_eq!(valid_out_size(28, 3).unwrap(), 26);
        assert!(valid_out_size(3, 5).is_err());
        assert!(valid_out_size(3, 0).is_err());
    }

    #[test]
    fn single_channel_identity_kernel() {
        let x = t((0..9).map(|v| v as f32).collect(), &[1, 3, 3]);
        let k = t(vec![1.0], &[1, 1, 1, 1]);
        let y = conv2d_valid(&x, &k, &[0.0]).unwrap();
        assert_eq!(y.dims(), &[1, 3, 3]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_is_added() {
        let x = t(vec![0.0; 9], &[1, 3, 3]);
        let k = t(vec![1.0; 4], &[1, 1, 2, 2]);
        let y = conv2d_valid(&x, &k, &[2.5]).unwrap();
        assert!(y.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn multi_channel_sums_channels() {
        // two channels of ones, kernel of ones 2x2 over both channels: each
        // output = 2 channels * 4 taps = 8
        let x = Tensor::ones(&[2, 3, 3]);
        let k = Tensor::ones(&[1, 2, 2, 2]);
        let y = conv2d_valid(&x, &k, &[0.0]).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert!(y.data().iter().all(|&v| v == 8.0));
    }

    #[test]
    fn multiple_output_maps_are_independent() {
        let x = t((0..9).map(|v| v as f32).collect(), &[1, 3, 3]);
        // map 0: identity 1x1 at weight 1; map 1: weight 2
        let k = t(vec![1.0, 2.0], &[2, 1, 1, 1]);
        let y = conv2d_valid(&x, &k, &[0.0, 1.0]).unwrap();
        assert_eq!(y.channel(0).unwrap().data(), x.channel(0).unwrap().data());
        for (o, i) in y.channel(1).unwrap().data().iter().zip(x.data()) {
            assert_eq!(*o, 2.0 * i + 1.0);
        }
    }

    #[test]
    fn rejects_channel_mismatch_and_bad_bias() {
        let x = Tensor::ones(&[2, 3, 3]);
        let k = Tensor::ones(&[1, 3, 2, 2]);
        assert!(conv2d_valid(&x, &k, &[0.0]).is_err());
        let k = Tensor::ones(&[1, 2, 2, 2]);
        assert!(conv2d_valid(&x, &k, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn rejects_bad_ranks() {
        let x = Tensor::ones(&[3, 3]);
        let k = Tensor::ones(&[1, 1, 2, 2]);
        assert!(conv2d_valid(&x, &k, &[0.0]).is_err());
        let x = Tensor::ones(&[1, 3, 3]);
        let k = Tensor::ones(&[1, 2, 2]);
        assert!(conv2d_valid(&x, &k, &[0.0]).is_err());
    }

    /// Finite-difference check of the kernel gradient.
    #[test]
    fn kernel_gradient_matches_finite_difference() {
        let x = t(
            (0..18).map(|v| (v as f32) * 0.1 - 0.9).collect(),
            &[2, 3, 3],
        );
        let mut k = t(
            (0..16).map(|v| (v as f32) * 0.05 - 0.4).collect(),
            &[2, 2, 2, 2],
        );
        let bias = [0.1f32, -0.2];
        // loss = sum(conv output)
        let y0 = conv2d_valid(&x, &k, &bias).unwrap();
        let grad_out = Tensor::ones(y0.dims());
        let (gk, gb) = conv2d_grad_kernels(&x, k.dims(), &grad_out).unwrap();

        let eps = 1e-3;
        for i in 0..k.len() {
            let orig = k.data()[i];
            k.data_mut()[i] = orig + eps;
            let lp = conv2d_valid(&x, &k, &bias).unwrap().sum();
            k.data_mut()[i] = orig - eps;
            let lm = conv2d_valid(&x, &k, &bias).unwrap().sum();
            k.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gk.data()[i]).abs() < 1e-2,
                "kernel grad {i}: fd={fd} analytic={}",
                gk.data()[i]
            );
        }
        // bias gradient: each output map has 2x2=4 cells, dL/db = 4
        assert_eq!(gb, vec![4.0, 4.0]);
    }

    /// Finite-difference check of the input gradient.
    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut x = t(
            (0..18).map(|v| (v as f32) * 0.07 - 0.5).collect(),
            &[2, 3, 3],
        );
        let k = t(
            (0..16).map(|v| (v as f32) * 0.03 - 0.2).collect(),
            &[2, 2, 2, 2],
        );
        let bias = [0.0f32, 0.0];
        let y0 = conv2d_valid(&x, &k, &bias).unwrap();
        let grad_out = Tensor::ones(y0.dims());
        let gx = conv2d_grad_input(x.dims(), &k, &grad_out).unwrap();

        let eps = 1e-3;
        for i in 0..x.len() {
            let orig = x.data()[i];
            x.data_mut()[i] = orig + eps;
            let lp = conv2d_valid(&x, &k, &bias).unwrap().sum();
            x.data_mut()[i] = orig - eps;
            let lm = conv2d_valid(&x, &k, &bias).unwrap().sum();
            x.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "input grad {i}: fd={fd} analytic={}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn grad_input_shape_checked() {
        let k = Tensor::ones(&[1, 1, 2, 2]);
        let bad_grad = Tensor::ones(&[1, 3, 3]); // should be [1,2,2] for 3x3 input
        assert!(conv2d_grad_input(&[1, 3, 3], &k, &bad_grad).is_err());
    }

    #[test]
    fn macs_matches_paper_layer_c1() {
        // Table I, C1: 28x28 input, 6 maps of 5x5 -> 24x24 out
        // MACs = 6 * 24 * 24 * (1*5*5) = 86_400
        assert_eq!(conv2d_macs(1, 28, 28, 6, 5, 5), 86_400);
    }
}
