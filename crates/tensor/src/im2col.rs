//! im2col-based convolution: the classic lowering of convolution to one
//! dense matrix multiply.
//!
//! [`conv2d_valid_im2col`] computes exactly the same result as
//! [`crate::conv::conv2d_valid`] (a property test pins this down) but
//! restructures the work as `[C_out, C_in·k²] × [C_in·k², oH·oW]`, which is
//! friendlier to wide hardware and makes the MAC count of the op-count model
//! visible as a single GEMM. The experiment harness uses the direct path
//! (simpler, cache-resident at LeNet scale); this module exists for the
//! performance ablation in `cargo bench -p cdl-bench --bench layers` and as
//! the natural extension point for larger networks.

use crate::conv::valid_out_size;
use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Lowers a `[C_in, H, W]` input into the im2col patch matrix
/// `[C_in·kH·kW, oH·oW]`: column `j` holds the receptive field of output
/// pixel `j`, flattened channel-major.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::InvalidGeometry`]
/// for malformed operands.
pub fn im2col(input: &Tensor, kh: usize, kw: usize) -> Result<Tensor> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    let (c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;
    let rows = c_in * kh * kw;
    let cols = oh * ow;
    let x = input.data();
    let mut out = vec![0.0f32; rows * cols];
    let in_plane = h * w;

    for c in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let obase = row * cols;
                for oy in 0..oh {
                    let xrow = c * in_plane + (oy + ky) * w + kx;
                    let orow = obase + oy * ow;
                    for ox in 0..ow {
                        out[orow + ox] = x[xrow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Valid cross-correlation via im2col + GEMM. Semantically identical to
/// [`crate::conv::conv2d_valid`].
///
/// # Errors
///
/// Same conditions as [`crate::conv::conv2d_valid`].
pub fn conv2d_valid_im2col(input: &Tensor, kernels: &Tensor, bias: &[f32]) -> Result<Tensor> {
    if kernels.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: kernels.rank(),
        });
    }
    let (c_out, kc, kh, kw) = (
        kernels.dims()[0],
        kernels.dims()[1],
        kernels.dims()[2],
        kernels.dims()[3],
    );
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    if kc != input.dims()[0] {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel expects {kc} input channels, input has {}",
            input.dims()[0]
        )));
    }
    if bias.len() != c_out {
        return Err(TensorError::InvalidGeometry(format!(
            "bias has {} entries for {c_out} output maps",
            bias.len()
        )));
    }
    let oh = valid_out_size(input.dims()[1], kh)?;
    let ow = valid_out_size(input.dims()[2], kw)?;

    let patches = im2col(input, kh, kw)?; // [kc*kh*kw, oh*ow]
    let weights = kernels.reshape(&[c_out, kc * kh * kw])?;
    let mut out = crate::ops::matmul(&weights, &patches)?; // [c_out, oh*ow]
    let cols = oh * ow;
    for m in 0..c_out {
        let b = bias[m];
        for v in &mut out.data_mut()[m * cols..(m + 1) * cols] {
            *v += b;
        }
    }
    out.reshape(&[c_out, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_valid;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn im2col_known_layout() {
        // 1 channel 3x3, 2x2 kernel -> 4 rows x 4 cols
        let x = t((0..9).map(|v| v as f32).collect(), &[1, 3, 3]);
        let p = im2col(&x, 2, 2).unwrap();
        assert_eq!(p.dims(), &[4, 4]);
        // column 0 = receptive field of output (0,0): pixels 0,1,3,4
        let col = |j: usize| -> Vec<f32> { (0..4).map(|r| p.get(&[r, j]).unwrap()).collect() };
        assert_eq!(col(0), vec![0.0, 1.0, 3.0, 4.0]);
        // column 3 = output (1,1): pixels 4,5,7,8
        assert_eq!(col(3), vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn matches_direct_convolution_exhaustively() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for (c_in, c_out, k, size) in [(1usize, 1usize, 1usize, 4usize), (1, 6, 5, 28), (6, 12, 5, 12), (3, 9, 3, 5), (2, 4, 2, 6)] {
            let x_data: Vec<f32> = (0..c_in * size * size).map(|_| rng.random_range(-1.0..1.0)).collect();
            let k_data: Vec<f32> = (0..c_out * c_in * k * k).map(|_| rng.random_range(-0.5..0.5)).collect();
            let bias: Vec<f32> = (0..c_out).map(|_| rng.random_range(-0.2..0.2)).collect();
            let x = t(x_data, &[c_in, size, size]);
            let kernels = t(k_data, &[c_out, c_in, k, k]);
            let direct = conv2d_valid(&x, &kernels, &bias).unwrap();
            let lowered = conv2d_valid_im2col(&x, &kernels, &bias).unwrap();
            assert_eq!(direct.dims(), lowered.dims());
            for (a, b) in direct.data().iter().zip(lowered.data()) {
                assert!((a - b).abs() < 1e-4, "mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn validates_operands() {
        let x = Tensor::ones(&[2, 4, 4]);
        let k = Tensor::ones(&[1, 3, 2, 2]); // wrong channels
        assert!(conv2d_valid_im2col(&x, &k, &[0.0]).is_err());
        let k = Tensor::ones(&[1, 2, 2, 2]);
        assert!(conv2d_valid_im2col(&x, &k, &[0.0, 0.0]).is_err()); // bad bias
        assert!(im2col(&Tensor::ones(&[4, 4]), 2, 2).is_err()); // rank
        assert!(im2col(&x, 5, 5).is_err()); // kernel too big
    }
}
