//! im2col-based convolution: the classic lowering of convolution to one
//! dense matrix multiply.
//!
//! [`conv2d_valid_im2col`] computes exactly the same result as
//! [`crate::conv::conv2d_valid`] (a property test pins this down) but
//! restructures the work as `[C_out, C_in·k²] × [C_in·k², oH·oW]`, which is
//! friendlier to wide hardware and makes the MAC count of the op-count model
//! visible as a single GEMM. The experiment harness uses the direct path
//! (simpler, cache-resident at LeNet scale); this module exists for the
//! performance ablation in `cargo bench -p cdl-bench --bench layers` and as
//! the natural extension point for larger networks.

use crate::conv::{check_conv_bias, check_conv_operands, valid_out_size};
use crate::error::TensorError;
use crate::gemm::{self, GemmKernel};
use crate::tensor::Tensor;
use crate::Result;

/// Lowers a `[C_in, H, W]` input into the im2col patch matrix
/// `[C_in·kH·kW, oH·oW]`: column `j` holds the receptive field of output
/// pixel `j`, flattened channel-major.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::InvalidGeometry`]
/// for malformed operands.
pub fn im2col(input: &Tensor, kh: usize, kw: usize) -> Result<Tensor> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    let (c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;
    let rows = c_in * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(input, kh, kw, &mut out, cols, 0)?;
    Tensor::from_vec(out, &[rows, cols])
}

/// Lowers one `[C_in, H, W]` input into a **column block** of a larger,
/// preallocated patch matrix.
///
/// `out` is the row-major buffer of a `[C_in·kH·kW, total_cols]` matrix;
/// this image's `oH·oW` patch columns are written starting at column
/// `col_offset`. Batched evaluation lowers every image of a batch into one
/// shared matrix (allocate once, reuse per stage) and runs a single GEMM.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::InvalidGeometry`]
/// for malformed operands or a buffer/offset that cannot hold the block.
pub fn im2col_into(
    input: &Tensor,
    kh: usize,
    kw: usize,
    out: &mut [f32],
    total_cols: usize,
    col_offset: usize,
) -> Result<()> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    let (c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;
    let rows = c_in * kh * kw;
    let cols = oh * ow;
    if col_offset + cols > total_cols || out.len() != rows * total_cols {
        return Err(TensorError::InvalidGeometry(format!(
            "im2col_into: {rows}x{cols} block at column {col_offset} does not fit a buffer of {} ({total_cols} total columns)",
            out.len()
        )));
    }
    let x = input.data();
    let in_plane = h * w;

    for c in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let obase = row * total_cols + col_offset;
                for oy in 0..oh {
                    let xrow = c * in_plane + (oy + ky) * w + kx;
                    let orow = obase + oy * ow;
                    out[orow..orow + ow].copy_from_slice(&x[xrow..xrow + ow]);
                }
            }
        }
    }
    Ok(())
}

/// Valid cross-correlation via im2col + GEMM. Semantically identical to
/// [`crate::conv::conv2d_valid`].
///
/// # Errors
///
/// Same conditions as [`crate::conv::conv2d_valid`].
pub fn conv2d_valid_im2col(input: &Tensor, kernels: &Tensor, bias: &[f32]) -> Result<Tensor> {
    let (c_in, h, w, c_out, kh, kw) = check_conv_operands(input, kernels)?;
    check_conv_bias(c_out, bias)?;
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;

    let patches = im2col(input, kh, kw)?; // [kc*kh*kw, oh*ow]
    let weights = kernels.reshape(&[c_out, c_in * kh * kw])?;
    let mut out = crate::ops::matmul(&weights, &patches)?; // [c_out, oh*ow]
    let cols = oh * ow;
    for (m, &b) in bias.iter().enumerate() {
        for v in &mut out.data_mut()[m * cols..(m + 1) * cols] {
            *v += b;
        }
    }
    out.reshape(&[c_out, oh, ow])
}

/// Reusable buffers for [`conv2d_valid_batch`]: the shared patch matrix and
/// GEMM output for a whole batch. Allocate once per evaluator, reuse per
/// stage — repeated batches at the same geometry never reallocate.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    /// The `[C_in·k², N·oH·oW]` im2col patch matrix of the current batch.
    pub patches: Vec<f32>,
    /// The `[C_out, N·oH·oW]` GEMM output of the current batch.
    pub out: Vec<f32>,
}

/// Valid cross-correlation of a whole batch through one shared im2col
/// lowering and one GEMM over preallocated scratch, evaluated by the
/// chosen [`GemmKernel`] — except on the [`GemmKernel::Simd`] arm with
/// wide-enough feature maps (`ow >= 8`), which convolves each image
/// **directly from its feature maps** (fused AVX2 kernel, no patch
/// matrix; see [`crate::gemm`]).
///
/// Every input must have the shape of `inputs[0]`. The accumulation order
/// per output element — bias first, then taps in channel-major `(c, ky, kx)`
/// order — is exactly [`crate::conv::conv2d_valid`]'s **for every
/// kernel** (the tiled kernel repartitions the output plane — and the
/// fused SIMD kernel skips the lowering — but never changes an element's
/// addition sequence; see [`crate::gemm`]), so results are
/// **bit-identical** to the per-image direct path.
///
/// # Errors
///
/// Same conditions as [`crate::conv::conv2d_valid`], plus
/// [`TensorError::ShapeMismatch`] when batch members disagree in shape.
pub fn conv2d_valid_batch(
    inputs: &[Tensor],
    kernels: &Tensor,
    bias: &[f32],
    scratch: &mut ConvScratch,
    kernel: GemmKernel,
) -> Result<Vec<Tensor>> {
    let Some(first) = inputs.first() else {
        return Ok(Vec::new());
    };
    let (c_in, h, w, c_out, kh, kw) = check_conv_operands(first, kernels)?;
    check_conv_bias(c_out, bias)?;
    for t in inputs {
        if t.shape() != first.shape() {
            return Err(TensorError::ShapeMismatch {
                left: first.dims().to_vec(),
                right: t.dims().to_vec(),
            });
        }
    }
    let oh = valid_out_size(h, kh)?;
    let ow = valid_out_size(w, kw)?;
    let n = inputs.len();
    let rows = c_in * kh * kw;
    let cols_per = oh * ow;
    let total_cols = n * cols_per;

    // Fused fast path for the Simd arm: convolve each image straight from
    // its feature maps — no patch-matrix materialization, no copy-out.
    // Bit-identical to the lowered path (the fused kernel accumulates
    // bias first, then taps in the im2col patch-row order; see
    // `cdl_tensor::gemm`). Applicability is a pure function of geometry
    // and host support, so if the first image takes the fused path the
    // whole batch does.
    if kernel == GemmKernel::Simd {
        let mut fused = Vec::with_capacity(n);
        for input in inputs {
            let mut data = vec![0.0f32; c_out * cols_per];
            if !gemm::conv2d_direct_simd(
                input.data(),
                c_in,
                h,
                w,
                kernels.data(),
                c_out,
                kh,
                kw,
                bias,
                &mut data,
                oh,
                ow,
            ) {
                break; // narrow geometry or no AVX2 — take the GEMM path
            }
            fused.push(Tensor::from_vec(data, &[c_out, oh, ow])?);
        }
        if fused.len() == n {
            return Ok(fused);
        }
    }

    // grow-only resize: every cell is overwritten below (patches by the
    // per-image lowering, out by the bias fill), so stale contents from a
    // previous batch/geometry never need re-zeroing
    scratch.patches.resize(rows * total_cols, 0.0);
    for (i, input) in inputs.iter().enumerate() {
        im2col_into(
            input,
            kh,
            kw,
            &mut scratch.patches,
            total_cols,
            i * cols_per,
        )?;
    }

    // GEMM with bias-seeded accumulators, p ascending per element — the
    // exact addition sequence of the direct convolution, whichever
    // microkernel runs it.
    scratch.out.resize(c_out * total_cols, 0.0);
    gemm::gemm_nn(
        kernel,
        c_out,
        rows,
        total_cols,
        kernels.data(),
        &scratch.patches,
        bias,
        &mut scratch.out,
    );

    (0..n)
        .map(|i| {
            let mut data = Vec::with_capacity(c_out * cols_per);
            for m in 0..c_out {
                let base = m * total_cols + i * cols_per;
                data.extend_from_slice(&scratch.out[base..base + cols_per]);
            }
            Tensor::from_vec(data, &[c_out, oh, ow])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_valid;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn im2col_known_layout() {
        // 1 channel 3x3, 2x2 kernel -> 4 rows x 4 cols
        let x = t((0..9).map(|v| v as f32).collect(), &[1, 3, 3]);
        let p = im2col(&x, 2, 2).unwrap();
        assert_eq!(p.dims(), &[4, 4]);
        // column 0 = receptive field of output (0,0): pixels 0,1,3,4
        let col = |j: usize| -> Vec<f32> { (0..4).map(|r| p.get(&[r, j]).unwrap()).collect() };
        assert_eq!(col(0), vec![0.0, 1.0, 3.0, 4.0]);
        // column 3 = output (1,1): pixels 4,5,7,8
        assert_eq!(col(3), vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn matches_direct_convolution_exhaustively() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for (c_in, c_out, k, size) in [
            (1usize, 1usize, 1usize, 4usize),
            (1, 6, 5, 28),
            (6, 12, 5, 12),
            (3, 9, 3, 5),
            (2, 4, 2, 6),
        ] {
            let x_data: Vec<f32> = (0..c_in * size * size)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            let k_data: Vec<f32> = (0..c_out * c_in * k * k)
                .map(|_| rng.random_range(-0.5..0.5))
                .collect();
            let bias: Vec<f32> = (0..c_out).map(|_| rng.random_range(-0.2..0.2)).collect();
            let x = t(x_data, &[c_in, size, size]);
            let kernels = t(k_data, &[c_out, c_in, k, k]);
            let direct = conv2d_valid(&x, &kernels, &bias).unwrap();
            let lowered = conv2d_valid_im2col(&x, &kernels, &bias).unwrap();
            assert_eq!(direct.dims(), lowered.dims());
            for (a, b) in direct.data().iter().zip(lowered.data()) {
                assert!((a - b).abs() < 1e-4, "mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn validates_operands() {
        let x = Tensor::ones(&[2, 4, 4]);
        let k = Tensor::ones(&[1, 3, 2, 2]); // wrong channels
        assert!(conv2d_valid_im2col(&x, &k, &[0.0]).is_err());
        let k = Tensor::ones(&[1, 2, 2, 2]);
        assert!(conv2d_valid_im2col(&x, &k, &[0.0, 0.0]).is_err()); // bad bias
        assert!(im2col(&Tensor::ones(&[4, 4]), 2, 2).is_err()); // rank
        assert!(im2col(&x, 5, 5).is_err()); // kernel too big
    }

    #[test]
    fn batch_is_bit_identical_to_direct() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for (n, c_in, c_out, k, size) in [
            // ow = 24: fused Simd path, 16-wide + 8-wide tiles, OC blocks 3+3
            (1usize, 1usize, 6usize, 5usize, 28usize),
            // ow = 8: fused path at the single-vector boundary, OC 3+3+3+3
            (4, 6, 12, 5, 12),
            // ow = 5: narrow geometry — Simd falls back to im2col + GEMM
            (9, 3, 4, 3, 7),
            // ow = 10 with c_out = 2: fused path's OC=2 tail block
            (3, 2, 2, 3, 12),
            // ow = 9 with c_out = 7: OC blocks 3+3+1 and a 1-wide column tail
            (2, 1, 7, 2, 10),
        ] {
            let inputs: Vec<Tensor> = (0..n)
                .map(|_| {
                    let d: Vec<f32> = (0..c_in * size * size)
                        .map(|_| rng.random_range(-1.0..1.0))
                        .collect();
                    t(d, &[c_in, size, size])
                })
                .collect();
            let k_data: Vec<f32> = (0..c_out * c_in * k * k)
                .map(|_| rng.random_range(-0.5..0.5))
                .collect();
            let kernels = t(k_data, &[c_out, c_in, k, k]);
            let bias: Vec<f32> = (0..c_out).map(|_| rng.random_range(-0.2..0.2)).collect();
            let mut scratch = ConvScratch::default();
            for gemm_kernel in GemmKernel::ALL {
                let batched =
                    conv2d_valid_batch(&inputs, &kernels, &bias, &mut scratch, gemm_kernel)
                        .unwrap();
                for (x, b) in inputs.iter().zip(&batched) {
                    let direct = conv2d_valid(x, &kernels, &bias).unwrap();
                    assert_eq!(direct.dims(), b.dims());
                    // bit-identical, not just close: the batched GEMM
                    // replays the direct path's exact addition sequence,
                    // whichever microkernel ran it
                    for (dv, bv) in direct.data().iter().zip(b.data()) {
                        assert_eq!(dv.to_bits(), bv.to_bits(), "kernel {gemm_kernel}");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_scratch_reuse_across_geometries() {
        let gemm_kernel = GemmKernel::default();
        let mut scratch = ConvScratch::default();
        let k1 = Tensor::ones(&[2, 1, 2, 2]);
        let a: Vec<Tensor> = (0..3).map(|i| Tensor::full(&[1, 5, 5], i as f32)).collect();
        let first = conv2d_valid_batch(&a, &k1, &[0.1, 0.2], &mut scratch, gemm_kernel).unwrap();
        // different geometry afterwards must be handled by the same scratch
        let k2 = Tensor::ones(&[1, 2, 3, 3]);
        let b: Vec<Tensor> = (0..2)
            .map(|i| Tensor::full(&[2, 8, 8], 0.5 + i as f32))
            .collect();
        let second = conv2d_valid_batch(&b, &k2, &[0.0], &mut scratch, gemm_kernel).unwrap();
        // then the original geometry again, bit-identically
        let again = conv2d_valid_batch(&a, &k1, &[0.1, 0.2], &mut scratch, gemm_kernel).unwrap();
        assert_eq!(first, again);
        assert_eq!(second[0].dims(), &[1, 6, 6]);
    }

    #[test]
    fn batch_validates_operands() {
        let gemm_kernel = GemmKernel::default();
        let mut scratch = ConvScratch::default();
        let k = Tensor::ones(&[1, 1, 2, 2]);
        // empty batch is fine
        assert!(
            conv2d_valid_batch(&[], &k, &[0.0], &mut scratch, gemm_kernel)
                .unwrap()
                .is_empty()
        );
        // mixed shapes rejected
        let mixed = vec![Tensor::ones(&[1, 4, 4]), Tensor::ones(&[1, 5, 5])];
        assert!(conv2d_valid_batch(&mixed, &k, &[0.0], &mut scratch, gemm_kernel).is_err());
        // wrong channel count rejected
        let xs = vec![Tensor::ones(&[2, 4, 4])];
        assert!(conv2d_valid_batch(&xs, &k, &[0.0], &mut scratch, gemm_kernel).is_err());
        // bad bias rejected
        let xs = vec![Tensor::ones(&[1, 4, 4])];
        assert!(conv2d_valid_batch(&xs, &k, &[0.0, 0.0], &mut scratch, gemm_kernel).is_err());
    }

    #[test]
    fn im2col_into_validates_buffer() {
        let x = Tensor::ones(&[1, 3, 3]);
        let mut buf = vec![0.0f32; 4 * 4];
        // block does not fit at offset 1 of a 4-column matrix
        assert!(im2col_into(&x, 2, 2, &mut buf, 4, 1).is_err());
        // wrong buffer size
        let mut small = vec![0.0f32; 7];
        assert!(im2col_into(&x, 2, 2, &mut small, 4, 0).is_err());
        // valid at offset 0 matches im2col
        assert!(im2col_into(&x, 2, 2, &mut buf, 4, 0).is_ok());
        assert_eq!(buf, im2col(&x, 2, 2).unwrap().into_vec());
    }
}
