//! Register-blocked GEMM microkernels behind a runtime [`GemmKernel`]
//! choice — the shared inner engine of the two batched hot paths
//! ([`crate::im2col::conv2d_valid_batch`] and
//! [`crate::ops::affine_rows_into`]).
//!
//! # Why a kernel *enum* instead of just a faster loop
//!
//! Every batched evaluator in this workspace promises results that are
//! **bit-identical** to the per-image reference path, and the equivalence
//! suites enforce that promise per kernel. Keeping the original loops alive
//! as [`GemmKernel::Reference`] makes the pinned baseline executable: any
//! future kernel (std::simd, intrinsics, a packed/blocked L2 design) is a
//! new enum variant that must reproduce `Reference` bit for bit before it
//! can become the default. [`GemmKernel::Tiled`] is the current default
//! everywhere a batch is evaluated.
//!
//! # Tiling scheme
//!
//! Both kernels tile the M×N *output* plane into small register blocks and
//! keep the **full-k inner loop sequential per output element**:
//!
//! * [`gemm_nn`] (`C = bias ⊕ A·B`, the im2col convolution shape) uses
//!   6×8 tiles: 6 output rows × 8 output columns of accumulators live in
//!   registers for the whole `k` loop, and the 8-wide column dimension is a
//!   straight independent-lane loop that autovectorizes. The reference
//!   kernel instead re-reads and re-writes each `n`-length output row once
//!   per `k` step — `m·k` passes over memory versus one per tile here,
//!   which is where the speedup comes from.
//! * [`gemm_nt`] (`out = rows·Wᵀ + bias`, the batched dense/head shape)
//!   uses 4×4 tiles: 16 independent dot-product accumulators advance
//!   through `k` together. A single f32 dot product cannot be vectorized
//!   without reassociating the sum (which would change results), so the win
//!   here is instruction-level parallelism — 16 dependency chains keep the
//!   FPU busy — plus one pass over each operand row per tile instead of
//!   one per output element.
//!
//! # Why the k-order is preserved
//!
//! f32 addition is not associative, so the *sequence* of additions that
//! produces an output element defines its bit pattern. Tiling only
//! repartitions **which** elements are computed together; within one
//! element the accumulation stays exactly the reference order (`gemm_nn`:
//! bias first, then `p = 0..k` ascending; `gemm_nt`: `p = 0..k` ascending
//! from zero, bias added last). Tails — `m` or `n` not divisible by the
//! tile — fall back to narrower blocks or scalar loops with the same
//! per-element order, so parity holds for every shape, including `k = 0`
//! (pure bias). The parity proptests in `crates/tensor/tests/proptests.rs`
//! pin every variant against a naive triple loop bit for bit.
//!
//! # When to pick which kernel
//!
//! `Tiled` is strictly a performance transformation and the right default.
//! `Reference` exists for A/B benchmarking (`cargo bench -p cdl-bench
//! --bench batch`), for bisecting a suspected kernel bug in production
//! (flip one shard's [`ServerConfig`] to `Reference` and diff), and as the
//! executable specification new kernels are tested against.
//!
//! [`ServerConfig`]: ../../cdl_serve/struct.ServerConfig.html

use std::fmt;
use std::str::FromStr;

/// Which GEMM inner kernel the batched paths run.
///
/// Selected once at evaluator construction
/// (`BatchEvaluator::with_kernel`, `BatchScratch::with_kernel`, or
/// `ServerConfig::gemm_kernel`) and threaded through every batched conv,
/// dense and head evaluation. All variants are bit-identical; they differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GemmKernel {
    /// The original straight loops — the pinned executable baseline.
    Reference,
    /// Register-blocked 6×8 / 4×4 output tiling (see the
    /// [module docs](self)). The default.
    #[default]
    Tiled,
}

impl GemmKernel {
    /// Every kernel variant, for parity tests and benches that iterate the
    /// whole set.
    pub const ALL: [GemmKernel; 2] = [GemmKernel::Reference, GemmKernel::Tiled];
}

impl fmt::Display for GemmKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GemmKernel::Reference => "reference",
            GemmKernel::Tiled => "tiled",
        })
    }
}

impl FromStr for GemmKernel {
    type Err = String;

    /// Parses `"reference"` / `"tiled"` (case-insensitive), for env-driven
    /// configuration in examples and experiment binaries.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Ok(GemmKernel::Reference),
            "tiled" => Ok(GemmKernel::Tiled),
            other => Err(format!(
                "unknown GEMM kernel {other:?} (expected \"reference\" or \"tiled\")"
            )),
        }
    }
}

/// Rows × columns of the [`gemm_nn`] register tile (output rows of `A·B`).
/// Six rows × eight columns is 12 SSE (6 AVX) accumulator registers — the
/// tallest tile that still fits the x86-64 baseline register file, and it
/// covers the paper's 6-map C1 layer in a single row block.
const NN_MR: usize = 6;
/// Columns per [`gemm_nn`] register tile — the autovectorized lane count.
const NN_NR: usize = 8;
/// Sample rows per [`gemm_nt`] register tile.
const NT_MR: usize = 4;
/// Output features per [`gemm_nt`] register tile.
const NT_NR: usize = 4;

/// Bias-seeded matrix product `out[i][j] = bias[i] + Σ_p a[i,p]·b[p,j]`
/// over row-major buffers: `a` is `[m, k]`, `b` is `[k, n]`, `out` is
/// `[m, n]`.
///
/// This is the im2col convolution shape: `a` the reshaped kernel bank,
/// `b` the batch patch matrix, `bias` one value per output channel. The
/// per-element accumulation order — bias first, then `p` ascending — is
/// identical for every kernel, so all variants produce the same bits.
///
/// # Panics
///
/// Panics when a buffer length disagrees with `m`/`k`/`n` (callers
/// pre-validate shapes; this guards the unsafe-free indexing below).
// a GEMM takes three matrices and their dimensions — bundling them into a
// struct would only obscure the BLAS-shaped signature
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm_nn: a must be [m={m}, k={k}]");
    assert_eq!(b.len(), k * n, "gemm_nn: b must be [k={k}, n={n}]");
    assert_eq!(bias.len(), m, "gemm_nn: bias must have m={m} entries");
    assert_eq!(out.len(), m * n, "gemm_nn: out must be [m={m}, n={n}]");
    match kernel {
        GemmKernel::Reference => gemm_nn_reference(m, k, n, a, b, bias, out),
        GemmKernel::Tiled => gemm_nn_tiled(m, k, n, a, b, bias, out),
    }
}

/// The original batched-conv loop: seed every output row with its bias,
/// then stream `out[i][·] += a[i,p] · b[p][·]` for `p` ascending.
fn gemm_nn_reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    for (i, &bv) in bias.iter().enumerate() {
        out[i * n..(i + 1) * n].fill(bv);
    }
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Register-blocked variant: 6×8 output tiles accumulate in registers
/// across the whole `k` loop; `m`/`n` tails fall back to narrower blocks
/// and scalar columns with the same per-element order. The row-block
/// height is dispatched to a const-generic microkernel so the compiler
/// fully unrolls the tile and keeps every accumulator in a register.
fn gemm_nn_tiled(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let mut i0 = 0;
    while i0 < m {
        let mr = NN_MR.min(m - i0);
        match mr {
            6 => nn_row_block::<6>(i0, k, n, a, b, bias, out),
            5 => nn_row_block::<5>(i0, k, n, a, b, bias, out),
            4 => nn_row_block::<4>(i0, k, n, a, b, bias, out),
            3 => nn_row_block::<3>(i0, k, n, a, b, bias, out),
            2 => nn_row_block::<2>(i0, k, n, a, b, bias, out),
            _ => nn_row_block::<1>(i0, k, n, a, b, bias, out),
        }
        i0 += mr;
    }
}

/// All `n` columns of the `MR` output rows starting at `i0`: full 8-wide
/// tiles first, then a scalar column tail with the identical per-element
/// order.
#[inline]
fn nn_row_block<const MR: usize>(
    i0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let n_main = n - n % NN_NR;
    let mut j0 = 0;
    while j0 < n_main {
        nn_microkernel::<MR>(i0, j0, k, n, a, b, bias, out);
        j0 += NN_NR;
    }
    // column tail (n % NN_NR columns): scalar accumulator per element,
    // bias first then p ascending — bit-identical, just unblocked
    for mi in 0..MR {
        let i = i0 + mi;
        let arow = &a[i * k..(i + 1) * k];
        for j in n_main..n {
            let mut acc = bias[i];
            for (p, &av) in arow.iter().enumerate() {
                acc += av * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// One `MR×NN_NR` output tile: accumulators seeded with the row bias, then
/// every `p` broadcasts `a[i,p]` against an 8-wide slice of `b[p]` — the
/// independent lanes are what autovectorizes, and the const `MR` lets the
/// whole tile live in registers for the duration of the `k` loop.
#[inline]
#[allow(clippy::too_many_arguments)]
fn nn_microkernel<const MR: usize>(
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let arows: [&[f32]; MR] = std::array::from_fn(|mi| &a[(i0 + mi) * k..(i0 + mi) * k + k]);
    let mut acc: [[f32; NN_NR]; MR] = std::array::from_fn(|mi| [bias[i0 + mi]; NN_NR]);
    for p in 0..k {
        let brow = &b[p * n + j0..p * n + j0 + NN_NR];
        for (lanes, arow) in acc.iter_mut().zip(&arows) {
            let av = arow[p];
            for (o, &bv) in lanes.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (mi, lanes) in acc.iter().enumerate() {
        let obase = (i0 + mi) * n + j0;
        out[obase..obase + NN_NR].copy_from_slice(lanes);
    }
}

/// Batched affine map `out[i][r] = (Σ_p rows[i][p]·w[r,p]) + bias[r]` —
/// one dot product per (sample, output) pair, bias added **after** the
/// sum, exactly [`crate::ops::affine_row`]'s order.
///
/// `w` is the row-major `[m, k]` weight buffer with `m = bias.len()`;
/// `out` is `[rows.len(), m]` row-major. This is the dense-layer / head
/// shape: both operands are traversed along `k`, so the tiled variant
/// wins through instruction-level parallelism (16 independent
/// accumulators), not lane vectorization — see the [module docs](self).
///
/// # Panics
///
/// Panics when a buffer length disagrees with the shapes (callers
/// pre-validate; this guards the indexing below).
pub fn gemm_nt(
    kernel: GemmKernel,
    k: usize,
    rows: &[&[f32]],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let m = bias.len();
    assert_eq!(w.len(), m * k, "gemm_nt: w must be [m={m}, k={k}]");
    assert_eq!(
        out.len(),
        rows.len() * m,
        "gemm_nt: out must be [rows={}, m={m}]",
        rows.len()
    );
    for row in rows {
        assert_eq!(row.len(), k, "gemm_nt: every row must have k={k} entries");
    }
    match kernel {
        GemmKernel::Reference => gemm_nt_reference(k, rows, w, bias, out),
        GemmKernel::Tiled => gemm_nt_tiled(k, rows, w, bias, out),
    }
}

/// The original batched-affine loop: [`crate::ops::affine_row`] per sample.
fn gemm_nt_reference(k: usize, rows: &[&[f32]], w: &[f32], bias: &[f32], out: &mut [f32]) {
    let m = bias.len();
    for (i, row) in rows.iter().enumerate() {
        crate::ops::affine_row(row, w, k, bias, &mut out[i * m..(i + 1) * m]);
    }
}

/// Register-blocked variant: up to 4 samples × 4 outputs of dot-product
/// accumulators advance through `k` together; ragged tails shrink the
/// tile, never the per-element order. Both tile dimensions are dispatched
/// to a const-generic microkernel so all 16 accumulators stay in
/// registers.
fn gemm_nt_tiled(k: usize, rows: &[&[f32]], w: &[f32], bias: &[f32], out: &mut [f32]) {
    let mut i0 = 0;
    while i0 < rows.len() {
        let mr = NT_MR.min(rows.len() - i0);
        match mr {
            4 => nt_row_block::<4>(i0, k, rows, w, bias, out),
            3 => nt_row_block::<3>(i0, k, rows, w, bias, out),
            2 => nt_row_block::<2>(i0, k, rows, w, bias, out),
            _ => nt_row_block::<1>(i0, k, rows, w, bias, out),
        }
        i0 += mr;
    }
}

/// All `m` outputs of the `MR` samples starting at `i0`, in 4-wide output
/// tiles with a narrower tail.
#[inline]
fn nt_row_block<const MR: usize>(
    i0: usize,
    k: usize,
    rows: &[&[f32]],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let m = bias.len();
    let xr: [&[f32]; MR] = std::array::from_fn(|mi| &rows[i0 + mi][..k]);
    let mut r0 = 0;
    while r0 < m {
        let nr = NT_NR.min(m - r0);
        match nr {
            4 => nt_microkernel::<MR, 4>(i0, r0, k, &xr, w, bias, out),
            3 => nt_microkernel::<MR, 3>(i0, r0, k, &xr, w, bias, out),
            2 => nt_microkernel::<MR, 2>(i0, r0, k, &xr, w, bias, out),
            _ => nt_microkernel::<MR, 1>(i0, r0, k, &xr, w, bias, out),
        }
        r0 += nr;
    }
}

/// One `MR×NR` tile of (sample, output) dot products: `MR·NR` independent
/// accumulators advance through `k` together — per element the sum is
/// still a single sequential chain from zero, bias added last, exactly
/// [`crate::ops::affine_row`]'s order.
#[inline]
fn nt_microkernel<const MR: usize, const NR: usize>(
    i0: usize,
    r0: usize,
    k: usize,
    xr: &[&[f32]; MR],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let m = bias.len();
    let wr: [&[f32]; NR] = std::array::from_fn(|ni| &w[(r0 + ni) * k..(r0 + ni) * k + k]);
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        for (lanes, xrow) in acc.iter_mut().zip(xr) {
            let xv = xrow[p];
            for (o, wrow) in lanes.iter_mut().zip(&wr) {
                *o += xv * wrow[p];
            }
        }
    }
    for (mi, lanes) in acc.iter().enumerate() {
        let obase = (i0 + mi) * m + r0;
        for (ni, &v) in lanes.iter().enumerate() {
            out[obase + ni] = v + bias[r0 + ni];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.random_range(-2.0..2.0)).collect()
    }

    /// Naive triple loop replaying the reference accumulation order for
    /// the nn (bias-first) shape.
    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], bias: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// Naive loop replaying the reference order for the nt (bias-last)
    /// shape.
    fn naive_nt(k: usize, rows: &[&[f32]], w: &[f32], bias: &[f32]) -> Vec<f32> {
        let m = bias.len();
        let mut out = vec![0.0f32; rows.len() * m];
        for (i, row) in rows.iter().enumerate() {
            for r in 0..m {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += w[r * k + p] * row[p];
                }
                out[i * m + r] = acc + bias[r];
            }
        }
        out
    }

    #[test]
    fn nn_kernels_bit_identical_across_shapes() {
        let mut rng = StdRng::seed_from_u64(41);
        // deliberately ragged shapes: tile tails in m and n, k = 0,
        // single row / column, and the exact 4×8 tile
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (4, 5, 8),
            (6, 25, 147),
            (5, 3, 9),
            (3, 0, 7),
            (1, 12, 31),
            (12, 150, 1),
            (7, 7, 7),
        ] {
            let a = fill(&mut rng, m * k);
            let b = fill(&mut rng, k * n);
            let bias = fill(&mut rng, m);
            let expected = naive_nn(m, k, n, &a, &b, &bias);
            for kernel in GemmKernel::ALL {
                let mut out = vec![f32::NAN; m * n];
                gemm_nn(kernel, m, k, n, &a, &b, &bias, &mut out);
                for (got, want) in out.iter().zip(&expected) {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kernel} nn mismatch at ({m},{k},{n})"
                    );
                }
            }
        }
    }

    #[test]
    fn nt_kernels_bit_identical_across_shapes() {
        let mut rng = StdRng::seed_from_u64(43);
        for (rows_n, m, k) in [
            (1usize, 1usize, 1usize),
            (4, 4, 9),
            (5, 10, 864),
            (9, 3, 17),
            (2, 6, 0),
            (1, 13, 5),
            (16, 1, 12),
        ] {
            let samples: Vec<Vec<f32>> = (0..rows_n).map(|_| fill(&mut rng, k)).collect();
            let rows: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
            let w = fill(&mut rng, m * k);
            let bias = fill(&mut rng, m);
            let expected = naive_nt(k, &rows, &w, &bias);
            for kernel in GemmKernel::ALL {
                let mut out = vec![f32::NAN; rows_n * m];
                gemm_nt(kernel, k, &rows, &w, &bias, &mut out);
                for (got, want) in out.iter().zip(&expected) {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kernel} nt mismatch at ({rows_n},{m},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_k_is_pure_bias() {
        for kernel in GemmKernel::ALL {
            let mut out = vec![9.0f32; 6];
            gemm_nn(kernel, 2, 0, 3, &[], &[], &[1.5, -0.5], &mut out);
            assert_eq!(out, [1.5, 1.5, 1.5, -0.5, -0.5, -0.5]);
            let mut out = vec![9.0f32; 4];
            let rows: Vec<&[f32]> = vec![&[], &[]];
            gemm_nt(kernel, 0, &rows, &[], &[0.25, -1.0], &mut out);
            assert_eq!(out, [0.25, -1.0, 0.25, -1.0]);
        }
    }

    #[test]
    fn empty_row_set_writes_nothing() {
        for kernel in GemmKernel::ALL {
            let mut out = Vec::new();
            gemm_nt(kernel, 3, &[], &[0.0; 6], &[0.0, 0.0], &mut out);
            assert!(out.is_empty());
            gemm_nn(kernel, 0, 3, 4, &[], &[0.0; 12], &[], &mut out);
        }
    }

    #[test]
    fn known_values_match_hand_computation() {
        // A = [[1,2],[3,4]], B = [[5,6,7],[8,9,10]], bias = [0.5, -0.5]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        for kernel in GemmKernel::ALL {
            let mut out = [0.0f32; 6];
            gemm_nn(kernel, 2, 2, 3, &a, &b, &[0.5, -0.5], &mut out);
            assert_eq!(out, [21.5, 24.5, 27.5, 46.5, 53.5, 60.5]);
        }
        // rows·Wᵀ + bias with W = A: row [1,1] → [1+2+0.5, 3+4-0.5]
        for kernel in GemmKernel::ALL {
            let row: &[f32] = &[1.0, 1.0];
            let mut out = [0.0f32; 2];
            gemm_nt(kernel, 2, &[row], &a, &[0.5, -0.5], &mut out);
            assert_eq!(out, [3.5, 6.5]);
        }
    }

    #[test]
    fn validates_buffer_shapes() {
        let r = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 4];
            gemm_nn(
                GemmKernel::Tiled,
                2,
                2,
                2,
                &[0.0; 3],
                &[0.0; 4],
                &[0.0; 2],
                &mut out,
            );
        });
        assert!(r.is_err(), "short a must panic");
        let r = std::panic::catch_unwind(|| {
            let row: &[f32] = &[0.0; 3];
            let mut out = vec![0.0f32; 2];
            gemm_nt(GemmKernel::Tiled, 2, &[row], &[0.0; 4], &[0.0; 2], &mut out);
        });
        assert!(r.is_err(), "wrong row length must panic");
    }

    #[test]
    fn display_parse_round_trip() {
        assert_eq!(GemmKernel::default(), GemmKernel::Tiled);
        for kernel in GemmKernel::ALL {
            assert_eq!(kernel.to_string().parse::<GemmKernel>().unwrap(), kernel);
        }
        assert_eq!(
            "Reference".parse::<GemmKernel>().unwrap(),
            GemmKernel::Reference
        );
        assert!("avx512".parse::<GemmKernel>().is_err());
    }
}
