//! Register-blocked GEMM microkernels behind a runtime [`GemmKernel`]
//! choice — the shared inner engine of the two batched hot paths
//! ([`crate::im2col::conv2d_valid_batch`] and
//! [`crate::ops::affine_rows_into`]).
//!
//! # Why a kernel *enum* instead of just a faster loop
//!
//! Every batched evaluator in this workspace promises results that are
//! **bit-identical** to the per-image reference path, and the equivalence
//! suites enforce that promise per kernel. Keeping the original loops alive
//! as [`GemmKernel::Reference`] makes the pinned baseline executable: any
//! future kernel (intrinsics, a packed/blocked L2 design) is a new enum
//! variant that must reproduce `Reference` bit for bit before it can
//! become the default. [`GemmKernel::Simd`] — explicit AVX2 intrinsics —
//! is the default wherever the host supports it ([`GemmKernel::detect`]
//! runs once at evaluator/shard construction); [`GemmKernel::Tiled`] is
//! the portable default everywhere else.
//!
//! # Tiling scheme
//!
//! Both kernels tile the M×N *output* plane into small register blocks and
//! keep the **full-k inner loop sequential per output element**:
//!
//! * [`gemm_nn`] (`C = bias ⊕ A·B`, the im2col convolution shape) uses
//!   6×8 tiles: 6 output rows × 8 output columns of accumulators live in
//!   registers for the whole `k` loop, and the 8-wide column dimension is a
//!   straight independent-lane loop that autovectorizes. The reference
//!   kernel instead re-reads and re-writes each `n`-length output row once
//!   per `k` step — `m·k` passes over memory versus one per tile here,
//!   which is where the speedup comes from.
//! * [`gemm_nt`] (`out = rows·Wᵀ + bias`, the batched dense/head shape)
//!   uses 4×4 tiles: 16 independent dot-product accumulators advance
//!   through `k` together. A single f32 dot product cannot be vectorized
//!   without reassociating the sum (which would change results), so the win
//!   here is instruction-level parallelism — 16 dependency chains keep the
//!   FPU busy — plus one pass over each operand row per tile instead of
//!   one per output element.
//!
//! # Why the k-order is preserved
//!
//! f32 addition is not associative, so the *sequence* of additions that
//! produces an output element defines its bit pattern. Tiling only
//! repartitions **which** elements are computed together; within one
//! element the accumulation stays exactly the reference order (`gemm_nn`:
//! bias first, then `p = 0..k` ascending; `gemm_nt`: `p = 0..k` ascending
//! from zero, bias added last). Tails — `m` or `n` not divisible by the
//! tile — fall back to narrower blocks or scalar loops with the same
//! per-element order, so parity holds for every shape, including `k = 0`
//! (pure bias). The parity proptests in `crates/tensor/tests/proptests.rs`
//! pin every variant against a naive triple loop bit for bit.
//!
//! # The SIMD arm: lane layout, and why mul+add instead of FMA
//!
//! [`GemmKernel::Simd`] re-expresses the tiled design in explicit
//! `core::arch::x86_64` AVX2 intrinsics, 8 f32 lanes per `__m256` vector.
//! The crucial layout decision is **which dimension becomes the lanes**:
//! both microkernels vectorize across the *output-column* dimension (`n`
//! columns of `gemm_nn`, output features of `gemm_nt`), so **each lane
//! owns exactly one output element** and accumulates *its own* k-loop
//! sequentially — `p = 0, 1, 2, …` in program order, one addition per
//! step, exactly like the scalar reference. Lanes never cooperate on an
//! element, so no horizontal reduction (and no reassociated addition tree)
//! ever touches an accumulator. That is what keeps the SIMD arm
//! **bit-identical**: vectorizing across independent elements is pure
//! repartitioning; vectorizing *within* an element's dot product would
//! split its addition chain into per-lane partial sums and change the
//! rounding sequence.
//!
//! The second bit-exactness decision is arithmetic: the k-step is a
//! separate `_mm256_mul_ps` followed by `_mm256_add_ps`, **never**
//! `_mm256_fmadd_ps`. An FMA computes `a·b + c` with a *single* rounding
//! of the infinitely precise product-sum; the scalar reference (and every
//! other kernel) rounds the product first, then rounds the sum — two
//! roundings. Fused results are usually *more* accurate, but they are
//! different bits, and the contract of this module is bit-parity with
//! `Reference`, enforced by the parity proptests across all three arms.
//! (The tiled kernel has the same property implicitly: the autovectorizer
//! may not fuse because the source says `mul` then `add` and `-C
//! target-feature` doesn't enable FMA contraction for baseline x86-64.)
//!
//! Per shape:
//!
//! * `gemm_nn`: up to 6 rows × 16 columns per tile — two `__m256`
//!   accumulators per row (12 accumulators + 2 loaded `b` vectors + 1
//!   broadcast = 15 of the 16 ymm registers), seeded with the row bias;
//!   per `p` one broadcast of `a[i,p]` (`_mm256_set1_ps`) is shared by
//!   two contiguous unaligned loads of `b[p][j0..j0+16]`, halving the
//!   broadcast overhead that dominates the small-`k` conv layers. An
//!   8-wide tile covers the 8..=15-column remainder, and ragged `n % 8` /
//!   `m` tails fall back to the same scalar loops the tiled kernel uses.
//!   (The paper-scale C1 layers are DRAM-bandwidth-bound at ~1 flop/byte,
//!   so the SIMD gain there is bounded by memory, not arithmetic — the
//!   compute-rich C2/C3/head shapes are where the 1.5–2x shows up.)
//! * `gemm_nt`: the 8 lanes are 8 *output features*, whose weight rows are
//!   `k`-strided in the row-major `[m, k]` buffer — a gather per step if
//!   read in place. Instead each 8-feature block is **packed once** into
//!   an interleaved `[k × 8]` scratch (`pack[p·8 + lane] = w[r0+lane, p]`,
//!   zero-padded lanes past `m`), turning every k-step into one contiguous
//!   load + one broadcast of `x[p]`, amortized over all samples in the
//!   batch. Up to 4 samples advance together to reuse each packed load.
//!   The pack buffer is a thread-local `Vec` reused across calls, so the
//!   steady-state no-allocation promise of the batched paths holds.
//! * **Fused direct convolution** ([`conv2d_direct_simd`]): for the conv
//!   hot path the Simd arm goes one step further than a faster GEMM — it
//!   skips the im2col lowering entirely. Lanes are contiguous output-x
//!   positions, whose receptive fields are contiguous spans of the input
//!   rows, so every tap is one weight broadcast against contiguous input
//!   loads; three output channels share each load. The patch-matrix
//!   write, its read-back, and the output copy-out all disappear — which
//!   is worth more than the arithmetic at batch sizes whose patch matrix
//!   outgrows the cache. Requires `ow ≥ 8` (a full vector of output
//!   columns); narrower feature maps (e.g. the paper's 3×3 C3) take the
//!   im2col + [`gemm_nn`] path. Bit-exactness is preserved because the
//!   fused loop accumulates bias first, then taps in channel-major
//!   `(c, ky, kx)` ascending order — exactly the im2col patch-row order
//!   the GEMM sums.
//!
//! # Runtime detection and fallback
//!
//! AVX2 is a runtime property of the host, so the kernel is chosen
//! **once, at evaluator/shard construction**, via [`GemmKernel::detect`]
//! (`is_x86_feature_detected!("avx2")`): `Simd` where available, `Tiled`
//! otherwise. `GemmKernel::default()` delegates to `detect()`, which is
//! how every `BatchEvaluator::new` / `BatchScratch::new` /
//! `ServerConfig::default` picks the fastest bit-identical kernel without
//! call-site changes. Selecting [`GemmKernel::Simd`] explicitly on a host
//! without AVX2 (or on a non-x86 build, where the intrinsics module is
//! compiled out) transparently runs the `Tiled` loops — same bits, so the
//! fallback is observable only in throughput. Tests pin that path via the
//! [`force_simd_fallback`] hook.
//!
//! # When to pick which kernel
//!
//! `detect()` (the default) is right everywhere: `Simd` on AVX2 hosts,
//! `Tiled` elsewhere — strictly performance transformations. `Reference`
//! exists for A/B benchmarking (`cargo bench -p cdl-bench --bench batch`),
//! for bisecting a suspected kernel bug in production (flip one shard's
//! [`ServerConfig`] to `Reference` and diff), and as the executable
//! specification new kernels are tested against. The next escalation
//! steps if LeNet-scale feature maps are outgrown: an AVX-512 variant
//! (16-lane, same lane-per-element layout) and a packed/L2-blocked
//! operand layout.
//!
//! [`ServerConfig`]: ../../cdl_serve/struct.ServerConfig.html

use std::fmt;
use std::str::FromStr;

/// Which GEMM inner kernel the batched paths run.
///
/// Selected once at evaluator construction
/// (`BatchEvaluator::with_kernel`, `BatchScratch::with_kernel`, or
/// `ServerConfig::gemm_kernel`) and threaded through every batched conv,
/// dense and head evaluation. All variants are bit-identical; they differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmKernel {
    /// The original straight loops — the pinned executable baseline.
    Reference,
    /// Register-blocked 6×8 / 4×4 output tiling (see the
    /// [module docs](self)). The portable default.
    Tiled,
    /// Explicit AVX2 intrinsics, 8 f32 lanes across the output-column
    /// dimension (see the [module docs](self)). Transparently runs the
    /// `Tiled` loops on hosts without AVX2 and on non-x86 builds.
    Simd,
}

impl GemmKernel {
    /// Every kernel variant, for parity tests and benches that iterate the
    /// whole set.
    pub const ALL: [GemmKernel; 3] = [GemmKernel::Reference, GemmKernel::Tiled, GemmKernel::Simd];

    /// The fastest kernel this host can run: [`GemmKernel::Simd`] when the
    /// CPU reports AVX2 (`is_x86_feature_detected!`), [`GemmKernel::Tiled`]
    /// otherwise. This is what `GemmKernel::default()` returns, so every
    /// evaluator/shard constructed without an explicit kernel picks it up
    /// — the detection runs once per construction, never in the hot loop.
    pub fn detect() -> GemmKernel {
        if simd::available() {
            GemmKernel::Simd
        } else {
            GemmKernel::Tiled
        }
    }

    /// Whether the [`GemmKernel::Simd`] arm would actually run its AVX2
    /// microkernels on this host (rather than falling back to `Tiled`).
    /// Benches and examples use this to annotate or skip SIMD-specific
    /// throughput assertions.
    pub fn simd_available() -> bool {
        simd::available()
    }
}

impl Default for GemmKernel {
    /// [`GemmKernel::detect`] — the fastest bit-identical kernel for this
    /// host.
    fn default() -> Self {
        GemmKernel::detect()
    }
}

/// Test hook: force the [`GemmKernel::Simd`] arm to take its non-AVX2
/// fallback path (the `Tiled` loops) regardless of what the host supports.
/// Process-global; results are unchanged by construction (all kernels are
/// bit-identical), so flipping it concurrently with other work is safe —
/// only throughput and [`GemmKernel::detect`] are affected.
#[doc(hidden)]
pub fn force_simd_fallback(on: bool) {
    simd::force_fallback(on);
}

impl fmt::Display for GemmKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GemmKernel::Reference => "reference",
            GemmKernel::Tiled => "tiled",
            GemmKernel::Simd => "simd",
        })
    }
}

impl FromStr for GemmKernel {
    type Err = String;

    /// Parses `"reference"` / `"tiled"` / `"simd"` (alias `"avx2"`) plus
    /// `"auto"` (= [`GemmKernel::detect`]), case-insensitive, for
    /// env-driven configuration in examples and experiment binaries.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Ok(GemmKernel::Reference),
            "tiled" => Ok(GemmKernel::Tiled),
            "simd" | "avx2" => Ok(GemmKernel::Simd),
            "auto" => Ok(GemmKernel::detect()),
            other => Err(format!(
                "unknown GEMM kernel {other:?} (expected \"reference\", \"tiled\", \"simd\" or \"auto\")"
            )),
        }
    }
}

/// Rows × columns of the [`gemm_nn`] register tile (output rows of `A·B`).
/// Six rows × eight columns is 12 SSE (6 AVX) accumulator registers — the
/// tallest tile that still fits the x86-64 baseline register file, and it
/// covers the paper's 6-map C1 layer in a single row block.
const NN_MR: usize = 6;
/// Columns per [`gemm_nn`] register tile — the autovectorized lane count.
const NN_NR: usize = 8;
/// Sample rows per [`gemm_nt`] register tile.
const NT_MR: usize = 4;
/// Output features per [`gemm_nt`] register tile.
const NT_NR: usize = 4;

/// Bias-seeded matrix product `out[i][j] = bias[i] + Σ_p a[i,p]·b[p,j]`
/// over row-major buffers: `a` is `[m, k]`, `b` is `[k, n]`, `out` is
/// `[m, n]`.
///
/// This is the im2col convolution shape: `a` the reshaped kernel bank,
/// `b` the batch patch matrix, `bias` one value per output channel. The
/// per-element accumulation order — bias first, then `p` ascending — is
/// identical for every kernel, so all variants produce the same bits.
///
/// # Panics
///
/// Panics when a buffer length disagrees with `m`/`k`/`n` (callers
/// pre-validate shapes; this guards the unsafe-free indexing below).
// a GEMM takes three matrices and their dimensions — bundling them into a
// struct would only obscure the BLAS-shaped signature
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm_nn: a must be [m={m}, k={k}]");
    assert_eq!(b.len(), k * n, "gemm_nn: b must be [k={k}, n={n}]");
    assert_eq!(bias.len(), m, "gemm_nn: bias must have m={m} entries");
    assert_eq!(out.len(), m * n, "gemm_nn: out must be [m={m}, n={n}]");
    match kernel {
        GemmKernel::Reference => gemm_nn_reference(m, k, n, a, b, bias, out),
        GemmKernel::Tiled => gemm_nn_tiled(m, k, n, a, b, bias, out),
        GemmKernel::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd::available() {
                // SAFETY: `available()` just confirmed AVX2 at runtime, and
                // the shape asserts above guarantee every in-bounds access
                // the microkernels perform.
                unsafe { simd::gemm_nn_avx2(m, k, n, a, b, bias, out) };
                return;
            }
            gemm_nn_tiled(m, k, n, a, b, bias, out)
        }
    }
}

/// The original batched-conv loop: seed every output row with its bias,
/// then stream `out[i][·] += a[i,p] · b[p][·]` for `p` ascending.
fn gemm_nn_reference(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    for (i, &bv) in bias.iter().enumerate() {
        out[i * n..(i + 1) * n].fill(bv);
    }
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Register-blocked variant: 6×8 output tiles accumulate in registers
/// across the whole `k` loop; `m`/`n` tails fall back to narrower blocks
/// and scalar columns with the same per-element order. The row-block
/// height is dispatched to a const-generic microkernel so the compiler
/// fully unrolls the tile and keeps every accumulator in a register.
fn gemm_nn_tiled(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let mut i0 = 0;
    while i0 < m {
        let mr = NN_MR.min(m - i0);
        match mr {
            6 => nn_row_block::<6>(i0, k, n, a, b, bias, out),
            5 => nn_row_block::<5>(i0, k, n, a, b, bias, out),
            4 => nn_row_block::<4>(i0, k, n, a, b, bias, out),
            3 => nn_row_block::<3>(i0, k, n, a, b, bias, out),
            2 => nn_row_block::<2>(i0, k, n, a, b, bias, out),
            _ => nn_row_block::<1>(i0, k, n, a, b, bias, out),
        }
        i0 += mr;
    }
}

/// All `n` columns of the `MR` output rows starting at `i0`: full 8-wide
/// tiles first, then a scalar column tail with the identical per-element
/// order.
#[inline]
fn nn_row_block<const MR: usize>(
    i0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let n_main = n - n % NN_NR;
    let mut j0 = 0;
    while j0 < n_main {
        nn_microkernel::<MR>(i0, j0, k, n, a, b, bias, out);
        j0 += NN_NR;
    }
    // column tail (n % NN_NR columns): scalar accumulator per element,
    // bias first then p ascending — bit-identical, just unblocked
    for mi in 0..MR {
        let i = i0 + mi;
        let arow = &a[i * k..(i + 1) * k];
        for j in n_main..n {
            let mut acc = bias[i];
            for (p, &av) in arow.iter().enumerate() {
                acc += av * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// One `MR×NN_NR` output tile: accumulators seeded with the row bias, then
/// every `p` broadcasts `a[i,p]` against an 8-wide slice of `b[p]` — the
/// independent lanes are what autovectorizes, and the const `MR` lets the
/// whole tile live in registers for the duration of the `k` loop.
#[inline]
#[allow(clippy::too_many_arguments)]
fn nn_microkernel<const MR: usize>(
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let arows: [&[f32]; MR] = std::array::from_fn(|mi| &a[(i0 + mi) * k..(i0 + mi) * k + k]);
    let mut acc: [[f32; NN_NR]; MR] = std::array::from_fn(|mi| [bias[i0 + mi]; NN_NR]);
    for p in 0..k {
        let brow = &b[p * n + j0..p * n + j0 + NN_NR];
        for (lanes, arow) in acc.iter_mut().zip(&arows) {
            let av = arow[p];
            for (o, &bv) in lanes.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (mi, lanes) in acc.iter().enumerate() {
        let obase = (i0 + mi) * n + j0;
        out[obase..obase + NN_NR].copy_from_slice(lanes);
    }
}

/// Batched affine map `out[i][r] = (Σ_p rows[i][p]·w[r,p]) + bias[r]` —
/// one dot product per (sample, output) pair, bias added **after** the
/// sum, exactly [`crate::ops::affine_row`]'s order.
///
/// `w` is the row-major `[m, k]` weight buffer with `m = bias.len()`;
/// `out` is `[rows.len(), m]` row-major. This is the dense-layer / head
/// shape: both operands are traversed along `k`, so the tiled variant
/// wins through instruction-level parallelism (16 independent
/// accumulators), not lane vectorization — see the [module docs](self).
///
/// # Panics
///
/// Panics when a buffer length disagrees with the shapes (callers
/// pre-validate; this guards the indexing below).
pub fn gemm_nt(
    kernel: GemmKernel,
    k: usize,
    rows: &[&[f32]],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let m = bias.len();
    assert_eq!(w.len(), m * k, "gemm_nt: w must be [m={m}, k={k}]");
    assert_eq!(
        out.len(),
        rows.len() * m,
        "gemm_nt: out must be [rows={}, m={m}]",
        rows.len()
    );
    for row in rows {
        assert_eq!(row.len(), k, "gemm_nt: every row must have k={k} entries");
    }
    match kernel {
        GemmKernel::Reference => gemm_nt_reference(k, rows, w, bias, out),
        GemmKernel::Tiled => gemm_nt_tiled(k, rows, w, bias, out),
        GemmKernel::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd::available() {
                // SAFETY: AVX2 confirmed at runtime; shapes asserted above.
                unsafe { simd::gemm_nt_avx2(k, rows, w, bias, out) };
                return;
            }
            gemm_nt_tiled(k, rows, w, bias, out)
        }
    }
}

/// The original batched-affine loop: [`crate::ops::affine_row`] per sample.
fn gemm_nt_reference(k: usize, rows: &[&[f32]], w: &[f32], bias: &[f32], out: &mut [f32]) {
    let m = bias.len();
    for (i, row) in rows.iter().enumerate() {
        crate::ops::affine_row(row, w, k, bias, &mut out[i * m..(i + 1) * m]);
    }
}

/// Register-blocked variant: up to 4 samples × 4 outputs of dot-product
/// accumulators advance through `k` together; ragged tails shrink the
/// tile, never the per-element order. Both tile dimensions are dispatched
/// to a const-generic microkernel so all 16 accumulators stay in
/// registers.
fn gemm_nt_tiled(k: usize, rows: &[&[f32]], w: &[f32], bias: &[f32], out: &mut [f32]) {
    let mut i0 = 0;
    while i0 < rows.len() {
        let mr = NT_MR.min(rows.len() - i0);
        match mr {
            4 => nt_row_block::<4>(i0, k, rows, w, bias, out),
            3 => nt_row_block::<3>(i0, k, rows, w, bias, out),
            2 => nt_row_block::<2>(i0, k, rows, w, bias, out),
            _ => nt_row_block::<1>(i0, k, rows, w, bias, out),
        }
        i0 += mr;
    }
}

/// All `m` outputs of the `MR` samples starting at `i0`, in 4-wide output
/// tiles with a narrower tail.
#[inline]
fn nt_row_block<const MR: usize>(
    i0: usize,
    k: usize,
    rows: &[&[f32]],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let m = bias.len();
    let xr: [&[f32]; MR] = std::array::from_fn(|mi| &rows[i0 + mi][..k]);
    let mut r0 = 0;
    while r0 < m {
        let nr = NT_NR.min(m - r0);
        match nr {
            4 => nt_microkernel::<MR, 4>(i0, r0, k, &xr, w, bias, out),
            3 => nt_microkernel::<MR, 3>(i0, r0, k, &xr, w, bias, out),
            2 => nt_microkernel::<MR, 2>(i0, r0, k, &xr, w, bias, out),
            _ => nt_microkernel::<MR, 1>(i0, r0, k, &xr, w, bias, out),
        }
        r0 += nr;
    }
}

/// One `MR×NR` tile of (sample, output) dot products: `MR·NR` independent
/// accumulators advance through `k` together — per element the sum is
/// still a single sequential chain from zero, bias added last, exactly
/// [`crate::ops::affine_row`]'s order.
#[inline]
fn nt_microkernel<const MR: usize, const NR: usize>(
    i0: usize,
    r0: usize,
    k: usize,
    xr: &[&[f32]; MR],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    let m = bias.len();
    let wr: [&[f32]; NR] = std::array::from_fn(|ni| &w[(r0 + ni) * k..(r0 + ni) * k + k]);
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        for (lanes, xrow) in acc.iter_mut().zip(xr) {
            let xv = xrow[p];
            for (o, wrow) in lanes.iter_mut().zip(&wr) {
                *o += xv * wrow[p];
            }
        }
    }
    for (mi, lanes) in acc.iter().enumerate() {
        let obase = (i0 + mi) * m + r0;
        for (ni, &v) in lanes.iter().enumerate() {
            out[obase + ni] = v + bias[r0 + ni];
        }
    }
}

/// Explicit AVX2 microkernels for [`GemmKernel::Simd`] — see the module
/// docs for the lane layout and the mul+add (not FMA) bit-exactness
/// argument.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    use super::NN_MR;

    /// Lane width of one `__m256` vector of f32.
    const LANES: usize = 8;
    /// Samples advanced together per packed weight block in
    /// [`gemm_nt_avx2`] — each reuses the same packed load of 8 weights.
    const NT_SIMD_MR: usize = 4;

    static FORCE_FALLBACK: AtomicBool = AtomicBool::new(false);

    thread_local! {
        /// Interleaved `[k × 8]` weight pack reused across [`gemm_nt_avx2`]
        /// calls, so steady-state batched inference stays allocation-free.
        static NT_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn force_fallback(on: bool) {
        FORCE_FALLBACK.store(on, Ordering::SeqCst);
    }

    pub(super) fn available() -> bool {
        !FORCE_FALLBACK.load(Ordering::SeqCst) && is_x86_feature_detected!("avx2")
    }

    /// AVX2 `gemm_nn`: up to 6 rows × 16 columns per tile — two `__m256`
    /// accumulators per row (12 + 2 loaded `b` vectors + 1 broadcast = 15
    /// of the 16 ymm registers), so each broadcast of `a[i,p]` is reused
    /// across 16 lanes. Ragged `n` tails run an 8-wide tile and then the
    /// identical scalar order; ragged `m` tails shrink `MR`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and the `gemm_nn` shape
    /// invariants (`a = [m,k]`, `b = [k,n]`, `bias = [m]`, `out = [m,n]`).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn gemm_nn_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        out: &mut [f32],
    ) {
        let mut i0 = 0;
        while i0 < m {
            let mr = NN_MR.min(m - i0);
            match mr {
                6 => nn_rows_avx2::<6>(i0, k, n, a, b, bias, out),
                5 => nn_rows_avx2::<5>(i0, k, n, a, b, bias, out),
                4 => nn_rows_avx2::<4>(i0, k, n, a, b, bias, out),
                3 => nn_rows_avx2::<3>(i0, k, n, a, b, bias, out),
                2 => nn_rows_avx2::<2>(i0, k, n, a, b, bias, out),
                _ => nn_rows_avx2::<1>(i0, k, n, a, b, bias, out),
            }
            i0 += mr;
        }
    }

    /// All `n` columns of the `MR` rows starting at `i0`: 16-wide
    /// double-vector tiles, an 8-wide tile on the remainder, then the same
    /// scalar column tail as the tiled kernel. Every lane everywhere owns
    /// one output element's full sequential k-chain.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn nn_rows_avx2<const MR: usize>(
        i0: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        out: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let n_wide = n - n % (2 * LANES);
        let n_main = n - n % LANES;
        let mut j0 = 0;
        while j0 < n_wide {
            // each lane owns out[i0+mi][j0+lane]: seeded with the row
            // bias, then one mul+add per p — the scalar chain, 16
            // elements at a time, one broadcast of a[i,p] per row shared
            // by both halves
            let mut lo: [__m256; MR] = std::array::from_fn(|mi| _mm256_set1_ps(bias[i0 + mi]));
            let mut hi: [__m256; MR] = std::array::from_fn(|mi| _mm256_set1_ps(bias[i0 + mi]));
            for p in 0..k {
                let bv0 = _mm256_loadu_ps(bp.add(p * n + j0));
                let bv1 = _mm256_loadu_ps(bp.add(p * n + j0 + LANES));
                for mi in 0..MR {
                    let av = _mm256_set1_ps(*a.get_unchecked((i0 + mi) * k + p));
                    lo[mi] = _mm256_add_ps(lo[mi], _mm256_mul_ps(av, bv0));
                    hi[mi] = _mm256_add_ps(hi[mi], _mm256_mul_ps(av, bv1));
                }
            }
            for mi in 0..MR {
                let obase = (i0 + mi) * n + j0;
                _mm256_storeu_ps(out.as_mut_ptr().add(obase), lo[mi]);
                _mm256_storeu_ps(out.as_mut_ptr().add(obase + LANES), hi[mi]);
            }
            j0 += 2 * LANES;
        }
        while j0 < n_main {
            // one 8-wide tile on the 8..=15-column remainder
            let mut acc: [__m256; MR] = std::array::from_fn(|mi| _mm256_set1_ps(bias[i0 + mi]));
            for p in 0..k {
                let bv = _mm256_loadu_ps(bp.add(p * n + j0));
                for (mi, lanes) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*a.get_unchecked((i0 + mi) * k + p));
                    *lanes = _mm256_add_ps(*lanes, _mm256_mul_ps(av, bv));
                }
            }
            for (mi, lanes) in acc.iter().enumerate() {
                _mm256_storeu_ps(out.as_mut_ptr().add((i0 + mi) * n + j0), *lanes);
            }
            j0 += LANES;
        }
        // column tail (n % 8 columns): scalar, bias first then p ascending
        for mi in 0..MR {
            let i = i0 + mi;
            let arow = &a[i * k..(i + 1) * k];
            for j in n_main..n {
                let mut acc = bias[i];
                for (p, &av) in arow.iter().enumerate() {
                    acc += av * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
    }

    /// AVX2 `gemm_nt`: each 8-output-feature block is packed once into an
    /// interleaved `[k × 8]` buffer (lanes past `m` zero-padded), then up
    /// to [`NT_SIMD_MR`] samples advance through `k` together, reusing
    /// every packed load. Per element the sum is a single sequential chain
    /// from zero with the bias added last — `affine_row`'s exact order.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and the `gemm_nt` shape
    /// invariants (`w = [m,k]` with `m = bias.len()`, every row of length
    /// `k`, `out = [rows.len(), m]`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_nt_avx2(
        k: usize,
        rows: &[&[f32]],
        w: &[f32],
        bias: &[f32],
        out: &mut [f32],
    ) {
        let m = bias.len();
        NT_PACK.with(|cell| {
            let mut pack = cell.borrow_mut();
            pack.resize(k * LANES, 0.0);
            let mut r0 = 0;
            while r0 < m {
                let nr = LANES.min(m - r0);
                for lane in 0..LANES {
                    if lane < nr {
                        let wrow = &w[(r0 + lane) * k..(r0 + lane) * k + k];
                        for (p, &wv) in wrow.iter().enumerate() {
                            pack[p * LANES + lane] = wv;
                        }
                    } else {
                        // padded lanes compute garbage dot products that
                        // are never stored; zero keeps them finite
                        for p in 0..k {
                            pack[p * LANES + lane] = 0.0;
                        }
                    }
                }
                let mut i0 = 0;
                while i0 < rows.len() {
                    let mr = NT_SIMD_MR.min(rows.len() - i0);
                    match mr {
                        4 => nt_samples_avx2::<4>(i0, r0, nr, k, rows, &pack, bias, out),
                        3 => nt_samples_avx2::<3>(i0, r0, nr, k, rows, &pack, bias, out),
                        2 => nt_samples_avx2::<2>(i0, r0, nr, k, rows, &pack, bias, out),
                        _ => nt_samples_avx2::<1>(i0, r0, nr, k, rows, &pack, bias, out),
                    }
                    i0 += mr;
                }
                r0 += nr;
            }
        });
    }

    /// `MR` samples × one packed 8-feature block: `MR` accumulator vectors
    /// advance through `k` together, every step one packed load shared by
    /// all samples plus one broadcast per sample.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn nt_samples_avx2<const MR: usize>(
        i0: usize,
        r0: usize,
        nr: usize,
        k: usize,
        rows: &[&[f32]],
        pack: &[f32],
        bias: &[f32],
        out: &mut [f32],
    ) {
        let m = bias.len();
        let xr: [&[f32]; MR] = std::array::from_fn(|mi| rows[i0 + mi]);
        let mut acc: [__m256; MR] = [_mm256_setzero_ps(); MR];
        let pp = pack.as_ptr();
        for p in 0..k {
            let wv = _mm256_loadu_ps(pp.add(p * LANES));
            for (lanes, xrow) in acc.iter_mut().zip(&xr) {
                let xv = _mm256_set1_ps(*xrow.get_unchecked(p));
                *lanes = _mm256_add_ps(*lanes, _mm256_mul_ps(xv, wv));
            }
        }
        for (mi, lanes) in acc.iter().enumerate() {
            let mut tmp = [0.0f32; LANES];
            _mm256_storeu_ps(tmp.as_mut_ptr(), *lanes);
            let obase = (i0 + mi) * m + r0;
            for (ni, &v) in tmp.iter().take(nr).enumerate() {
                out[obase + ni] = v + bias[r0 + ni];
            }
        }
    }

    /// Output channels advanced together per fused-conv tile — each input
    /// load is reused by this many weight broadcasts.
    const CONV_OC: usize = 3;

    /// Fused direct convolution: lanes are contiguous output-x positions
    /// (whose receptive fields are contiguous in the input row), so every
    /// tap is one broadcast of `w[oc, c, ky, kx]` against contiguous
    /// unaligned loads of the input — no patch matrix, no copy-out.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support and the conv shape
    /// invariants (`input = [c_in, h, w]`, `weights = [c_out, c_in, kh,
    /// kw]`, `bias = [c_out]`, `out = [c_out, oh, ow]` with the valid
    /// geometry `oh = h - kh + 1`, `ow = w - kw + 1`, `ow >= 8`).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn conv2d_direct_avx2(
        input: &[f32],
        c_in: usize,
        h: usize,
        w: usize,
        weights: &[f32],
        kh: usize,
        kw: usize,
        bias: &[f32],
        out: &mut [f32],
        oh: usize,
        ow: usize,
        c_out: usize,
    ) {
        let mut oc0 = 0;
        while oc0 < c_out {
            let ocr = CONV_OC.min(c_out - oc0);
            match ocr {
                3 => conv_oc_block_avx2::<3>(
                    oc0, input, c_in, h, w, weights, kh, kw, bias, out, oh, ow,
                ),
                2 => conv_oc_block_avx2::<2>(
                    oc0, input, c_in, h, w, weights, kh, kw, bias, out, oh, ow,
                ),
                _ => conv_oc_block_avx2::<1>(
                    oc0, input, c_in, h, w, weights, kh, kw, bias, out, oh, ow,
                ),
            }
            oc0 += ocr;
        }
    }

    /// `OC` output channels × one output row × up-to-16 output columns per
    /// tile: `2·OC` accumulators (≤ 6) + 2 input vectors + 1 broadcast
    /// stay comfortably inside the 16 ymm registers. Per element the
    /// accumulation is bias first, then taps in `(c, ky, kx)` ascending
    /// order — the im2col patch-row order, hence bit-parity with
    /// [`super::gemm_nn`] on the lowered form.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn conv_oc_block_avx2<const OC: usize>(
        oc0: usize,
        input: &[f32],
        c_in: usize,
        h: usize,
        w: usize,
        weights: &[f32],
        kh: usize,
        kw: usize,
        bias: &[f32],
        out: &mut [f32],
        oh: usize,
        ow: usize,
    ) {
        let ip = input.as_ptr();
        let ktaps = c_in * kh * kw;
        let ow_wide = ow - ow % (2 * LANES);
        let ow_main = ow - ow % LANES;
        for oy in 0..oh {
            let mut ox = 0;
            while ox < ow_wide {
                let mut lo: [__m256; OC] = std::array::from_fn(|o| _mm256_set1_ps(bias[oc0 + o]));
                let mut hi: [__m256; OC] = std::array::from_fn(|o| _mm256_set1_ps(bias[oc0 + o]));
                for c in 0..c_in {
                    for ky in 0..kh {
                        let irow = ip.add(c * h * w + (oy + ky) * w + ox);
                        for kx in 0..kw {
                            let iv0 = _mm256_loadu_ps(irow.add(kx));
                            let iv1 = _mm256_loadu_ps(irow.add(kx + LANES));
                            let tap = (c * kh + ky) * kw + kx;
                            for o in 0..OC {
                                let wv =
                                    _mm256_set1_ps(*weights.get_unchecked((oc0 + o) * ktaps + tap));
                                lo[o] = _mm256_add_ps(lo[o], _mm256_mul_ps(wv, iv0));
                                hi[o] = _mm256_add_ps(hi[o], _mm256_mul_ps(wv, iv1));
                            }
                        }
                    }
                }
                for o in 0..OC {
                    let obase = (oc0 + o) * oh * ow + oy * ow + ox;
                    _mm256_storeu_ps(out.as_mut_ptr().add(obase), lo[o]);
                    _mm256_storeu_ps(out.as_mut_ptr().add(obase + LANES), hi[o]);
                }
                ox += 2 * LANES;
            }
            while ox < ow_main {
                let mut acc: [__m256; OC] = std::array::from_fn(|o| _mm256_set1_ps(bias[oc0 + o]));
                for c in 0..c_in {
                    for ky in 0..kh {
                        let irow = ip.add(c * h * w + (oy + ky) * w + ox);
                        for kx in 0..kw {
                            let iv = _mm256_loadu_ps(irow.add(kx));
                            let tap = (c * kh + ky) * kw + kx;
                            for (o, lanes) in acc.iter_mut().enumerate() {
                                let wv =
                                    _mm256_set1_ps(*weights.get_unchecked((oc0 + o) * ktaps + tap));
                                *lanes = _mm256_add_ps(*lanes, _mm256_mul_ps(wv, iv));
                            }
                        }
                    }
                }
                for (o, lanes) in acc.iter().enumerate() {
                    let obase = (oc0 + o) * oh * ow + oy * ow + ox;
                    _mm256_storeu_ps(out.as_mut_ptr().add(obase), *lanes);
                }
                ox += LANES;
            }
            // scalar column tail: same per-element order, unblocked
            for ox in ow_main..ow {
                for o in 0..OC {
                    let oc = oc0 + o;
                    let mut acc = bias[oc];
                    for c in 0..c_in {
                        for ky in 0..kh {
                            let ibase = c * h * w + (oy + ky) * w + ox;
                            let wbase = (oc * c_in + c) * kh * kw + ky * kw;
                            for kx in 0..kw {
                                acc += weights[wbase + kx] * input[ibase + kx];
                            }
                        }
                    }
                    out[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
    }
}

/// Crate-internal entry for the fused direct convolution of the
/// [`GemmKernel::Simd`] arm: convolves one `[c_in, h, w]` image straight
/// from its feature maps (no im2col materialization), writing the
/// `[c_out, oh, ow]` output. Returns `false` — and writes nothing — when
/// the host lacks AVX2 or the geometry is out of the kernel's profile
/// (`ow < 8`: too few output columns to fill a vector register), in which
/// case the caller must run the im2col + [`gemm_nn`] path instead.
///
/// Bit-exactness: each output lane accumulates `bias` first, then the
/// taps in channel-major `(c, ky, kx)` ascending order with separate
/// mul+add — exactly the im2col patch-row order that [`gemm_nn`] sums, so
/// fused and lowered results are identical to the last bit (pinned by the
/// conv parity suites, which iterate every kernel).
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_direct_simd(
    input: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    c_out: usize,
    kh: usize,
    kw: usize,
    bias: &[f32],
    out: &mut [f32],
    oh: usize,
    ow: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !simd::available() || ow < 8 {
            return false;
        }
        debug_assert_eq!(input.len(), c_in * h * w);
        debug_assert_eq!(weights.len(), c_out * c_in * kh * kw);
        debug_assert_eq!(bias.len(), c_out);
        debug_assert_eq!(out.len(), c_out * oh * ow);
        // SAFETY: AVX2 confirmed; the debug asserts document the shape
        // invariants the (checked-indexing-free) microkernels rely on,
        // which `conv2d_valid_batch` has already validated.
        unsafe {
            simd::conv2d_direct_avx2(input, c_in, h, w, weights, kh, kw, bias, out, oh, ow, c_out);
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (input, c_in, h, w, weights, c_out, kh, kw, bias, out, oh, ow);
        false
    }
}

/// Non-x86 stand-in: the `Simd` arm always takes the `Tiled` fallback.
#[cfg(not(target_arch = "x86_64"))]
mod simd {
    pub(super) fn force_fallback(_on: bool) {}

    pub(super) fn available() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Serializes the tests that read *and* the test that flips the
    /// process-global forced-fallback flag: a flip between two reads in a
    /// concurrently running detection test would fail it spuriously.
    /// (Result bits are flip-immune — only detection itself is not.)
    static DETECTION_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.random_range(-2.0..2.0)).collect()
    }

    /// Naive triple loop replaying the reference accumulation order for
    /// the nn (bias-first) shape.
    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], bias: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// Naive loop replaying the reference order for the nt (bias-last)
    /// shape.
    fn naive_nt(k: usize, rows: &[&[f32]], w: &[f32], bias: &[f32]) -> Vec<f32> {
        let m = bias.len();
        let mut out = vec![0.0f32; rows.len() * m];
        for (i, row) in rows.iter().enumerate() {
            for r in 0..m {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += w[r * k + p] * row[p];
                }
                out[i * m + r] = acc + bias[r];
            }
        }
        out
    }

    #[test]
    fn nn_kernels_bit_identical_across_shapes() {
        let mut rng = StdRng::seed_from_u64(41);
        // deliberately ragged shapes: tile tails in m and n, k = 0,
        // single row / column, and the exact 4×8 tile
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (4, 5, 8),
            (6, 25, 147),
            (5, 3, 9),
            (3, 0, 7),
            (1, 12, 31),
            (12, 150, 1),
            (7, 7, 7),
        ] {
            let a = fill(&mut rng, m * k);
            let b = fill(&mut rng, k * n);
            let bias = fill(&mut rng, m);
            let expected = naive_nn(m, k, n, &a, &b, &bias);
            for kernel in GemmKernel::ALL {
                let mut out = vec![f32::NAN; m * n];
                gemm_nn(kernel, m, k, n, &a, &b, &bias, &mut out);
                for (got, want) in out.iter().zip(&expected) {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kernel} nn mismatch at ({m},{k},{n})"
                    );
                }
            }
        }
    }

    #[test]
    fn nt_kernels_bit_identical_across_shapes() {
        let mut rng = StdRng::seed_from_u64(43);
        for (rows_n, m, k) in [
            (1usize, 1usize, 1usize),
            (4, 4, 9),
            (5, 10, 864),
            (9, 3, 17),
            (2, 6, 0),
            (1, 13, 5),
            (16, 1, 12),
        ] {
            let samples: Vec<Vec<f32>> = (0..rows_n).map(|_| fill(&mut rng, k)).collect();
            let rows: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
            let w = fill(&mut rng, m * k);
            let bias = fill(&mut rng, m);
            let expected = naive_nt(k, &rows, &w, &bias);
            for kernel in GemmKernel::ALL {
                let mut out = vec![f32::NAN; rows_n * m];
                gemm_nt(kernel, k, &rows, &w, &bias, &mut out);
                for (got, want) in out.iter().zip(&expected) {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kernel} nt mismatch at ({rows_n},{m},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_k_is_pure_bias() {
        for kernel in GemmKernel::ALL {
            let mut out = vec![9.0f32; 6];
            gemm_nn(kernel, 2, 0, 3, &[], &[], &[1.5, -0.5], &mut out);
            assert_eq!(out, [1.5, 1.5, 1.5, -0.5, -0.5, -0.5]);
            let mut out = vec![9.0f32; 4];
            let rows: Vec<&[f32]> = vec![&[], &[]];
            gemm_nt(kernel, 0, &rows, &[], &[0.25, -1.0], &mut out);
            assert_eq!(out, [0.25, -1.0, 0.25, -1.0]);
        }
    }

    #[test]
    fn empty_row_set_writes_nothing() {
        for kernel in GemmKernel::ALL {
            let mut out = Vec::new();
            gemm_nt(kernel, 3, &[], &[0.0; 6], &[0.0, 0.0], &mut out);
            assert!(out.is_empty());
            gemm_nn(kernel, 0, 3, 4, &[], &[0.0; 12], &[], &mut out);
        }
    }

    #[test]
    fn known_values_match_hand_computation() {
        // A = [[1,2],[3,4]], B = [[5,6,7],[8,9,10]], bias = [0.5, -0.5]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        for kernel in GemmKernel::ALL {
            let mut out = [0.0f32; 6];
            gemm_nn(kernel, 2, 2, 3, &a, &b, &[0.5, -0.5], &mut out);
            assert_eq!(out, [21.5, 24.5, 27.5, 46.5, 53.5, 60.5]);
        }
        // rows·Wᵀ + bias with W = A: row [1,1] → [1+2+0.5, 3+4-0.5]
        for kernel in GemmKernel::ALL {
            let row: &[f32] = &[1.0, 1.0];
            let mut out = [0.0f32; 2];
            gemm_nt(kernel, 2, &[row], &a, &[0.5, -0.5], &mut out);
            assert_eq!(out, [3.5, 6.5]);
        }
    }

    #[test]
    fn validates_buffer_shapes() {
        let r = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 4];
            gemm_nn(
                GemmKernel::Tiled,
                2,
                2,
                2,
                &[0.0; 3],
                &[0.0; 4],
                &[0.0; 2],
                &mut out,
            );
        });
        assert!(r.is_err(), "short a must panic");
        let r = std::panic::catch_unwind(|| {
            let row: &[f32] = &[0.0; 3];
            let mut out = vec![0.0f32; 2];
            gemm_nt(GemmKernel::Tiled, 2, &[row], &[0.0; 4], &[0.0; 2], &mut out);
        });
        assert!(r.is_err(), "wrong row length must panic");
    }

    #[test]
    fn display_parse_round_trip() {
        for kernel in GemmKernel::ALL {
            assert_eq!(kernel.to_string().parse::<GemmKernel>().unwrap(), kernel);
        }
        assert_eq!(
            "Reference".parse::<GemmKernel>().unwrap(),
            GemmKernel::Reference
        );
        assert_eq!("avx2".parse::<GemmKernel>().unwrap(), GemmKernel::Simd);
        // "auto" and the Default impl both resolve to the detected kernel,
        // which is always one of the two fast arms
        let auto = "auto".parse::<GemmKernel>().unwrap();
        assert!(auto == GemmKernel::Simd || auto == GemmKernel::Tiled);
        assert_ne!(GemmKernel::default(), GemmKernel::Reference);
        assert!("avx512".parse::<GemmKernel>().is_err());
    }

    #[test]
    fn detect_matches_host_support() {
        let _guard = DETECTION_LOCK.lock().unwrap();
        if GemmKernel::simd_available() {
            assert_eq!(GemmKernel::detect(), GemmKernel::Simd);
        } else {
            assert_eq!(GemmKernel::detect(), GemmKernel::Tiled);
        }
    }

    /// The `Simd` arm on a host (or build) without AVX2 must silently run
    /// the `Tiled` loops with identical results — exercised here through
    /// the forced-fallback hook, on shapes with ragged tails in every
    /// dimension. The guard restores the real dispatch even on panic.
    #[test]
    fn simd_forced_fallback_is_bit_identical_to_tiled() {
        let _guard = DETECTION_LOCK.lock().unwrap();
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                force_simd_fallback(false);
            }
        }
        let _restore = Restore;
        let mut rng = StdRng::seed_from_u64(77);
        let (m, k, n) = (7usize, 13usize, 29usize);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let bias = fill(&mut rng, m);
        let mut tiled = vec![f32::NAN; m * n];
        gemm_nn(GemmKernel::Tiled, m, k, n, &a, &b, &bias, &mut tiled);

        force_simd_fallback(true);
        assert!(!GemmKernel::simd_available());
        assert_eq!(GemmKernel::detect(), GemmKernel::Tiled);
        let mut forced = vec![f32::NAN; m * n];
        gemm_nn(GemmKernel::Simd, m, k, n, &a, &b, &bias, &mut forced);
        for (got, want) in forced.iter().zip(&tiled) {
            assert_eq!(got.to_bits(), want.to_bits(), "forced-fallback nn");
        }

        let samples: Vec<Vec<f32>> = (0..5).map(|_| fill(&mut rng, k)).collect();
        let rows: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
        let w = fill(&mut rng, m * k);
        let mut tiled_nt = vec![f32::NAN; rows.len() * m];
        gemm_nt(GemmKernel::Tiled, k, &rows, &w, &bias, &mut tiled_nt);
        let mut forced_nt = vec![f32::NAN; rows.len() * m];
        gemm_nt(GemmKernel::Simd, k, &rows, &w, &bias, &mut forced_nt);
        for (got, want) in forced_nt.iter().zip(&tiled_nt) {
            assert_eq!(got.to_bits(), want.to_bits(), "forced-fallback nt");
        }
        drop(_restore);
        // with the hook released, detection is back to the host truth
        assert_eq!(
            GemmKernel::simd_available(),
            GemmKernel::detect() == GemmKernel::Simd
        );
    }

    /// SIMD-specific shape torture: n exactly one vector, n just past a
    /// vector boundary, n under one vector, and a head-shaped nt (m = 10 →
    /// one 8-lane block + a 2-lane tail) — all three kernels bit-identical.
    #[test]
    fn simd_tail_shapes_match_reference() {
        let mut rng = StdRng::seed_from_u64(99);
        for (m, k, n) in [
            (3usize, 11usize, 8usize),
            (6, 25, 9),
            (2, 4, 7),
            (13, 3, 40),
            (1, 30, 17),
        ] {
            let a = fill(&mut rng, m * k);
            let b = fill(&mut rng, k * n);
            let bias = fill(&mut rng, m);
            let expected = naive_nn(m, k, n, &a, &b, &bias);
            for kernel in GemmKernel::ALL {
                let mut out = vec![f32::NAN; m * n];
                gemm_nn(kernel, m, k, n, &a, &b, &bias, &mut out);
                for (got, want) in out.iter().zip(&expected) {
                    assert_eq!(got.to_bits(), want.to_bits(), "{kernel} at ({m},{k},{n})");
                }
            }
        }
        for (rows_n, m, k) in [
            (6usize, 10usize, 84usize),
            (3, 8, 5),
            (5, 17, 12),
            (1, 2, 9),
        ] {
            let samples: Vec<Vec<f32>> = (0..rows_n).map(|_| fill(&mut rng, k)).collect();
            let rows: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
            let w = fill(&mut rng, m * k);
            let bias = fill(&mut rng, m);
            let expected = naive_nt(k, &rows, &w, &bias);
            for kernel in GemmKernel::ALL {
                let mut out = vec![f32::NAN; rows_n * m];
                gemm_nt(kernel, k, &rows, &w, &bias, &mut out);
                for (got, want) in out.iter().zip(&expected) {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kernel} at ({rows_n},{m},{k})"
                    );
                }
            }
        }
    }
}
