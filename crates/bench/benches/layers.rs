//! Criterion bench: raw layer primitive throughput (the substrate the
//! op-count model assumes). Geometry matches the paper's Table I/II layers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdl_tensor::{conv, im2col, ops, pool, Tensor};

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("layers");

    // Table I C1: 28x28x1 -> 24x24x6, 5x5 kernels
    let input = Tensor::full(&[1, 28, 28], 0.5);
    let kernels = Tensor::full(&[6, 1, 5, 5], 0.02);
    let bias = vec![0.0f32; 6];
    group.bench_function("conv_c1_28x28_6maps_5x5", |b| {
        b.iter(|| conv::conv2d_valid(black_box(&input), black_box(&kernels), &bias).unwrap())
    });

    group.bench_function("conv_c1_im2col_lowering", |b| {
        b.iter(|| {
            im2col::conv2d_valid_im2col(black_box(&input), black_box(&kernels), &bias).unwrap()
        })
    });

    // Table I C2: 12x12x6 -> 8x8x12, 5x5 kernels
    let input2 = Tensor::full(&[6, 12, 12], 0.5);
    let kernels2 = Tensor::full(&[12, 6, 5, 5], 0.02);
    let bias2 = vec![0.0f32; 12];
    group.bench_function("conv_c2_12x12x6_12maps_5x5", |b| {
        b.iter(|| conv::conv2d_valid(black_box(&input2), black_box(&kernels2), &bias2).unwrap())
    });

    group.bench_function("conv_c2_im2col_lowering", |b| {
        b.iter(|| {
            im2col::conv2d_valid_im2col(black_box(&input2), black_box(&kernels2), &bias2).unwrap()
        })
    });

    // P1: 24x24x6 max pool 2x2
    let pin = Tensor::full(&[6, 24, 24], 0.5);
    group.bench_function("maxpool_24x24x6_w2", |b| {
        b.iter(|| pool::maxpool2d(black_box(&pin), 2).unwrap())
    });
    group.bench_function("meanpool_24x24x6_w2", |b| {
        b.iter(|| pool::meanpool2d(black_box(&pin), 2).unwrap())
    });

    // O1 head: 864 -> 10 matvec
    let w = Tensor::full(&[10, 864], 0.01);
    let x = Tensor::full(&[864], 0.5);
    group.bench_function("dense_864_to_10", |b| {
        b.iter(|| ops::matvec(black_box(&w), black_box(&x)).unwrap())
    });

    // softmax on 10 scores (the activation module's normalisation)
    let scores = Tensor::from_vec((0..10).map(|i| i as f32 * 0.3).collect(), &[10]).unwrap();
    group.bench_function("softmax_10", |b| {
        b.iter(|| ops::softmax(black_box(&scores)))
    });

    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
