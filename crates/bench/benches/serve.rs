//! Criterion bench: streaming server throughput (`cdl_serve::Server`,
//! dynamic batching + worker pool) vs the sequential per-image loop and the
//! offline `BatchEvaluator`, on a 1k-request simulated stream.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use cdl_core::arch;
use cdl_core::batch::BatchEvaluator;
use cdl_core::builder::{BuilderConfig, CdlBuilder};
use cdl_core::confidence::ConfidencePolicy;
use cdl_core::network::CdlNetwork;
use cdl_dataset::SyntheticMnist;
use cdl_nn::network::Network;
use cdl_nn::trainer::{train, LabelledSet, TrainConfig};
use cdl_serve::{BatchPolicy, Pending, Server, ServerConfig};

fn prepare() -> (Arc<CdlNetwork>, LabelledSet) {
    let (train_set, test_set) = SyntheticMnist::default().generate_split(1500, 1024, 23);
    let arch = arch::mnist_3c();
    let mut base = Network::from_spec(&arch.spec, 7).unwrap();
    train(
        &mut base,
        &train_set,
        &TrainConfig {
            epochs: 6,
            lr: 1.5,
            lr_decay: 0.95,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    let cdl = CdlBuilder::new(arch, ConfidencePolicy::sigmoid_prob(0.5))
        .build(
            base,
            &train_set,
            &BuilderConfig {
                force_admit_all: true,
                ..BuilderConfig::default()
            },
        )
        .unwrap()
        .into_network();
    (Arc::new(cdl), test_set)
}

/// Streams every image through a fresh server from `clients` submitter
/// threads; returns the exit-stage checksum the other variants compute.
fn stream_through_server(
    net: &Arc<CdlNetwork>,
    images: &[cdl_tensor::Tensor],
    policy: BatchPolicy,
    workers: usize,
    clients: usize,
) -> usize {
    let server = Server::start(
        Arc::clone(net),
        ServerConfig {
            policy,
            queue_capacity: 2048,
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let exits = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    let pendings: Vec<Pending> = images
                        .iter()
                        .skip(c)
                        .step_by(clients)
                        .map(|x| server.submit(x.clone()).unwrap())
                        .collect();
                    pendings
                        .into_iter()
                        .map(|p| p.wait().unwrap().exit_stage)
                        .sum::<usize>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    server.shutdown();
    exits
}

fn bench_serve(c: &mut Criterion) {
    let (cdl, test_set) = prepare();
    let images = &test_set.images;
    assert!(images.len() >= 1024);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);

    let mut group = c.benchmark_group("serve_stream_1k");
    group.sample_size(10);
    group.bench_function("per_image_classify", |b| {
        b.iter(|| {
            let mut exits = 0usize;
            for img in images {
                exits += cdl.classify(black_box(img)).unwrap().exit_stage;
            }
            exits
        })
    });
    group.bench_function("offline_batch_evaluator", |b| {
        let mut eval = BatchEvaluator::new(&cdl);
        b.iter(|| {
            let outs = eval.classify_batch(black_box(images)).unwrap();
            outs.iter().map(|o| o.exit_stage).sum::<usize>()
        })
    });
    group.bench_function("server_mixed_64_1ms", |b| {
        b.iter(|| {
            stream_through_server(
                &cdl,
                black_box(images),
                BatchPolicy::new(64, Duration::from_millis(1)),
                workers,
                4,
            )
        })
    });
    // a deadline-free size-bound policy only terminates when every batch
    // fills: the stream length must divide evenly or the tail would wait
    // forever (the clients block in wait() before shutdown can flush)
    assert_eq!(images.len() % 128, 0, "size-bound stream must tile exactly");
    group.bench_function("server_size_bound_128", |b| {
        b.iter(|| {
            stream_through_server(
                &cdl,
                black_box(images),
                BatchPolicy::by_size(128),
                workers,
                4,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
