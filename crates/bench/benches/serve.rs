//! Criterion bench: sharded streaming-server throughput
//! (`cdl_serve::Router`, two models behind one front-end, dynamic batching
//! per shard) vs the sequential per-image loop and the offline
//! `BatchEvaluator`s, on a 1k-request two-model simulated stream.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use cdl_bench::pipeline::train_demo_model;
use cdl_core::arch;
use cdl_core::batch::BatchEvaluator;
use cdl_core::network::CdlNetwork;
use cdl_dataset::SyntheticMnist;
use cdl_nn::trainer::LabelledSet;
use cdl_serve::{
    BatchPolicy, GemmKernel, ModelId, Pending, Router, ServerConfig, ShardSpec, SubmitOptions,
};

/// MNIST_2C + MNIST_3C trained on one synthetic set, plus the test images.
fn prepare() -> (Arc<CdlNetwork>, Arc<CdlNetwork>, LabelledSet) {
    let (train_set, test_set) = SyntheticMnist::default().generate_split(1500, 1024, 23);
    let m2c = Arc::new(train_demo_model(arch::mnist_2c(), &train_set, 6, 7).unwrap());
    let m3c = Arc::new(train_demo_model(arch::mnist_3c(), &train_set, 6, 11).unwrap());
    (m2c, m3c, test_set)
}

/// The per-request override mix the streamed variants exercise (a quarter
/// of the stream deviates from the deployment default).
fn service_level(i: usize) -> SubmitOptions {
    match i % 8 {
        0..=5 => SubmitOptions::default(),
        6 => SubmitOptions::with_delta(0.35),
        _ => SubmitOptions::with_max_stage(0),
    }
}

/// Streams every image through a fresh two-shard router from `clients`
/// submitter threads — request `i` to model `i % 2` with its service
/// level — and returns the exit-stage checksum the other variants compute.
fn stream_through_router(
    m2c: &Arc<CdlNetwork>,
    m3c: &Arc<CdlNetwork>,
    images: &[cdl_tensor::Tensor],
    policy: BatchPolicy,
    workers: usize,
    clients: usize,
    gemm_kernel: GemmKernel,
) -> usize {
    let config = ServerConfig {
        policy,
        queue_capacity: 2048,
        workers,
        gemm_kernel,
        ..ServerConfig::default()
    };
    let router = Router::start(vec![
        ShardSpec::new("MNIST_2C", Arc::clone(m2c), config.clone()),
        ShardSpec::new("MNIST_3C", Arc::clone(m3c), config),
    ])
    .unwrap();
    let models = [ModelId::from_index(0), ModelId::from_index(1)];
    let exits = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let router = &router;
                let models = &models;
                scope.spawn(move || {
                    let pendings: Vec<Pending> = images
                        .iter()
                        .enumerate()
                        .skip(c)
                        .step_by(clients)
                        .map(|(i, x)| {
                            router
                                .submit_with(models[i % 2], x.clone(), service_level(i))
                                .unwrap()
                        })
                        .collect();
                    pendings
                        .into_iter()
                        .map(|p| p.wait().unwrap().exit_stage)
                        .sum::<usize>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    router.shutdown();
    exits
}

fn bench_serve(c: &mut Criterion) {
    let (m2c, m3c, test_set) = prepare();
    let images = &test_set.images;
    assert!(images.len() >= 1024);
    let nets = [&m2c, &m3c];
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);

    let mut group = c.benchmark_group("serve_stream_2model_1k");
    group.sample_size(10);
    group.bench_function("per_image_classify", |b| {
        b.iter(|| {
            let mut exits = 0usize;
            for (i, img) in images.iter().enumerate() {
                exits += nets[i % 2]
                    .classify_with_override(black_box(img), service_level(i).exit_override())
                    .unwrap()
                    .exit_stage;
            }
            exits
        })
    });
    group.bench_function("offline_batch_evaluators", |b| {
        // offline upper bound: split the stream by model, one persistent
        // evaluator each, default policy only (overrides need grouping,
        // which is the router's job)
        let mut eval_2c = BatchEvaluator::new(&m2c);
        let mut eval_3c = BatchEvaluator::new(&m3c);
        let (for_2c, for_3c): (Vec<_>, Vec<_>) =
            images.iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let for_2c: Vec<_> = for_2c.into_iter().map(|(_, x)| x.clone()).collect();
        let for_3c: Vec<_> = for_3c.into_iter().map(|(_, x)| x.clone()).collect();
        b.iter(|| {
            let outs_2c = eval_2c.classify_batch(black_box(&for_2c)).unwrap();
            let outs_3c = eval_3c.classify_batch(black_box(&for_3c)).unwrap();
            outs_2c
                .iter()
                .chain(&outs_3c)
                .map(|o| o.exit_stage)
                .sum::<usize>()
        })
    });
    // the GEMM-kernel dimension on the streamed path: same responses
    // (pinned by the equivalence suites), different worker inner loops
    for kernel in GemmKernel::ALL {
        group.bench_function(format!("router_mixed_64_1ms_{kernel}"), |b| {
            b.iter(|| {
                stream_through_router(
                    &m2c,
                    &m3c,
                    black_box(images),
                    BatchPolicy::new(64, Duration::from_millis(1)),
                    workers,
                    4,
                    kernel,
                )
            })
        });
    }
    // a deadline-free size-bound policy only terminates when every batch
    // fills: each shard sees half the stream, which must tile evenly or
    // the tail would wait forever (the clients block in wait() before
    // shutdown can flush)
    assert_eq!(
        (images.len() / 2) % 64,
        0,
        "size-bound per-shard stream must tile exactly"
    );
    group.bench_function("router_size_bound_64", |b| {
        b.iter(|| {
            stream_through_router(
                &m2c,
                &m3c,
                black_box(images),
                BatchPolicy::by_size(64),
                workers,
                4,
                GemmKernel::default(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
