//! Criterion bench: LMS head training throughput — the paper argues the
//! linear classifiers are cheap to (re)train; this quantifies it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdl_core::head::{LinearClassifier, LmsConfig};
use cdl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn blobs(n: usize, dim: usize) -> (Vec<Tensor>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.random_range(0..10usize);
        let v: Vec<f32> = (0..dim)
            .map(|d| if d % 10 == c { 1.5 } else { 0.0 } + rng.random_range(-0.4..0.4))
            .collect();
        xs.push(Tensor::from_vec(v, &[dim]).unwrap());
        ys.push(c);
    }
    (xs, ys)
}

fn bench_head_lms(c: &mut Criterion) {
    let mut group = c.benchmark_group("head_lms");
    // O1 of MNIST_3C: 507 features; O2: 150 features
    for (name, dim) in [("o1_507_features", 507usize), ("o2_150_features", 150)] {
        let (xs, ys) = blobs(512, dim);
        group.bench_function(format!("epoch_512_samples_{name}"), |b| {
            b.iter(|| {
                let mut head = LinearClassifier::new(dim, 10, 1).unwrap();
                head.train_lms(
                    black_box(&xs),
                    black_box(&ys),
                    &LmsConfig {
                        epochs: 1,
                        ..LmsConfig::default()
                    },
                )
                .unwrap()
            })
        });
    }
    // single-sample scoring (the activation-module hot path)
    let head = LinearClassifier::new(507, 10, 1).unwrap();
    let x = Tensor::full(&[507], 0.4);
    group.bench_function("score_507_features", |b| {
        b.iter(|| head.scores(black_box(&x)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_head_lms
}
criterion_main!(benches);
