//! Criterion bench: batched early-exit inference (`BatchEvaluator`) vs the
//! per-image `CdlNetwork::classify` loop, on a ≥1k-image synthetic stream —
//! with a GEMM-kernel dimension (`reference` loops vs the `tiled`
//! microkernel default) on the batched variant.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdl_bench::pipeline::classify_batch_parallel;
use cdl_core::arch;
use cdl_core::batch::BatchEvaluator;
use cdl_core::builder::{BuilderConfig, CdlBuilder};
use cdl_core::confidence::ConfidencePolicy;
use cdl_core::network::CdlNetwork;
use cdl_dataset::SyntheticMnist;
use cdl_nn::network::Network;
use cdl_nn::trainer::{train, LabelledSet, TrainConfig};
use cdl_tensor::GemmKernel;

fn prepare() -> (CdlNetwork, LabelledSet) {
    let (train_set, test_set) = SyntheticMnist::default().generate_split(1500, 1024, 23);
    let arch = arch::mnist_3c();
    let mut base = Network::from_spec(&arch.spec, 7).unwrap();
    train(
        &mut base,
        &train_set,
        &TrainConfig {
            epochs: 6,
            lr: 1.5,
            lr_decay: 0.95,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    let cdl = CdlBuilder::new(arch, ConfidencePolicy::sigmoid_prob(0.5))
        .build(
            base,
            &train_set,
            &BuilderConfig {
                force_admit_all: true,
                ..BuilderConfig::default()
            },
        )
        .unwrap()
        .into_network();
    (cdl, test_set)
}

fn bench_batch(c: &mut Criterion) {
    let (cdl, test_set) = prepare();
    let images = &test_set.images;
    assert!(images.len() >= 1024);

    let mut group = c.benchmark_group("batch_inference_1k");
    group.sample_size(10);
    group.bench_function("per_image_classify", |b| {
        b.iter(|| {
            let mut exits = 0usize;
            for img in images {
                exits += cdl.classify(black_box(img)).unwrap().exit_stage;
            }
            exits
        })
    });
    // the GEMM-kernel dimension: identical outputs (pinned by the
    // equivalence suites), different inner loops
    for kernel in GemmKernel::ALL {
        group.bench_function(format!("batch_evaluator_{kernel}"), |b| {
            let mut eval = BatchEvaluator::with_kernel(&cdl, kernel);
            b.iter(|| {
                let outs = eval.classify_batch(black_box(images)).unwrap();
                outs.iter().map(|o| o.exit_stage).sum::<usize>()
            })
        });
    }
    group.bench_function("batch_evaluator_rayon_chunks", |b| {
        b.iter(|| {
            let outs = classify_batch_parallel(&cdl, black_box(images), 128).unwrap();
            outs.iter().map(|o| o.exit_stage).sum::<usize>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch
}
criterion_main!(benches);
