//! Criterion bench: batched early-exit inference (`BatchEvaluator`) vs the
//! per-image `CdlNetwork::classify` loop, on a ≥1k-image synthetic stream —
//! with a GEMM-kernel dimension (`reference` loops vs `tiled` register
//! blocks vs the explicit-AVX2 `simd` arm) on the batched variant. For the
//! committed machine-readable summary, see
//! `cargo run --release --example bench_report` (`BENCH_5.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdl_bench::pipeline::{classify_batch_parallel, train_demo_model};
use cdl_core::arch;
use cdl_core::batch::BatchEvaluator;
use cdl_core::network::CdlNetwork;
use cdl_dataset::SyntheticMnist;
use cdl_nn::trainer::LabelledSet;
use cdl_tensor::GemmKernel;

fn prepare() -> (CdlNetwork, CdlNetwork, LabelledSet) {
    let (train_set, test_set) = SyntheticMnist::default().generate_split(1500, 1024, 23);
    let cdl_2c = train_demo_model(arch::mnist_2c(), &train_set, 6, 7).unwrap();
    let cdl_3c = train_demo_model(arch::mnist_3c(), &train_set, 6, 7).unwrap();
    (cdl_2c, cdl_3c, test_set)
}

fn bench_batch(c: &mut Criterion) {
    let (cdl_2c, cdl_3c, test_set) = prepare();
    let images = &test_set.images;
    assert!(images.len() >= 1024);

    // both paper models: MNIST_2C's wide feature maps are compute-bound
    // (where the SIMD kernels pay most), MNIST_3C's narrow C1 is
    // memory-bound and its C3 takes the fused kernel's GEMM fallback
    for (model, cdl) in [("2c", &cdl_2c), ("3c", &cdl_3c)] {
        let mut group = c.benchmark_group(format!("batch_inference_1k_{model}"));
        group.sample_size(10);
        group.bench_function("per_image_classify", |b| {
            b.iter(|| {
                let mut exits = 0usize;
                for img in images {
                    exits += cdl.classify(black_box(img)).unwrap().exit_stage;
                }
                exits
            })
        });
        // the GEMM-kernel dimension: identical outputs (pinned by the
        // equivalence suites), different inner loops
        for kernel in GemmKernel::ALL {
            group.bench_function(format!("batch_evaluator_{kernel}"), |b| {
                let mut eval = BatchEvaluator::with_kernel(cdl, kernel);
                b.iter(|| {
                    let outs = eval.classify_batch(black_box(images)).unwrap();
                    outs.iter().map(|o| o.exit_stage).sum::<usize>()
                })
            });
        }
        group.bench_function("batch_evaluator_rayon_chunks", |b| {
            b.iter(|| {
                let outs = classify_batch_parallel(cdl, black_box(images), 128).unwrap();
                outs.iter().map(|o| o.exit_stage).sum::<usize>()
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch
}
criterion_main!(benches);
