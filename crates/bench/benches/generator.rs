//! Criterion bench: synthetic MNIST generation throughput (the dataset
//! substrate must not dominate experiment runtimes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdl_dataset::generator::{SyntheticConfig, SyntheticMnist};
use cdl_dataset::idx;

fn bench_generator(c: &mut Criterion) {
    let gen_default = SyntheticMnist::new(SyntheticConfig::default());
    let gen_easy = SyntheticMnist::new(SyntheticConfig::easy());

    let mut group = c.benchmark_group("generator");
    group.bench_function("single_sample_default", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(gen_default.sample(1, i))
        })
    });
    group.bench_function("single_sample_easy", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(gen_easy.sample(1, i))
        })
    });
    group.bench_function("batch_of_100", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(gen_default.generate(100, seed))
        })
    });
    let set = gen_default.generate(100, 7);
    group.bench_function("idx_serialize_100", |b| {
        b.iter(|| black_box(idx::write_images(&set.images)))
    });
    let bytes = idx::write_images(&set.images);
    group.bench_function("idx_parse_100", |b| {
        b.iter(|| black_box(idx::parse_images(&bytes).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
