//! Criterion bench: per-input inference latency, baseline DLN vs CDLN.
//!
//! This is the wall-clock counterpart of the paper's Figs. 5/6: the CDLN's
//! average latency on the (mostly easy) input stream sits well below the
//! baseline's fixed cost, while its worst case (a hard input cascading to
//! FC) is slightly above it — the head evaluations ride on top.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cdl_core::arch;
use cdl_core::builder::{BuilderConfig, CdlBuilder};
use cdl_core::confidence::ConfidencePolicy;
use cdl_core::network::CdlNetwork;
use cdl_dataset::SyntheticMnist;
use cdl_nn::network::Network;
use cdl_nn::trainer::{train, LabelledSet, TrainConfig};
use cdl_tensor::Tensor;

fn prepare() -> (CdlNetwork, LabelledSet) {
    let (train_set, test_set) = SyntheticMnist::default().generate_split(2500, 400, 17);
    let arch = arch::mnist_3c();
    let mut base = Network::from_spec(&arch.spec, 7).unwrap();
    train(
        &mut base,
        &train_set,
        &TrainConfig {
            epochs: 12,
            lr: 1.5,
            lr_decay: 0.95,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    let cdl = CdlBuilder::new(arch, ConfidencePolicy::sigmoid_prob(0.5))
        .build(
            base,
            &train_set,
            &BuilderConfig {
                force_admit_all: true,
                ..BuilderConfig::default()
            },
        )
        .unwrap()
        .into_network();
    (cdl, test_set)
}

/// Finds one input exiting at the given stage (or any input as fallback).
fn input_exiting_at(cdl: &CdlNetwork, set: &LabelledSet, stage: usize) -> Tensor {
    for img in &set.images {
        if cdl.classify(img).unwrap().exit_stage == stage {
            return img.clone();
        }
    }
    set.images[0].clone()
}

fn bench_inference(c: &mut Criterion) {
    let (cdl, test_set) = prepare();
    let easy = input_exiting_at(&cdl, &test_set, 0);
    let hard = input_exiting_at(&cdl, &test_set, cdl.stage_count());

    let mut group = c.benchmark_group("inference");
    group.bench_function("baseline_full_pass", |b| {
        b.iter(|| cdl.base().forward(black_box(&easy)).unwrap())
    });
    group.bench_function("cdln_easy_input_exit_o1", |b| {
        b.iter(|| cdl.classify(black_box(&easy)).unwrap())
    });
    group.bench_function("cdln_hard_input_full_cascade", |b| {
        b.iter(|| cdl.classify(black_box(&hard)).unwrap())
    });
    // average over a realistic stream: the number the paper's Fig. 5
    // normalizes
    let stream: Vec<&Tensor> = test_set.images.iter().take(64).collect();
    group.bench_function("cdln_stream_of_64", |b| {
        b.iter(|| {
            let mut ops = 0u64;
            for img in &stream {
                ops += cdl.classify(black_box(img)).unwrap().ops.compute_ops();
            }
            ops
        })
    });
    group.bench_function("baseline_stream_of_64", |b| {
        b.iter(|| {
            let mut ops = 0u64;
            for img in &stream {
                cdl.base().forward(black_box(img)).unwrap();
                ops += cdl.baseline_ops().compute_ops();
            }
            ops
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference
}
criterion_main!(benches);
