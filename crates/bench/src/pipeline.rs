//! Shared experiment pipeline: data generation, baseline training,
//! Algorithm 1, and on-disk model caching.

use std::path::PathBuf;

use cdl_core::arch::{self, CdlArchitecture};
use cdl_core::batch::BatchEvaluator;
use cdl_core::builder::{BuilderConfig, CdlBuilder, StageReport};
use cdl_core::confidence::ConfidencePolicy;
use cdl_core::head::LinearClassifier;
use cdl_core::network::{CdlNetwork, CdlOutput};
use cdl_dataset::idx;
use cdl_dataset::SyntheticMnist;
use cdl_nn::network::Network;
use cdl_nn::trainer::{train, LabelledSet, TrainConfig};
use cdl_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Error type used by the pipeline (send-able so preparation can run on
/// worker threads).
pub type BenchError = Box<dyn std::error::Error + Send + Sync>;

/// Scale and hyper-parameters of one experiment run, normally read from the
/// environment (see the crate docs for the variable table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Training-set size.
    pub train_n: usize,
    /// Test-set size.
    pub test_n: usize,
    /// Baseline training epochs.
    pub epochs: usize,
    /// Confidence threshold δ.
    pub delta: f32,
    /// Master seed.
    pub seed: u64,
    /// Optional directory holding the four real MNIST IDX files.
    pub mnist_dir: Option<PathBuf>,
    /// Dataset profile: `"default"` (heavy hard tail, exercises the full
    /// cascade) or `"easy"` (MNIST-like separability, the regime of the
    /// paper's Table III accuracy gain).
    pub profile: String,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            train_n: 20_000,
            test_n: 4_000,
            epochs: 10,
            delta: 0.5,
            seed: 42,
            mnist_dir: None,
            profile: "default".to_string(),
        }
    }
}

impl ExperimentConfig {
    /// Reads the configuration from `CDL_*` environment variables, falling
    /// back to the defaults.
    pub fn from_env() -> Self {
        fn get<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = ExperimentConfig::default();
        ExperimentConfig {
            train_n: get("CDL_TRAIN_N", d.train_n),
            test_n: get("CDL_TEST_N", d.test_n),
            epochs: get("CDL_EPOCHS", d.epochs),
            delta: get("CDL_DELTA", d.delta),
            seed: get("CDL_SEED", d.seed),
            mnist_dir: std::env::var("CDL_MNIST_DIR").ok().map(PathBuf::from),
            profile: std::env::var("CDL_PROFILE").unwrap_or(d.profile),
        }
    }

    /// The termination policy used across the experiments (the paper's
    /// sigmoid output-neuron confidence).
    pub fn policy(&self) -> ConfidencePolicy {
        ConfidencePolicy::sigmoid_prob(self.delta)
    }

    /// Baseline trainer configuration.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            lr: 1.5,
            lr_decay: 0.9,
            seed: self.seed ^ 0x7EA1,
            ..TrainConfig::default()
        }
    }

    /// Loads (real MNIST) or generates (synthetic) the train/test split.
    pub fn datasets(&self) -> (LabelledSet, LabelledSet) {
        if let Some(dir) = &self.mnist_dir {
            match idx::load_mnist_dir(dir) {
                Ok((train_set, test_set)) => {
                    eprintln!("using real MNIST from {}", dir.display());
                    return (train_set.take(self.train_n), test_set.take(self.test_n));
                }
                Err(e) => eprintln!(
                    "warning: CDL_MNIST_DIR set but unusable ({e}); falling back to synthetic"
                ),
            }
        }
        let config = if self.profile == "easy" {
            cdl_dataset::generator::SyntheticConfig::easy()
        } else {
            cdl_dataset::generator::SyntheticConfig::default()
        };
        SyntheticMnist::new(config).generate_split(self.train_n, self.test_n, self.seed)
    }

    fn cache_key(&self, arch_name: &str) -> String {
        format!(
            "{}_n{}_e{}_d{}_s{}_{}{}",
            arch_name,
            self.train_n,
            self.epochs,
            self.delta,
            self.seed,
            self.profile,
            if self.mnist_dir.is_some() {
                "_mnist"
            } else {
                ""
            }
        )
    }
}

/// A trained, assembled CDLN ready for evaluation.
#[derive(Debug)]
pub struct Prepared {
    /// The architecture it was built from.
    pub arch: CdlArchitecture,
    /// The conditional network (baseline + admitted heads).
    pub cdl: CdlNetwork,
    /// Algorithm 1 per-stage log.
    pub stage_reports: Vec<StageReport>,
    /// Trained baseline parameters (for experiments that rebuild the
    /// baseline, e.g. the stage-count sweeps).
    pub params: Vec<Tensor>,
    /// Wall-clock spent training (0 on cache hits).
    pub train_seconds: f64,
}

impl Prepared {
    /// Rebuilds a fresh copy of the trained baseline network.
    ///
    /// # Errors
    ///
    /// Propagates spec/parameter errors (impossible for an intact
    /// `Prepared`).
    pub fn fresh_base(&self) -> Result<Network, BenchError> {
        let mut base = Network::from_spec(&self.arch.spec, 0)?;
        base.import_params(&self.params)?;
        Ok(base)
    }
}

/// Both paper architectures prepared on the same data.
#[derive(Debug)]
pub struct PreparedPair {
    /// Table I network (MNIST_2C).
    pub net_2c: Prepared,
    /// Table II network (MNIST_3C).
    pub net_3c: Prepared,
    /// Shared training set.
    pub train_set: LabelledSet,
    /// Shared test set.
    pub test_set: LabelledSet,
}

#[derive(Serialize, Deserialize)]
struct CachedModel {
    params: Vec<Tensor>,
    heads: Vec<(usize, String, LinearClassifier)>,
    stage_reports: Vec<StageReport>,
}

fn cache_dir() -> PathBuf {
    std::env::var("CDL_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/cdl-cache"))
}

/// Prepares one architecture: trains the baseline (or loads it from cache),
/// runs Algorithm 1, and assembles the CDLN.
///
/// # Errors
///
/// Propagates training/builder failures as boxed errors.
pub fn prepare(
    arch: CdlArchitecture,
    cfg: &ExperimentConfig,
    train_set: &LabelledSet,
    builder_cfg: &BuilderConfig,
) -> Result<Prepared, BenchError> {
    let key = cfg.cache_key(&arch.name);
    let cache_path = cache_dir().join(format!("{key}.json"));

    if let Ok(bytes) = std::fs::read(&cache_path) {
        if let Ok(cached) = serde_json::from_slice::<CachedModel>(&bytes) {
            let mut base = Network::from_spec(&arch.spec, cfg.seed)?;
            if base.import_params(&cached.params).is_ok() {
                let cdl = CdlNetwork::assemble(base, cached.heads, cfg.policy())?;
                eprintln!("[{}] loaded from cache {}", arch.name, cache_path.display());
                return Ok(Prepared {
                    arch,
                    cdl,
                    stage_reports: cached.stage_reports,
                    params: cached.params,
                    train_seconds: 0.0,
                });
            }
        }
    }

    let started = std::time::Instant::now();
    let mut base = Network::from_spec(&arch.spec, cfg.seed)?;
    let report = train(&mut base, train_set, &cfg.train_config())?;
    eprintln!(
        "[{}] baseline trained: {} epochs, final train acc {:.3} ({:.1}s)",
        arch.name,
        cfg.epochs,
        report
            .epochs
            .last()
            .map(|e| e.train_accuracy)
            .unwrap_or(0.0),
        started.elapsed().as_secs_f64()
    );
    let params = base.export_params();
    let trained =
        CdlBuilder::new(arch.clone(), cfg.policy()).build(base, train_set, builder_cfg)?;
    let stage_reports = trained.reports().to_vec();
    for r in &stage_reports {
        eprintln!(
            "[{}] stage {}: head-acc {:.3}, reached {}, classified {}, gain {:.0}, admitted {}",
            arch.name,
            r.name,
            r.head_accuracy,
            r.reached,
            r.classified,
            r.gain_ops_per_instance,
            r.admitted
        );
    }
    let train_seconds = started.elapsed().as_secs_f64();

    // persist
    let heads: Vec<(usize, String, LinearClassifier)> = trained
        .network()
        .stages()
        .iter()
        .map(|s| {
            let spec_layer = arch
                .taps
                .iter()
                .find(|t| t.name == s.name)
                .map(|t| t.spec_layer)
                .expect("admitted stage must come from a tap");
            (spec_layer, s.name.clone(), s.head.clone())
        })
        .collect();
    let cached = CachedModel {
        params: params.clone(),
        heads,
        stage_reports: stage_reports.clone(),
    };
    if std::fs::create_dir_all(cache_dir()).is_ok() {
        if let Ok(json) = serde_json::to_vec(&cached) {
            let _ = std::fs::write(&cache_path, json);
        }
    }

    Ok(Prepared {
        arch,
        cdl: trained.into_network(),
        stage_reports,
        params,
        train_seconds,
    })
}

/// Trains a fresh baseline on `train_set` and assembles the CDLN with the
/// standard demo recipe — lr 1.5, decay 0.95, sigmoid-prob δ = 0.5
/// policy, force-admitted heads — parameterized only by architecture,
/// epoch count and seed.
///
/// This is the **single** model setup shared by the examples
/// (`serve_stream`, `bench_report`) and the criterion benches
/// (`batch`, `serve`): they must all measure the same network, so the
/// recipe lives here instead of being repeated (and drifting) per
/// call site. Unlike [`prepare`], there is no cache and no env-driven
/// configuration — deterministic in, deterministic out.
///
/// # Errors
///
/// Propagates training/builder failures as boxed errors.
pub fn train_demo_model(
    arch: CdlArchitecture,
    train_set: &LabelledSet,
    epochs: usize,
    seed: u64,
) -> Result<CdlNetwork, BenchError> {
    let mut base = Network::from_spec(&arch.spec, seed)?;
    train(
        &mut base,
        train_set,
        &TrainConfig {
            epochs,
            lr: 1.5,
            lr_decay: 0.95,
            ..TrainConfig::default()
        },
    )?;
    Ok(CdlBuilder::new(arch, ConfidencePolicy::sigmoid_prob(0.5))
        .build(
            base,
            train_set,
            &BuilderConfig {
                force_admit_all: true,
                ..BuilderConfig::default()
            },
        )?
        .into_network())
}

/// Batched, data-parallel early-exit inference over an image stream.
///
/// Splits `images` into chunks of `chunk_size` and groups the chunks into
/// one contiguous run per rayon worker, so each worker drives a **single**
/// [`BatchEvaluator`] across all of its chunks — the im2col/GEMM scratch is
/// allocated once per worker, not once per chunk. Outputs come back in
/// input order and are bit-identical to [`CdlNetwork::classify`] on the
/// same image — this is the serving-path entry point the experiment
/// binaries and benches share.
///
/// # Errors
///
/// Propagates layer/head evaluation errors from any chunk.
pub fn classify_batch_parallel(
    cdl: &CdlNetwork,
    images: &[Tensor],
    chunk_size: usize,
) -> Result<Vec<CdlOutput>, BenchError> {
    use rayon::prelude::*;
    if images.is_empty() {
        return Ok(Vec::new());
    }
    let chunks: Vec<&[Tensor]> = images.chunks(chunk_size.max(1)).collect();
    let workers = rayon::current_num_threads().max(1);
    let per_group = chunks.len().div_ceil(workers);
    let groups: Vec<&[&[Tensor]]> = chunks.chunks(per_group).collect();
    let group_results: Vec<cdl_core::Result<Vec<CdlOutput>>> = groups
        .into_par_iter()
        .map(|group| {
            let mut eval = BatchEvaluator::new(cdl);
            let mut outs = Vec::new();
            for chunk in group {
                outs.extend(eval.classify_batch(chunk)?);
            }
            Ok(outs)
        })
        .collect();
    let mut out = Vec::with_capacity(images.len());
    for r in group_results {
        out.extend(r?);
    }
    Ok(out)
}

/// Prepares both paper architectures on one shared dataset (training them in
/// parallel on first run).
///
/// # Errors
///
/// Propagates training/builder failures.
pub fn prepare_pair(cfg: &ExperimentConfig) -> Result<PreparedPair, BenchError> {
    let (train_set, test_set) = cfg.datasets();
    let builder_cfg = BuilderConfig::default();
    let (r2, r3) = rayon::join(
        || prepare(arch::mnist_2c(), cfg, &train_set, &builder_cfg),
        || prepare(arch::mnist_3c(), cfg, &train_set, &builder_cfg),
    );
    let net_2c = r2?;
    let net_3c = r3?;
    Ok(PreparedPair {
        net_2c,
        net_3c,
        train_set,
        test_set,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            train_n: 300,
            test_n: 100,
            epochs: 2,
            delta: 0.5,
            seed: 9,
            mnist_dir: None,
            profile: "default".to_string(),
        }
    }

    #[test]
    fn config_from_env_defaults() {
        // without the env vars set, from_env == default
        let cfg = ExperimentConfig::from_env();
        let d = ExperimentConfig::default();
        // only assert fields not plausibly set in the environment of CI
        assert!(cfg.train_n > 0 && d.train_n > 0);
    }

    #[test]
    fn datasets_generate_requested_sizes() {
        let cfg = tiny_cfg();
        let (train_set, test_set) = cfg.datasets();
        assert_eq!(train_set.len(), 300);
        assert_eq!(test_set.len(), 100);
    }

    #[test]
    fn prepare_trains_and_caches() {
        let dir = std::env::temp_dir().join(format!("cdl_cache_test_{}", std::process::id()));
        std::env::set_var("CDL_CACHE_DIR", &dir);
        let cfg = tiny_cfg();
        let (train_set, _) = cfg.datasets();
        let p1 = prepare(
            arch::mnist_3c(),
            &cfg,
            &train_set,
            &BuilderConfig::default(),
        )
        .unwrap();
        assert!(p1.train_seconds > 0.0);
        // second call must hit the cache
        let p2 = prepare(
            arch::mnist_3c(),
            &cfg,
            &train_set,
            &BuilderConfig::default(),
        )
        .unwrap();
        assert_eq!(p2.train_seconds, 0.0);
        // identical behaviour from cache
        let x = &train_set.images[0];
        assert_eq!(
            p1.cdl.classify(x).unwrap().label,
            p2.cdl.classify(x).unwrap().label
        );
        std::env::remove_var("CDL_CACHE_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_batch_matches_per_image() {
        let cfg = tiny_cfg();
        let (train_set, test_set) = cfg.datasets();
        let arch = arch::mnist_3c();
        let mut base = cdl_nn::network::Network::from_spec(&arch.spec, cfg.seed).unwrap();
        cdl_nn::trainer::train(&mut base, &train_set, &cfg.train_config()).unwrap();
        let cdl = CdlBuilder::new(arch, cfg.policy())
            .build(
                base,
                &train_set,
                &BuilderConfig {
                    force_admit_all: true,
                    ..BuilderConfig::default()
                },
            )
            .unwrap()
            .into_network();
        // chunked-parallel outputs must be bit-identical to the scalar loop,
        // independent of the chunk size
        for chunk in [7usize, 32, 1000] {
            let batched = classify_batch_parallel(&cdl, &test_set.images, chunk).unwrap();
            assert_eq!(batched.len(), test_set.len());
            for (img, out) in test_set.images.iter().zip(&batched) {
                assert_eq!(*out, cdl.classify(img).unwrap());
            }
        }
    }
}
