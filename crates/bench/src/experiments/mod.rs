//! One module per table/figure of the paper's evaluation (DESIGN.md §4).
//!
//! Every experiment returns its rendered report as a `String` (the binaries
//! print it; `run_all` also writes each to `target/cdl-results/`).

pub mod ablation;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table12;
pub mod table3;
pub mod table4;

use crate::pipeline::BenchError;
use std::path::PathBuf;

/// Directory where `run_all` stores rendered experiment reports.
pub fn results_dir() -> PathBuf {
    std::env::var("CDL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/cdl-results"))
}

/// Writes a rendered report under [`results_dir`] (best effort) and returns
/// the rendered text unchanged for printing.
///
/// # Errors
///
/// Propagates only directory-creation failures when the directory is
/// explicitly configured; otherwise best-effort.
pub fn save_report(name: &str, rendered: &str) -> Result<(), BenchError> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("{name}.txt")), rendered)?;
    Ok(())
}
