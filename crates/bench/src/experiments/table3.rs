//! Table III — classification accuracy of the baselines vs their CDLNs.
//!
//! Paper: 98.04 % → 99.05 % (6-layer / MNIST_2C) and 97.55 % → 98.92 %
//! (8-layer / MNIST_3C): the conditional network is *more* accurate than
//! the baseline it wraps.

use crate::experiments::fig5::Fig5;

/// Renders the accuracy table from the shared evaluation pass.
pub fn render(fig: &Fig5) -> String {
    let mut out = String::from("=== Table III: accuracy, baseline DLN vs CDLN ===\n\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>8}   {}\n",
        "network", "baseline", "CDLN", "delta", "paper (baseline -> CDLN)"
    ));
    for (name, report, paper) in [
        ("6-layer", &fig.report_2c, "98.04% -> 99.05%"),
        ("8-layer", &fig.report_3c, "97.55% -> 98.92%"),
    ] {
        out.push_str(&format!(
            "{:<10} {:>9.2}% {:>9.2}% {:>+7.2}pp   {}\n",
            name,
            report.baseline_accuracy * 100.0,
            report.accuracy * 100.0,
            (report.accuracy - report.baseline_accuracy) * 100.0,
            paper,
        ));
    }
    out.push_str(
        "\nnote: absolute accuracies depend on the synthetic dataset; the paper's\n\
         claim under reproduction is the *sign* of the delta (CDLN >= baseline)\n\
         driven by the independently-trained linear classifiers.\n",
    );
    out
}
