//! Fig. 8 — energy benefit ordered by input difficulty, and the FC
//! activation fractions.
//!
//! Paper: digits ordered by decreasing energy efficiency; digit 1 is the
//! least difficult (FC activated for only 1 % of its instances), digit 5
//! the most difficult (FC for 6 %); even the hardest digit keeps a ≥1.5×
//! energy benefit.

use cdl_hw::report::bar_chart;

use crate::experiments::fig5::Fig5;

/// Renders the difficulty-ordered energy chart for MNIST_3C.
pub fn render(fig: &Fig5) -> String {
    let report = &fig.report_3c;
    let mut out = String::from(
        "=== Fig. 8: normalized energy benefit vs input difficulty (MNIST_3C) ===\n\n",
    );
    let order = report.digits_by_energy_benefit();
    let rows: Vec<(String, f64)> = order
        .iter()
        .filter_map(|&digit| {
            report.digits.iter().find(|d| d.digit == digit).map(|d| {
                (
                    format!("digit {} (FC {:>4.1}%)", d.digit, d.fc_fraction * 100.0),
                    1.0 / d.normalized_energy,
                )
            })
        })
        .collect();
    out.push_str("energy improvement, easiest to hardest digit:\n");
    out.push_str(&bar_chart(&rows, 40));

    let easiest = order.first().copied().unwrap_or(0);
    let hardest = order.last().copied().unwrap_or(0);
    let fc = |digit: usize| {
        report
            .digits
            .iter()
            .find(|d| d.digit == digit)
            .map(|d| d.fc_fraction * 100.0)
            .unwrap_or(0.0)
    };
    let worst_benefit = rows.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "\neasiest digit: {easiest} (final layer activated for {:.1}% of its instances)\n\
         hardest digit: {hardest} (final layer activated for {:.1}% of its instances)\n\
         minimum energy benefit across digits: {worst_benefit:.2}x (paper: >= 1.5x even for the hardest)\n\
         paper identifies digit 1 easiest (FC 1%) and digit 5 hardest (FC 6%).\n",
        fc(easiest),
        fc(hardest),
    ));
    out
}
