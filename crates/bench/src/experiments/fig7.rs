//! Fig. 7 — accuracy as output layers are added one at a time to the
//! 8-layer net (O1-FC, O1-O2-FC, O1-O2-O3-FC).
//!
//! Paper: accuracy rises monotonically from the 97.55 % baseline to 98.92 %
//! with all three heads, and the fraction of inputs misclassified by the
//! final layer progressively decreases.

use cdl_core::arch::mnist_3c_full;
use cdl_core::builder::BuilderConfig;
use cdl_core::sweep::{stage_count_sweep, StagePoint};
use cdl_hw::EnergyModel;

use crate::pipeline::{BenchError, ExperimentConfig, PreparedPair};

/// Runs the stage-count accuracy study on the 8-layer net.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn run(pair: &PreparedPair, cfg: &ExperimentConfig) -> Result<Vec<StagePoint>, BenchError> {
    let arch = mnist_3c_full();
    let mut base = pair.net_3c.fresh_base()?;
    Ok(stage_count_sweep(
        &arch,
        &mut base,
        &pair.train_set,
        &pair.test_set,
        cfg.policy(),
        &BuilderConfig::default(),
        &EnergyModel::cmos_45nm(),
    )?)
}

/// Renders the accuracy-vs-stage-count table.
pub fn render(points: &[StagePoint]) -> String {
    let mut out =
        String::from("=== Fig. 7: accuracy vs number of output layers (8-layer net) ===\n\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>14}\n",
        "configuration", "accuracy", "norm. acc.", "FC miscls. share"
    ));
    let baseline = points.first().map(|p| p.baseline_accuracy).unwrap_or(0.0);
    for p in points {
        let label = if p.stages == 0 {
            "baseline (FC)".to_string()
        } else {
            format!("{}-FC", p.names.join("-"))
        };
        out.push_str(&format!(
            "{:<16} {:>9.2}% {:>12.4} {:>13.1}%\n",
            label,
            p.accuracy * 100.0,
            p.accuracy / baseline.max(1e-12),
            p.fc_fraction * 100.0,
        ));
    }
    out.push_str(
        "\npaper shape: each added head raises accuracy over the 97.55% baseline\n\
         (+0.1% with O1 alone, +1.4% with O1-O2-O3) while the share of inputs that\n\
         still reach the final layer shrinks.\n",
    );
    out
}
