//! Tables I & II — the two baseline DLN topologies, with per-layer shapes,
//! parameter counts, op counts and modelled energy (the paper reports only
//! the topology; we add the cost columns the other experiments build on).

use cdl_core::arch::{mnist_2c, mnist_3c, CdlArchitecture};
use cdl_hw::report::CostReport;
use cdl_hw::{Accelerator, EnergyModel};
use cdl_nn::network::Network;

use crate::pipeline::BenchError;

/// Renders both architecture tables.
///
/// # Errors
///
/// Propagates network-construction errors.
pub fn run() -> Result<String, BenchError> {
    let mut out = String::new();
    for arch in [mnist_2c(), mnist_3c()] {
        out.push_str(&render_arch(&arch)?);
        out.push('\n');
    }
    Ok(out)
}

fn render_arch(arch: &CdlArchitecture) -> Result<String, BenchError> {
    let net = Network::from_spec(&arch.spec, 0)?;
    let model = EnergyModel::cmos_45nm();
    let acc = Accelerator::cmos_45nm();
    let per_layer = net.op_counts()?;
    let names = net.layer_names();

    let mut report = CostReport::new();
    for (name, ops) in names.iter().zip(&per_layer) {
        report.push(name.clone(), *ops, model.energy(ops, 0));
    }
    let (total_ops, _) = report.total();

    let mut out = format!(
        "=== {} (baseline DLN: {} spec layers, {} runtime layers, {} parameters) ===\n",
        arch.name,
        arch.spec.layers.len(),
        net.layer_count(),
        net.param_count()
    );
    out.push_str(&format!("input: {:?}\n", arch.spec.input_shape));
    let chain = arch.spec.shape_chain().map_err(|e| e.to_string())?;
    for (i, (spec, shape)) in arch.spec.layers.iter().zip(&chain).enumerate() {
        let tap = arch
            .taps
            .iter()
            .find(|t| t.spec_layer == i)
            .map(|t| {
                format!(
                    "   <- linear classifier {} ({} features)",
                    t.name,
                    shape.iter().product::<usize>()
                )
            })
            .unwrap_or_default();
        out.push_str(&format!("  layer {i}: {spec:?} -> {shape:?}{tap}\n"));
    }
    out.push('\n');
    out.push_str(&report.render());
    out.push_str(&format!(
        "\naccelerator model: {} MAC lanes @ {:.0} MHz, {:.2} mm², full pass {:.1} µs, utilisation {:.0}%\n",
        acc.mac_lanes,
        acc.clock_hz / 1e6,
        acc.area_mm2(),
        acc.latency_s(&total_ops) * 1e6,
        acc.utilisation(&total_ops) * 100.0
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_tables() {
        let s = run().unwrap();
        assert!(s.contains("MNIST_2C"));
        assert!(s.contains("MNIST_3C"));
        assert!(s.contains("O1"));
        assert!(s.contains("O2"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("accelerator model"));
    }
}
