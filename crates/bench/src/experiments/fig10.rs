//! Fig. 10 — the efficiency/accuracy tradeoff under the confidence
//! threshold δ (8-layer net).
//!
//! Paper: raising δ from 0.4 to 0.5 lifts accuracy 96.12 % → 99.02 % while
//! normalized #OPS falls 1.1 → 0.51; past the accuracy peak (δ ≈ 0.5)
//! accuracy degrades while #OPS keeps falling — δ is a runtime knob trading
//! accuracy for efficiency.
//!
//! Note on conventions: with the paper's own two-criteria activation module
//! (exit iff *exactly one* class confidence ≥ δ), ops-vs-δ is **U-shaped**:
//! at low δ several per-class sigmoid confidences clear the bar and the
//! *uniqueness* criterion keeps inputs cascading; at high δ the *confidence*
//! criterion does. The paper's reported range (δ 0.4 → 0.5 → …, ops falling,
//! accuracy peaking at 0.5) is the **left branch** of that U — which is why
//! the paper can say "#OPS still continues to decrease with increasing δ"
//! even though its Algorithm 2 reads `confidence ≥ δ ⇒ terminate`. This
//! sweep covers both branches so the full curve (and the accuracy peak in
//! the middle) is visible.

use cdl_core::sweep::{delta_sweep, DeltaPoint};
use cdl_hw::EnergyModel;

use crate::pipeline::{BenchError, PreparedPair};

/// The δ grid used for the sweep.
pub fn delta_grid() -> Vec<f32> {
    (1..=19).map(|i| i as f32 * 0.05).collect()
}

/// Runs the δ sweep on the prepared 8-layer CDLN.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run(pair: &mut PreparedPair) -> Result<Vec<DeltaPoint>, BenchError> {
    let deltas = delta_grid();
    Ok(delta_sweep(
        &mut pair.net_3c.cdl,
        &pair.test_set,
        &deltas,
        &EnergyModel::cmos_45nm(),
    )?)
}

/// Renders the tradeoff table and calls out the accuracy peak.
pub fn render(points: &[DeltaPoint]) -> String {
    let mut out = String::from(
        "=== Fig. 10: efficiency vs accuracy tradeoff using confidence δ (8-layer net) ===\n\n",
    );
    out.push_str(&format!(
        "{:>6} {:>12} {:>10} {:>16}\n",
        "δ", "norm. #OPS", "accuracy", "frac. reaching FC"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>6.2} {:>12.3} {:>9.2}% {:>15.1}%\n",
            p.delta,
            p.normalized_ops,
            p.accuracy * 100.0,
            p.fc_fraction * 100.0,
        ));
    }
    if let Some(best) = points
        .iter()
        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
    {
        out.push_str(&format!(
            "\naccuracy peak at δ = {:.2} ({:.2}%, normalized #OPS {:.3}); paper peaks at δ = 0.5\n",
            best.delta,
            best.accuracy * 100.0,
            best.normalized_ops,
        ));
    }
    out.push_str(
        "shape to check: ops monotone in δ; accuracy rises to a peak at moderate δ\n\
         and falls once confident-but-wrong early exits dominate.\n",
    );
    out
}
