//! Ablations beyond the paper's figures (DESIGN.md §5):
//!
//! * **confidence policy** — the paper leaves the confidence measure open
//!   ("class probabilities or distance from the decision boundary"); this
//!   ablation compares the per-class sigmoid reading, softmax max-prob,
//!   margin and entropy policies at matched thresholds;
//! * **head training budget** — LMS epochs vs CDLN accuracy/ops, probing
//!   the paper's claim that the linear classifiers converge quickly.

use cdl_core::builder::{BuilderConfig, CdlBuilder};
use cdl_core::confidence::ConfidencePolicy;
use cdl_core::head::LmsConfig;
use cdl_core::stats::evaluate;
use cdl_hw::EnergyModel;

use crate::pipeline::{BenchError, ExperimentConfig, PreparedPair};

/// Compares termination policies on the prepared 8-layer CDLN.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn confidence_policies(pair: &PreparedPair) -> Result<String, BenchError> {
    let model = EnergyModel::cmos_45nm();
    let mut out = String::from("=== Ablation: confidence policy (8-layer CDLN) ===\n\n");
    out.push_str(&format!(
        "{:<28} {:>10} {:>12} {:>10}\n",
        "policy", "accuracy", "norm. #OPS", "FC frac."
    ));
    let policies = [
        ConfidencePolicy::sigmoid_prob(0.5),
        ConfidencePolicy::sigmoid_prob(0.7),
        ConfidencePolicy::max_prob(0.5),
        ConfidencePolicy::max_prob(0.7),
        ConfidencePolicy::margin(0.3),
        ConfidencePolicy::margin(0.6),
        ConfidencePolicy::entropy(0.5),
        ConfidencePolicy::entropy(0.2),
    ];
    for policy in policies {
        let mut correct = 0usize;
        let mut ops_sum = 0.0f64;
        let mut fc = 0usize;
        for (img, &label) in pair.test_set.images.iter().zip(&pair.test_set.labels) {
            let o = pair.net_3c.cdl.classify_with_policy(img, policy)?;
            if o.label == label {
                correct += 1;
            }
            ops_sum += o.ops.compute_ops() as f64;
            if !o.exited_early {
                fc += 1;
            }
        }
        let n = pair.test_set.len() as f64;
        let base = pair.net_3c.cdl.baseline_ops().compute_ops() as f64;
        out.push_str(&format!(
            "{:<28} {:>9.2}% {:>12.3} {:>9.1}%\n",
            policy.to_string(),
            correct as f64 / n * 100.0,
            ops_sum / n / base,
            fc as f64 / n * 100.0,
        ));
    }
    let _ = model;
    out.push_str(
        "\nshape to check: all policies trace the same frontier; the per-class sigmoid\n\
         reading (the paper's) and margin give the best accuracy at comparable ops.\n",
    );
    Ok(out)
}

/// Compares a uniform δ against per-stage δ schedules (an extension beyond
/// the paper's single knob): stricter early stages trade a few ops for
/// fewer confident-but-wrong O1 exits.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn policy_schedules(pair: &PreparedPair) -> Result<String, BenchError> {
    let mut out = String::from("=== Ablation: per-stage δ schedules (8-layer CDLN) ===\n\n");
    out.push_str(&format!(
        "{:<32} {:>10} {:>12} {:>10}\n",
        "schedule", "accuracy", "norm. #OPS", "FC frac."
    ));
    let schedules: [(&str, Vec<ConfidencePolicy>); 4] = [
        ("uniform δ=0.5", vec![ConfidencePolicy::sigmoid_prob(0.5)]),
        (
            "strict early (0.8, 0.4)",
            vec![
                ConfidencePolicy::sigmoid_prob(0.8),
                ConfidencePolicy::sigmoid_prob(0.4),
            ],
        ),
        (
            "lax early (0.4, 0.8)",
            vec![
                ConfidencePolicy::sigmoid_prob(0.4),
                ConfidencePolicy::sigmoid_prob(0.8),
            ],
        ),
        (
            "very strict O1 (0.95, 0.5)",
            vec![
                ConfidencePolicy::sigmoid_prob(0.95),
                ConfidencePolicy::sigmoid_prob(0.5),
            ],
        ),
    ];
    let base = pair.net_3c.cdl.baseline_ops().compute_ops() as f64;
    let n = pair.test_set.len() as f64;
    for (name, schedule) in schedules {
        let mut correct = 0usize;
        let mut ops_sum = 0.0f64;
        let mut fc = 0usize;
        for (img, &label) in pair.test_set.images.iter().zip(&pair.test_set.labels) {
            let o = pair.net_3c.cdl.classify_with_schedule(img, &schedule)?;
            correct += (o.label == label) as usize;
            ops_sum += o.ops.compute_ops() as f64;
            fc += (!o.exited_early) as usize;
        }
        out.push_str(&format!(
            "{:<32} {:>9.2}% {:>12.3} {:>9.1}%\n",
            name,
            correct as f64 / n * 100.0,
            ops_sum / n / base,
            fc as f64 / n * 100.0,
        ));
    }
    out.push_str(
        "\nshape to check: per-stage schedules trace points between the uniform-δ\n\
         extremes — a strictly-gated O1 buys accuracy at moderate extra ops.\n",
    );
    Ok(out)
}

/// Oracle upper bound: how much of the achievable savings/accuracy does the
/// real confidence policy capture?
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn oracle(pair: &PreparedPair) -> Result<String, BenchError> {
    let model = EnergyModel::cmos_45nm();
    let cdl = &pair.net_3c.cdl;
    let bound = cdl_core::calibrate::oracle_bound(cdl, &pair.test_set)?;
    let actual = evaluate(cdl, &pair.test_set, &model)?;
    let mut out = String::from("=== Analysis: oracle early-exit bound (8-layer CDLN) ===\n\n");
    out.push_str(&format!(
        "{:<26} {:>10} {:>12}\n",
        "", "accuracy", "norm. #OPS"
    ));
    out.push_str(&format!(
        "{:<26} {:>9.2}% {:>12.3}\n",
        "baseline DLN",
        actual.baseline_accuracy * 100.0,
        1.0
    ));
    out.push_str(&format!(
        "{:<26} {:>9.2}% {:>12.3}\n",
        format!("CDLN ({})", cdl.policy()),
        actual.accuracy * 100.0,
        actual.normalized_ops
    ));
    out.push_str(&format!(
        "{:<26} {:>9.2}% {:>12.3}\n",
        "oracle exit (upper bound)",
        bound.accuracy * 100.0,
        bound.normalized_ops
    ));
    out.push_str(&format!(
        "\ninputs no head nor FC classifies correctly: {:.1}%\n\
         confidence-policy gap to the oracle: {:.1}pp accuracy, {:.3} normalized ops —\n\
         the headroom a better confidence estimate (not better heads) could still claim.\n",
        bound.unclassifiable * 100.0,
        (bound.accuracy - actual.accuracy) * 100.0,
        actual.normalized_ops - bound.normalized_ops,
    ));
    Ok(out)
}

/// Sweeps the LMS training budget for the heads.
///
/// # Errors
///
/// Propagates build/evaluation errors.
pub fn head_training(pair: &PreparedPair, cfg: &ExperimentConfig) -> Result<String, BenchError> {
    let model = EnergyModel::cmos_45nm();
    let mut out = String::from("=== Ablation: head LMS training budget (8-layer CDLN) ===\n\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>12}\n",
        "LMS epochs", "accuracy", "norm. #OPS", "head-1 acc"
    ));
    for epochs in [1usize, 2, 4, 8, 14, 24] {
        let base = pair.net_3c.fresh_base()?;
        let builder_cfg = BuilderConfig {
            lms: LmsConfig {
                epochs,
                ..LmsConfig::default()
            },
            force_admit_all: true,
            ..BuilderConfig::default()
        };
        let trained = CdlBuilder::new(pair.net_3c.arch.clone(), cfg.policy()).build(
            base,
            &pair.train_set,
            &builder_cfg,
        )?;
        let report = evaluate(trained.network(), &pair.test_set, &model)?;
        out.push_str(&format!(
            "{:<12} {:>9.2}% {:>12.3} {:>11.3}\n",
            epochs,
            report.accuracy * 100.0,
            report.normalized_ops,
            trained
                .reports()
                .first()
                .map(|r| r.head_accuracy)
                .unwrap_or(0.0),
        ));
    }
    out.push_str(
        "\nshape to check: accuracy saturates after a handful of LMS epochs — the\n\
         paper's 'linear classifiers converge to the global minima in short time'.\n",
    );
    Ok(out)
}
