//! Table IV — example images of the easiest (1) and hardest (5) digits,
//! classified at each output stage of MNIST_3C.
//!
//! The paper shows one image per (digit, exit-stage) cell to visually
//! confirm that clean instances exit early while distorted ones cascade to
//! the final layer. We render the same gallery as ASCII art.

use cdl_core::batch::BatchEvaluator;
use cdl_core::network::CdlOutput;
use cdl_dataset::ascii;
use cdl_tensor::Tensor;

use crate::pipeline::{BenchError, PreparedPair};

/// Finds, for each exit stage, a test image of `digit` that the CDLN
/// classifies **correctly** at exactly that stage.
///
/// Only the test images of `digit` are classified (one batched
/// [`BatchEvaluator::classify_stream`] pass over that subset — the other
/// ~90 % of the set never costs an op, as in the old per-image scan).
fn examples_for_digit(
    pair: &PreparedPair,
    eval: &mut BatchEvaluator<'_>,
    digit: usize,
) -> Result<Vec<Option<Tensor>>, BenchError> {
    let slots = pair.net_3c.cdl.stage_count() + 1;
    let images: Vec<Tensor> = pair
        .test_set
        .images
        .iter()
        .zip(&pair.test_set.labels)
        .filter(|(_, &label)| label == digit)
        .map(|(img, _)| img.clone())
        .collect();
    let outputs: Vec<CdlOutput> = eval.classify_stream(&images)?;
    let mut found: Vec<Option<Tensor>> = vec![None; slots];
    for (img, out) in images.iter().zip(&outputs) {
        if out.label == digit && found[out.exit_stage].is_none() {
            found[out.exit_stage] = Some(img.clone());
        }
        if found.iter().all(Option::is_some) {
            break;
        }
    }
    Ok(found)
}

/// Renders the gallery for digits 1 and 5.
///
/// # Errors
///
/// Propagates classification errors.
pub fn run(pair: &PreparedPair) -> Result<String, BenchError> {
    let cdl = &pair.net_3c.cdl;
    let mut eval = BatchEvaluator::new(cdl);

    let mut out = String::from(
        "=== Table IV: images of 1 and 5 classified at different stages (MNIST_3C) ===\n",
    );
    let stage_names: Vec<String> = cdl
        .stages()
        .iter()
        .map(|s| s.name.clone())
        .chain(std::iter::once("FC".to_string()))
        .collect();
    for digit in [1usize, 5] {
        out.push_str(&format!("\n--- digit {digit} ---\n"));
        let examples = examples_for_digit(pair, &mut eval, digit)?;
        for (name, example) in stage_names.iter().zip(&examples) {
            match example {
                Some(img) => {
                    out.push_str(&format!("\nclassified at {name}:\n"));
                    out.push_str(&ascii::render(img));
                }
                None => {
                    out.push_str(&format!(
                        "\nclassified at {name}: (no correctly-classified test instance exits here)\n"
                    ));
                }
            }
        }
    }
    out.push_str(
        "\nshape to check: the early-exit examples are clean renderings; the FC\n\
         examples are rotated/cluttered/occluded — harder by eye, as in the paper.\n",
    );
    Ok(out)
}
