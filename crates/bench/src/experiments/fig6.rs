//! Fig. 6 — normalized energy benefits of the CDLNs on the 45nm hardware
//! model.
//!
//! Paper: 1.71× (MNIST_2C) and 1.84× (MNIST_3C) average energy reduction —
//! slightly below the OPS reductions because of non-compute overheads.

use cdl_hw::report::bar_chart;

use crate::experiments::fig5::Fig5;

/// Renders per-digit normalized energy from the same evaluation pass as
/// Fig. 5 (the paper derives Fig. 6 from the Fig. 5 run, so do we).
pub fn render(fig: &Fig5) -> String {
    let mut out =
        String::from("=== Fig. 6: normalized energy per digit (45nm analytical model) ===\n\n");
    for (name, paper, report) in [
        ("MNIST_2C", "1.71x", &fig.report_2c),
        ("MNIST_3C", "1.84x", &fig.report_3c),
    ] {
        out.push_str(&format!("{name}:\n"));
        let rows: Vec<(String, f64)> = report
            .digits
            .iter()
            .map(|d| (format!("digit {}", d.digit), d.normalized_energy))
            .collect();
        out.push_str(&bar_chart(&rows, 40));
        out.push_str(&format!(
            "  avg energy improvement {:.2}x (paper: {paper}); ops improvement {:.2}x → energy gap {:.2}\n",
            report.energy_improvement(),
            report.ops_improvement(),
            report.ops_improvement() - report.energy_improvement(),
        ));
        out.push_str(&format!(
            "  baseline energy {:.1} nJ/classification; CDLN average {:.1} nJ\n\n",
            report.baseline_energy_pj / 1e3,
            report.baseline_energy_pj * report.normalized_energy / 1e3,
        ));
    }
    out.push_str(
        "note: energy improvement < OPS improvement because per-stage control energy,\n\
         head weight traffic and leakage do not shrink with skipped MACs — the same\n\
         effect the paper reports (1.91x OPS vs 1.84x energy on MNIST_3C).\n",
    );
    out
}

/// Consistency check used by integration tests: energy improvement must not
/// exceed ops improvement for either network.
pub fn energy_gap_holds(fig: &Fig5) -> bool {
    let eps = 1e-9;
    fig.report_2c.energy_improvement() <= fig.report_2c.ops_improvement() + eps
        && fig.report_3c.energy_improvement() <= fig.report_3c.ops_improvement() + eps
}
