//! Fig. 9 — normalized #OPS as output stages are added one at a time
//! (8-layer net): the break-even point in the stage count.
//!
//! Paper: the fraction of inputs reaching FC drops 42 % → 5 % with two
//! stages (O1-O2-FC) and #OPS bottoms out around 0.45×; a third stage only
//! shaves the FC fraction to 3 %, which no longer pays for its own cost, so
//! #OPS rises — the break-even the Algorithm 1 gain test encodes.

use cdl_core::sweep::StagePoint;

/// Renders the OPS-vs-stage-count table from the shared Fig. 7 sweep.
pub fn render(points: &[StagePoint]) -> String {
    let mut out = String::from(
        "=== Fig. 9: normalized #OPS vs number of output stages (8-layer net) ===\n\n",
    );
    out.push_str(&format!(
        "{:<16} {:>12} {:>16}\n",
        "configuration", "norm. #OPS", "frac. reaching FC"
    ));
    for p in points {
        let label = if p.stages == 0 {
            "FC only".to_string()
        } else {
            format!("{}-FC", p.names.join("-"))
        };
        out.push_str(&format!(
            "{:<16} {:>12.3} {:>15.1}%\n",
            label,
            p.normalized_ops,
            p.fc_fraction * 100.0,
        ));
    }
    if let Some(best) = points
        .iter()
        .min_by(|a, b| a.normalized_ops.total_cmp(&b.normalized_ops))
    {
        out.push_str(&format!(
            "\nbreak-even configuration: {} stage(s), normalized #OPS {:.3} (paper: 0.45 at O1-O2-FC)\n",
            best.stages, best.normalized_ops,
        ));
    }
    out.push_str(
        "shape to check: #OPS falls steeply with the first stages, then flattens or\n\
         rises once a stage's own cost outweighs the little traffic it can still divert.\n",
    );
    out
}

/// The sweep point with minimum normalized ops (the paper's break-even).
pub fn break_even(points: &[StagePoint]) -> Option<&StagePoint> {
    points
        .iter()
        .min_by(|a, b| a.normalized_ops.total_cmp(&b.normalized_ops))
}
