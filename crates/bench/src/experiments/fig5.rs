//! Fig. 5 — normalized OPS per digit for MNIST_2C and MNIST_3C relative to
//! their baselines.
//!
//! Paper: MNIST_2C improves average OPS/input by 1.46×–1.99× (avg 1.73×),
//! MNIST_3C by 1.50×–2.32× (avg 1.91×); digit 1 benefits most, digit 5
//! least.

use cdl_core::stats::{evaluate, EvalReport};
use cdl_hw::report::bar_chart;
use cdl_hw::EnergyModel;

use crate::pipeline::{BenchError, PreparedPair};

/// Structured result of the Fig. 5 reproduction.
#[derive(Debug)]
pub struct Fig5 {
    /// MNIST_2C evaluation.
    pub report_2c: EvalReport,
    /// MNIST_3C evaluation.
    pub report_3c: EvalReport,
}

/// Runs the experiment on prepared networks.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run(pair: &PreparedPair) -> Result<Fig5, BenchError> {
    let model = EnergyModel::cmos_45nm();
    Ok(Fig5 {
        report_2c: evaluate(&pair.net_2c.cdl, &pair.test_set, &model)?,
        report_3c: evaluate(&pair.net_3c.cdl, &pair.test_set, &model)?,
    })
}

/// Renders the per-digit normalized-OPS chart and the headline averages.
pub fn render(fig: &Fig5) -> String {
    let mut out =
        String::from("=== Fig. 5: normalized #OPS per digit (CDLN / baseline DLN) ===\n\n");
    for (name, report) in [("MNIST_2C", &fig.report_2c), ("MNIST_3C", &fig.report_3c)] {
        out.push_str(&format!("{name}:\n"));
        let rows: Vec<(String, f64)> = report
            .digits
            .iter()
            .map(|d| (format!("digit {}", d.digit), d.normalized_ops))
            .collect();
        out.push_str(&bar_chart(&rows, 40));
        let improvements: Vec<f64> = report
            .digits
            .iter()
            .map(|d| 1.0 / d.normalized_ops)
            .collect();
        let best = report
            .digits
            .iter()
            .min_by(|a, b| a.normalized_ops.total_cmp(&b.normalized_ops))
            .expect("non-empty digits");
        let worst = report
            .digits
            .iter()
            .max_by(|a, b| a.normalized_ops.total_cmp(&b.normalized_ops))
            .expect("non-empty digits");
        out.push_str(&format!(
            "  avg improvement {:.2}x (paper: {})  range {:.2}x (digit {}) .. {:.2}x (digit {})\n\n",
            report.ops_improvement(),
            if name == "MNIST_2C" { "1.73x" } else { "1.91x" },
            improvements
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min),
            worst.digit,
            improvements.iter().cloned().fold(0.0, f64::max),
            best.digit,
        ));
    }
    out
}
