//! # cdl-bench
//!
//! Experiment harness regenerating **every table and figure** of the CDL
//! paper (Panda et al., DATE 2016). Each experiment is a module under
//! [`experiments`] with a matching binary, so
//!
//! ```text
//! cargo run --release -p cdl-bench --bin fig5_ops_per_digit
//! ```
//!
//! prints the reproduction of Fig. 5, and so on (see DESIGN.md §4 for the
//! full index, and `--bin run_all` for the whole evaluation in one go).
//!
//! The [`pipeline`] module holds the shared train-once logic: baselines are
//! trained and heads built through Algorithm 1, then cached on disk
//! (`target/cdl-cache/`) so individual figure binaries don't retrain.
//!
//! ## Scale knobs (environment variables)
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `CDL_TRAIN_N` | 20000 | training-set size |
//! | `CDL_TEST_N` | 4000 | test-set size |
//! | `CDL_EPOCHS` | 10 | baseline training epochs |
//! | `CDL_DELTA` | 0.5 | confidence threshold δ |
//! | `CDL_SEED` | 42 | master data/init seed |
//! | `CDL_MNIST_DIR` | — | directory with real MNIST IDX files (optional) |
//!
//! The paper's full scale is `CDL_TRAIN_N=60000 CDL_TEST_N=10000`.

pub mod experiments;
pub mod pipeline;

pub use pipeline::{classify_batch_parallel, ExperimentConfig, Prepared, PreparedPair};
