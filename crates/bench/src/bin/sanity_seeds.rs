//! Development aid: robustness of small-scale 3C training across seeds.

use cdl_core::arch;
use cdl_dataset::SyntheticMnist;
use cdl_nn::network::Network;
use cdl_nn::trainer::{evaluate, train, TrainConfig};

fn main() {
    let (train_set, test_set) = SyntheticMnist::default().generate_split(2200, 450, 77);
    use cdl_nn::loss::Loss;
    let configs = [
        (
            "mse e25 lr1.5",
            TrainConfig {
                epochs: 25,
                lr: 1.5,
                lr_decay: 0.95,
                ..TrainConfig::default()
            },
        ),
        (
            "mse e40 lr2.0",
            TrainConfig {
                epochs: 40,
                lr: 2.0,
                lr_decay: 0.97,
                ..TrainConfig::default()
            },
        ),
        (
            "ce  e8  lr0.1",
            TrainConfig {
                epochs: 8,
                lr: 0.1,
                lr_decay: 0.9,
                loss: Loss::SoftmaxCrossEntropy,
                ..TrainConfig::default()
            },
        ),
        (
            "ce  e12 lr0.05",
            TrainConfig {
                epochs: 12,
                lr: 0.05,
                lr_decay: 0.9,
                loss: Loss::SoftmaxCrossEntropy,
                ..TrainConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        for seed in [3u64, 5, 7] {
            let mut net = Network::from_spec(&arch::mnist_3c().spec, seed).unwrap();
            let t0 = std::time::Instant::now();
            train(&mut net, &train_set, &cfg).unwrap();
            let acc = evaluate(&net, &test_set).unwrap();
            print!(
                "{name} seed {seed}: {acc:.3} ({:.0}s)  ",
                t0.elapsed().as_secs_f32()
            );
        }
        println!();
    }
}
