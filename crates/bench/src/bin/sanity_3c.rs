//! Development aid: hyper-parameter exploration for the 8-layer (Table II)
//! baseline, which trains slowly under MSE+sigmoid.

use cdl_core::arch;
use cdl_dataset::SyntheticMnist;
use cdl_nn::loss::Loss;
use cdl_nn::network::Network;
use cdl_nn::trainer::{evaluate, train, TrainConfig};

fn main() {
    let gen = SyntheticMnist::default();
    let (train_set, test_set) = gen.generate_split(6000, 1000, 42);
    let arch = arch::mnist_3c();

    let configs = [
        (
            "lr1.5 m0.9 d0.9 mse e8",
            TrainConfig {
                epochs: 8,
                lr: 1.5,
                momentum: 0.9,
                lr_decay: 0.9,
                loss: Loss::Mse,
                ..TrainConfig::default()
            },
        ),
        (
            "lr3.0 m0.9 d0.9 mse e8",
            TrainConfig {
                epochs: 8,
                lr: 3.0,
                momentum: 0.9,
                lr_decay: 0.9,
                loss: Loss::Mse,
                ..TrainConfig::default()
            },
        ),
        (
            "lr0.3 m0.9 d0.9 ce e8",
            TrainConfig {
                epochs: 8,
                lr: 0.3,
                momentum: 0.9,
                lr_decay: 0.9,
                loss: Loss::SoftmaxCrossEntropy,
                ..TrainConfig::default()
            },
        ),
        (
            "lr0.1 m0.9 d0.9 ce e8",
            TrainConfig {
                epochs: 8,
                lr: 0.1,
                momentum: 0.9,
                lr_decay: 0.9,
                loss: Loss::SoftmaxCrossEntropy,
                ..TrainConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        let t0 = std::time::Instant::now();
        let mut net = Network::from_spec(&arch.spec, 7).unwrap();
        let report = train(&mut net, &train_set, &cfg).unwrap();
        let acc = evaluate(&net, &test_set).unwrap();
        println!(
            "{name}: train-acc {:.3} test-acc {acc:.4} ({:?})",
            report.epochs.last().unwrap().train_accuracy,
            t0.elapsed()
        );
    }
}
