//! Table III: accuracy of baseline DLNs vs their CDLNs.

use cdl_bench::experiments::{fig5, table3};
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pair = prepare_pair(&ExperimentConfig::from_env())?;
    print!("{}", table3::render(&fig5::run(&pair)?));
    Ok(())
}
