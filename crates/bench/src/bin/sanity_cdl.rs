//! Development aid: end-to-end CDL pipeline shape check at moderate scale.

use cdl_core::arch;
use cdl_core::builder::{BuilderConfig, CdlBuilder};
use cdl_core::confidence::ConfidencePolicy;
use cdl_core::stats::evaluate;
use cdl_dataset::SyntheticMnist;
use cdl_hw::EnergyModel;
use cdl_nn::network::Network;
use cdl_nn::trainer::{train, TrainConfig};

fn main() {
    let n_train: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    let epochs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let delta: f32 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.55);

    let gen = SyntheticMnist::default();
    let (train_set, test_set) = gen.generate_split(n_train, 2000, 42);
    for arch in [arch::mnist_2c(), arch::mnist_3c()] {
        let t0 = std::time::Instant::now();
        let mut base = Network::from_spec(&arch.spec, 7).unwrap();
        let cfg = TrainConfig {
            epochs,
            lr: 1.5,
            lr_decay: 0.9,
            ..TrainConfig::default()
        };
        let report = train(&mut base, &train_set, &cfg).unwrap();
        println!(
            "\n=== {} === baseline trained in {:?}, final train acc {:.3}",
            arch.name,
            t0.elapsed(),
            report.epochs.last().unwrap().train_accuracy
        );
        let builder = CdlBuilder::new(arch.clone(), ConfidencePolicy::sigmoid_prob(delta));
        let trained = builder
            .build(base, &train_set, &BuilderConfig::default())
            .unwrap();
        for r in trained.reports() {
            println!(
                "stage {}: feats {} head-acc {:.3} reached {} classified {} gain {:.0} admitted {}",
                r.name,
                r.features,
                r.head_accuracy,
                r.reached,
                r.classified,
                r.gain_ops_per_instance,
                r.admitted
            );
        }
        let ev = evaluate(trained.network(), &test_set, &EnergyModel::cmos_45nm()).unwrap();
        println!(
            "baseline acc {:.4}  CDLN acc {:.4}  norm-ops {:.3} ({:.2}x)  norm-energy {:.3} ({:.2}x)  FC frac {:.3}",
            ev.baseline_accuracy, ev.accuracy, ev.normalized_ops, ev.ops_improvement(),
            ev.normalized_energy, ev.energy_improvement(), ev.fc_fraction()
        );
        for d in &ev.digits {
            println!(
                "  digit {}: norm-ops {:.3} ({:.2}x) acc {:.3} fc {:.3} exits {:?}",
                d.digit,
                d.normalized_ops,
                1.0 / d.normalized_ops,
                d.accuracy,
                d.fc_fraction,
                d.exit_histogram
            );
        }
    }
}
