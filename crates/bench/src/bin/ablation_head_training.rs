//! Ablation: LMS training budget of the linear-classifier heads.

use cdl_bench::experiments::ablation;
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let cfg = ExperimentConfig::from_env();
    let pair = prepare_pair(&cfg)?;
    print!("{}", ablation::head_training(&pair, &cfg)?);
    Ok(())
}
