//! Fig. 10: efficiency vs accuracy tradeoff under the δ knob.

use cdl_bench::experiments::fig10;
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let mut pair = prepare_pair(&ExperimentConfig::from_env())?;
    print!("{}", fig10::render(&fig10::run(&mut pair)?));
    Ok(())
}
