//! Fig. 9: normalized #OPS vs stage count; the break-even point.

use cdl_bench::experiments::{fig7, fig9};
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let cfg = ExperimentConfig::from_env();
    let pair = prepare_pair(&cfg)?;
    print!("{}", fig9::render(&fig7::run(&pair, &cfg)?));
    Ok(())
}
