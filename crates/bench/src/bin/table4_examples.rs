//! Table IV: example digit images classified at each output stage.

use cdl_bench::experiments::table4;
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pair = prepare_pair(&ExperimentConfig::from_env())?;
    print!("{}", table4::run(&pair)?);
    Ok(())
}
