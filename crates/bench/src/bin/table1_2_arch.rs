//! Tables I & II: baseline DLN topologies with per-layer cost model columns.

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    print!("{}", cdl_bench::experiments::table12::run()?);
    Ok(())
}
