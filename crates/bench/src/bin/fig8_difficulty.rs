//! Fig. 8: energy benefit ordered by input difficulty (MNIST_3C).

use cdl_bench::experiments::{fig5, fig8};
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pair = prepare_pair(&ExperimentConfig::from_env())?;
    print!("{}", fig8::render(&fig5::run(&pair)?));
    Ok(())
}
