//! Fig. 6: normalized energy per digit on the 45nm hardware model.

use cdl_bench::experiments::{fig5, fig6};
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pair = prepare_pair(&ExperimentConfig::from_env())?;
    print!("{}", fig6::render(&fig5::run(&pair)?));
    Ok(())
}
