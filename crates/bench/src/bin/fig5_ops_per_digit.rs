//! Fig. 5: normalized #OPS per digit, MNIST_2C & MNIST_3C vs baseline.

use cdl_bench::experiments::fig5;
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pair = prepare_pair(&ExperimentConfig::from_env())?;
    print!("{}", fig5::render(&fig5::run(&pair)?));
    Ok(())
}
