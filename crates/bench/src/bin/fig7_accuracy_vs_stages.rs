//! Fig. 7: accuracy vs number of output layers on the 8-layer net.

use cdl_bench::experiments::fig7;
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let cfg = ExperimentConfig::from_env();
    let pair = prepare_pair(&cfg)?;
    print!("{}", fig7::render(&fig7::run(&pair, &cfg)?));
    Ok(())
}
