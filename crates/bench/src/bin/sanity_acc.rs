//! Development aid: find (epochs, δ) where the 3C CDLN accuracy exceeds the
//! baseline, as in the paper's Table III.

use cdl_core::arch;
use cdl_core::builder::{BuilderConfig, CdlBuilder};
use cdl_core::confidence::ConfidencePolicy;
use cdl_core::stats::evaluate;
use cdl_dataset::generator::SyntheticConfig;
use cdl_dataset::SyntheticMnist;
use cdl_hw::EnergyModel;
use cdl_nn::network::Network;
use cdl_nn::trainer::{train, TrainConfig};

fn main() {
    let gen = if std::env::var("EASY").is_ok() {
        SyntheticMnist::new(SyntheticConfig::easy())
    } else {
        SyntheticMnist::default()
    };
    let (train_set, test_set) = gen.generate_split(20_000, 4_000, 42);
    for epochs in [6usize, 10] {
        let mut base = Network::from_spec(&arch::mnist_3c().spec, 42).unwrap();
        let cfg = TrainConfig {
            epochs,
            lr: 1.5,
            lr_decay: 0.9,
            seed: 42 ^ 0x7EA1,
            ..TrainConfig::default()
        };
        train(&mut base, &train_set, &cfg).unwrap();
        let params = base.export_params();
        for delta in [0.5f32, 0.6, 0.7, 0.8] {
            let mut b = Network::from_spec(&arch::mnist_3c().spec, 42).unwrap();
            b.import_params(&params).unwrap();
            let trained = CdlBuilder::new(arch::mnist_3c(), ConfidencePolicy::sigmoid_prob(delta))
                .build(b, &train_set, &BuilderConfig::default())
                .unwrap();
            let ev = evaluate(trained.network(), &test_set, &EnergyModel::cmos_45nm()).unwrap();
            println!(
                "epochs {epochs} delta {delta}: baseline {:.4} cdln {:.4} ({:+.2}pp) ops {:.2}x stages {}",
                ev.baseline_accuracy,
                ev.accuracy,
                (ev.accuracy - ev.baseline_accuracy) * 100.0,
                ev.ops_improvement(),
                trained.network().stage_count(),
            );
        }
    }
}
