//! Ablation: confidence-policy comparison on the 8-layer CDLN.

use cdl_bench::experiments::ablation;
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pair = prepare_pair(&ExperimentConfig::from_env())?;
    print!("{}", ablation::confidence_policies(&pair)?);
    Ok(())
}
