//! Quick sanity check: can the Table I baseline learn the synthetic MNIST?
//! (Development aid; the real experiments live in the other binaries.)

use cdl_dataset::SyntheticMnist;
use cdl_nn::activation::Activation;
use cdl_nn::network::Network;
use cdl_nn::spec::{LayerSpec, NetworkSpec};
use cdl_nn::trainer::{evaluate, train, TrainConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let gen = SyntheticMnist::default();
    let (train_set, test_set) = gen.generate_split(6000, 1000, 42);
    println!(
        "generated {} train / {} test in {:?}",
        train_set.len(),
        test_set.len(),
        t0.elapsed()
    );

    let spec = NetworkSpec::new(
        vec![
            LayerSpec::conv(1, 6, 5, Activation::Sigmoid),
            LayerSpec::maxpool(2),
            LayerSpec::conv(6, 12, 5, Activation::Sigmoid),
            LayerSpec::maxpool(2),
            LayerSpec::flatten(),
            LayerSpec::dense(192, 10, Activation::Sigmoid),
        ],
        &[1, 28, 28],
    );
    let mut net = Network::from_spec(&spec, 7).unwrap();
    let cfg = TrainConfig::default();
    let t1 = std::time::Instant::now();
    let report = train(&mut net, &train_set, &cfg).unwrap();
    println!("trained {} epochs in {:?}", cfg.epochs, t1.elapsed());
    for e in &report.epochs {
        println!(
            "epoch {}: loss {:.4} train-acc {:.3}",
            e.epoch, e.mean_loss, e.train_accuracy
        );
    }
    let acc = evaluate(&net, &test_set).unwrap();
    println!("test accuracy: {acc:.4}");
}
