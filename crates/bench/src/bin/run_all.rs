//! Runs the full paper evaluation: Tables I–IV and Figs. 5–10 plus the two
//! ablations, printing every report and saving them under
//! `target/cdl-results/`.
//!
//! Scale via `CDL_TRAIN_N` / `CDL_TEST_N` / `CDL_EPOCHS` / `CDL_DELTA`
//! (see the crate docs); trained models are cached in `target/cdl-cache/`.

use cdl_bench::experiments::{
    ablation, fig10, fig5, fig6, fig7, fig8, fig9, save_report, table12, table3, table4,
};
use cdl_bench::pipeline::{prepare_pair, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let cfg = ExperimentConfig::from_env();
    eprintln!(
        "config: train_n={} test_n={} epochs={} delta={} seed={}",
        cfg.train_n, cfg.test_n, cfg.epochs, cfg.delta, cfg.seed
    );

    let arch_report = table12::run()?;
    println!("{arch_report}");
    save_report("table1_2_arch", &arch_report)?;

    let mut pair = prepare_pair(&cfg)?;

    let fig5_result = fig5::run(&pair)?;
    for (name, render) in [
        ("fig5_ops_per_digit", fig5::render(&fig5_result)),
        ("fig6_energy_per_digit", fig6::render(&fig5_result)),
        ("table3_accuracy", table3::render(&fig5_result)),
        ("fig8_difficulty", fig8::render(&fig5_result)),
    ] {
        println!("{render}");
        save_report(name, &render)?;
    }

    let stage_points = fig7::run(&pair, &cfg)?;
    for (name, render) in [
        ("fig7_accuracy_vs_stages", fig7::render(&stage_points)),
        ("fig9_ops_vs_stages", fig9::render(&stage_points)),
    ] {
        println!("{render}");
        save_report(name, &render)?;
    }

    let delta_points = fig10::run(&mut pair)?;
    let render = fig10::render(&delta_points);
    println!("{render}");
    save_report("fig10_delta_sweep", &render)?;

    let gallery = table4::run(&pair)?;
    println!("{gallery}");
    save_report("table4_examples", &gallery)?;

    let conf = ablation::confidence_policies(&pair)?;
    println!("{conf}");
    save_report("ablation_confidence", &conf)?;

    let sched = ablation::policy_schedules(&pair)?;
    println!("{sched}");
    save_report("ablation_schedules", &sched)?;

    let oracle = ablation::oracle(&pair)?;
    println!("{oracle}");
    save_report("analysis_oracle", &oracle)?;

    let heads = ablation::head_training(&pair, &cfg)?;
    println!("{heads}");
    save_report("ablation_head_training", &heads)?;

    // Table III also in the easy-majority regime (MNIST-like separability,
    // modestly trained baseline — the paper's accuracy-gain conditions).
    let easy_cfg = ExperimentConfig {
        profile: "easy".to_string(),
        epochs: 6,
        ..cfg.clone()
    };
    let easy_pair = prepare_pair(&easy_cfg)?;
    let easy_fig5 = fig5::run(&easy_pair)?;
    let mut easy_table = String::from("(easy-majority dataset profile, 6-epoch baselines)\n\n");
    easy_table.push_str(&table3::render(&easy_fig5));
    easy_table.push_str(&fig5::render(&easy_fig5));
    println!("{easy_table}");
    save_report("table3_accuracy_easy", &easy_table)?;

    let easy_stages = fig7::run(&easy_pair, &easy_cfg)?;
    let mut easy_stage_report =
        String::from("(easy-majority dataset profile, 6-epoch baselines)\n\n");
    easy_stage_report.push_str(&fig7::render(&easy_stages));
    easy_stage_report.push('\n');
    easy_stage_report.push_str(&fig9::render(&easy_stages));
    println!("{easy_stage_report}");
    save_report("fig7_fig9_easy", &easy_stage_report)?;

    eprintln!(
        "all reports saved under {}",
        cdl_bench::experiments::results_dir().display()
    );
    Ok(())
}
