//! The activation module: confidence measures and termination policies.
//!
//! The paper's activation module inspects the linear classifier's output and
//! terminates classification when it is confident. Its two criteria
//! (Section II):
//!
//! 1. if no class label reaches sufficient confidence — or **more than one**
//!    label does — the input is hard: pass it to the next stage;
//! 2. if *exactly one* label is sufficiently confident, terminate and emit
//!    that label.
//!
//! The confidence measure itself is left open in the paper ("class
//! probabilities or distance from the decision boundary"); this module
//! provides the three standard choices as a [`ConfidencePolicy`].

use cdl_tensor::{ops, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::CdlError;
use crate::Result;

/// What the activation module decided for one stage output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Class with the highest score.
    pub label: usize,
    /// The confidence value the policy compared against its threshold.
    pub confidence: f32,
    /// `true` → terminate at this stage; `false` → activate the next stage.
    pub exit: bool,
}

/// A termination policy for the activation module.
///
/// All policies convert raw scores to softmax probabilities first, so heads
/// may output arbitrary (even unbounded) score ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConfidencePolicy {
    /// The paper's reading: each output neuron's **sigmoid** activation is
    /// that class's confidence; terminate when *exactly one* class is
    /// confident beyond `delta`. Sigmoid confidences are per-class (they
    /// don't compete through a softmax), so δ values in the paper's 0.5–0.7
    /// range leave a meaningful fraction of inputs unresolved at early
    /// stages.
    SigmoidProb {
        /// Termination threshold δ ∈ (0, 1].
        delta: f32,
    },
    /// Softmax variant: terminate when the top softmax probability reaches
    /// `delta` **and** no second class does (with `delta > 0.5` the
    /// uniqueness condition is implied; for smaller `delta` it is checked
    /// explicitly).
    MaxProb {
        /// Termination threshold δ ∈ (0, 1].
        delta: f32,
    },
    /// Terminate when `p(top) - p(second)` reaches `margin` — the "distance
    /// from the decision boundary" reading.
    Margin {
        /// Probability-margin threshold ∈ (0, 1].
        margin: f32,
    },
    /// Terminate when the entropy of the probability vector is at most
    /// `max_nats` — a global uncertainty reading.
    Entropy {
        /// Maximum entropy (nats) considered "confident".
        max_nats: f32,
    },
}

impl ConfidencePolicy {
    /// Paper-faithful per-class sigmoid-confidence policy.
    pub fn sigmoid_prob(delta: f32) -> Self {
        ConfidencePolicy::SigmoidProb { delta }
    }

    /// Max-softmax-probability policy with threshold `delta`.
    pub fn max_prob(delta: f32) -> Self {
        ConfidencePolicy::MaxProb { delta }
    }

    /// Margin policy.
    pub fn margin(margin: f32) -> Self {
        ConfidencePolicy::Margin { margin }
    }

    /// Entropy policy.
    pub fn entropy(max_nats: f32) -> Self {
        ConfidencePolicy::Entropy { max_nats }
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] for out-of-range thresholds.
    pub fn validate(&self) -> Result<()> {
        match *self {
            ConfidencePolicy::SigmoidProb { delta } | ConfidencePolicy::MaxProb { delta } => {
                if !(0.0..=1.0).contains(&delta) || delta == 0.0 {
                    return Err(CdlError::BadPolicy(format!(
                        "confidence delta must be in (0, 1], got {delta}"
                    )));
                }
            }
            ConfidencePolicy::Margin { margin } => {
                if !(0.0..=1.0).contains(&margin) || margin == 0.0 {
                    return Err(CdlError::BadPolicy(format!(
                        "margin must be in (0, 1], got {margin}"
                    )));
                }
            }
            ConfidencePolicy::Entropy { max_nats } => {
                if !max_nats.is_finite() || max_nats < 0.0 {
                    return Err(CdlError::BadPolicy(format!(
                        "entropy bound must be finite and >= 0, got {max_nats}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Returns the policy's scalar threshold (the δ knob of Fig. 10).
    pub fn threshold(&self) -> f32 {
        match *self {
            ConfidencePolicy::SigmoidProb { delta } | ConfidencePolicy::MaxProb { delta } => delta,
            ConfidencePolicy::Margin { margin } => margin,
            ConfidencePolicy::Entropy { max_nats } => max_nats,
        }
    }

    /// Returns a copy with the threshold replaced (for δ sweeps).
    pub fn with_threshold(&self, t: f32) -> Self {
        match *self {
            ConfidencePolicy::SigmoidProb { .. } => ConfidencePolicy::SigmoidProb { delta: t },
            ConfidencePolicy::MaxProb { .. } => ConfidencePolicy::MaxProb { delta: t },
            ConfidencePolicy::Margin { .. } => ConfidencePolicy::Margin { margin: t },
            ConfidencePolicy::Entropy { .. } => ConfidencePolicy::Entropy { max_nats: t },
        }
    }

    /// Evaluates the activation module on raw head scores.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] for an empty score vector.
    pub fn decide(&self, scores: &Tensor) -> Result<Decision> {
        if scores.is_empty() {
            return Err(CdlError::BadPolicy("empty score vector".into()));
        }
        if let ConfidencePolicy::SigmoidProb { delta } = *self {
            // per-class sigmoid confidences: no normalisation across classes
            let sig = scores.map(|v| 1.0 / (1.0 + (-v).exp()));
            let label = sig.argmax().expect("non-empty scores");
            let c_top = sig.data()[label];
            let confident = sig.data().iter().filter(|&&c| c >= delta).count();
            return Ok(Decision {
                label,
                confidence: c_top,
                exit: confident == 1 && c_top >= delta,
            });
        }
        let probs = ops::softmax(scores);
        let label = probs.argmax().expect("non-empty probs");
        let p_top = probs.data()[label];
        let p_second = probs
            .data()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != label)
            .map(|(_, &p)| p)
            .fold(0.0f32, f32::max);

        let (confidence, exit) = match *self {
            ConfidencePolicy::SigmoidProb { .. } => unreachable!("handled above"),
            ConfidencePolicy::MaxProb { delta } => {
                // paper criterion: exactly one label confident beyond delta
                let unique = p_second < delta;
                (p_top, p_top >= delta && unique)
            }
            ConfidencePolicy::Margin { margin } => {
                let m = p_top - p_second;
                (m, m >= margin)
            }
            ConfidencePolicy::Entropy { max_nats } => {
                let h = ops::entropy(&probs);
                // report "confidence" as negative entropy mapped to [0,1]
                let conf = 1.0 - h / (probs.len() as f32).ln().max(f32::EPSILON);
                (conf, h <= max_nats)
            }
        };
        Ok(Decision {
            label,
            confidence,
            exit,
        })
    }
}

/// Per-request overrides of the network's termination behaviour — the
/// runtime-adjustable knobs of the paper's Fig. 10 accuracy/energy
/// trade-off, applicable to a single classification without touching the
/// network's configured [`ConfidencePolicy`].
///
/// * `delta` replaces the policy's scalar threshold (via
///   [`ConfidencePolicy::with_threshold`]): a lax δ exits earlier and
///   spends less energy, a strict δ cascades deeper for accuracy.
/// * `max_stage` caps the cascade: an input that reaches conditional stage
///   `max_stage` (0-based) terminates there **unconditionally**, with that
///   stage's head decision, regardless of confidence — an anytime-inference
///   bound on per-request cost. Values `>= stage_count()` have no effect
///   (the final layer stays reachable).
///
/// The default (`ExitOverride::NONE`) changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExitOverride {
    /// Replacement threshold for the policy's δ knob (`None` = keep the
    /// network's configured threshold).
    pub delta: Option<f32>,
    /// Deepest conditional stage this input may cascade to (`None` = no
    /// cap). Reaching this stage forces termination there.
    pub max_stage: Option<usize>,
}

impl ExitOverride {
    /// The no-op override: configured policy, uncapped cascade.
    pub const NONE: ExitOverride = ExitOverride {
        delta: None,
        max_stage: None,
    };

    /// Overrides only the threshold δ.
    pub fn with_delta(delta: f32) -> Self {
        ExitOverride {
            delta: Some(delta),
            max_stage: None,
        }
    }

    /// Caps only the cascade depth.
    pub fn with_max_stage(max_stage: usize) -> Self {
        ExitOverride {
            delta: None,
            max_stage: Some(max_stage),
        }
    }

    /// `true` when this override changes nothing.
    pub fn is_none(&self) -> bool {
        self.delta.is_none() && self.max_stage.is_none()
    }

    /// The policy actually gating a request: `base` with this override's
    /// δ substituted (when set).
    pub fn effective_policy(&self, base: ConfidencePolicy) -> ConfidencePolicy {
        match self.delta {
            Some(d) => base.with_threshold(d),
            None => base,
        }
    }

    /// Validates the override against the policy it would modify.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] when the substituted δ is out of
    /// range for `base`'s policy type.
    pub fn validate_for(&self, base: ConfidencePolicy) -> Result<()> {
        self.effective_policy(base).validate()
    }
}

impl std::fmt::Display for ExitOverride {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.delta, self.max_stage) {
            (None, None) => write!(f, "default"),
            (Some(d), None) => write!(f, "δ={d}"),
            (None, Some(s)) => write!(f, "max_stage={s}"),
            (Some(d), Some(s)) => write!(f, "δ={d}, max_stage={s}"),
        }
    }
}

impl std::fmt::Display for ConfidencePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfidencePolicy::SigmoidProb { delta } => write!(f, "sigmoid-prob(δ={delta})"),
            ConfidencePolicy::MaxProb { delta } => write!(f, "max-prob(δ={delta})"),
            ConfidencePolicy::Margin { margin } => write!(f, "margin(δ={margin})"),
            ConfidencePolicy::Entropy { max_nats } => write!(f, "entropy(≤{max_nats} nats)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    #[test]
    fn confident_single_label_exits() {
        let p = ConfidencePolicy::max_prob(0.6);
        let d = p.decide(&scores(vec![8.0, 0.0, 0.0, 0.0])).unwrap();
        assert!(d.exit);
        assert_eq!(d.label, 0);
        assert!(d.confidence > 0.9);
    }

    #[test]
    fn unconfident_passes_to_next_stage() {
        let p = ConfidencePolicy::max_prob(0.6);
        let d = p.decide(&scores(vec![0.1, 0.0, 0.05, 0.08])).unwrap();
        assert!(!d.exit);
    }

    #[test]
    fn two_confident_labels_pass_even_at_low_delta() {
        // the paper's second criterion: multiple labels above threshold ⇒ hard
        let p = ConfidencePolicy::max_prob(0.4);
        // two nearly equal top classes: both ~0.48
        let d = p.decide(&scores(vec![5.0, 4.9, -5.0, -5.0])).unwrap();
        assert!(
            !d.exit,
            "confidence {} should not exit when two labels exceed delta",
            d.confidence
        );
    }

    #[test]
    fn margin_policy_measures_gap() {
        let p = ConfidencePolicy::margin(0.3);
        let close = p.decide(&scores(vec![2.0, 1.9, -3.0])).unwrap();
        assert!(!close.exit);
        let far = p.decide(&scores(vec![5.0, 0.0, -3.0])).unwrap();
        assert!(far.exit);
        assert!(far.confidence > close.confidence);
    }

    #[test]
    fn entropy_policy() {
        let p = ConfidencePolicy::entropy(0.3);
        let peaked = p.decide(&scores(vec![10.0, 0.0, 0.0])).unwrap();
        assert!(peaked.exit);
        let flat = p.decide(&scores(vec![0.0, 0.0, 0.0])).unwrap();
        assert!(!flat.exit);
        assert!(flat.confidence < peaked.confidence);
    }

    #[test]
    fn higher_delta_is_stricter() {
        // paper Fig. 4: raising the activation value keeps more inputs in
        // the cascade
        let s = scores(vec![2.0, 0.5, 0.0, -1.0]);
        let lenient = ConfidencePolicy::max_prob(0.5).decide(&s).unwrap();
        let strict = ConfidencePolicy::max_prob(0.95).decide(&s).unwrap();
        assert!(lenient.exit);
        assert!(!strict.exit);
    }

    #[test]
    fn validation() {
        assert!(ConfidencePolicy::max_prob(0.5).validate().is_ok());
        assert!(ConfidencePolicy::max_prob(0.0).validate().is_err());
        assert!(ConfidencePolicy::max_prob(1.5).validate().is_err());
        assert!(ConfidencePolicy::margin(-0.1).validate().is_err());
        assert!(ConfidencePolicy::entropy(f32::NAN).validate().is_err());
        assert!(ConfidencePolicy::entropy(0.5).validate().is_ok());
    }

    #[test]
    fn threshold_round_trip() {
        let p = ConfidencePolicy::max_prob(0.5);
        let q = p.with_threshold(0.8);
        assert_eq!(q.threshold(), 0.8);
        assert!(matches!(q, ConfidencePolicy::MaxProb { .. }));
        let m = ConfidencePolicy::margin(0.2).with_threshold(0.4);
        assert!(matches!(m, ConfidencePolicy::Margin { margin } if margin == 0.4));
    }

    #[test]
    fn empty_scores_rejected() {
        assert!(ConfidencePolicy::max_prob(0.5)
            .decide(&Tensor::default())
            .is_err());
    }

    #[test]
    fn display_mentions_delta() {
        assert!(ConfidencePolicy::max_prob(0.5).to_string().contains("0.5"));
    }
}
