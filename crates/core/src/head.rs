//! Linear classifier heads — the "cascade of linear networks" added at each
//! convolutional layer.
//!
//! A head is a single dense layer (`features → classes`) trained with the
//! **least-mean-square (delta) rule** on sigmoid outputs, exactly the "linear
//! network of output neurons … trained with the target labels using the
//! least mean square rule" of the paper's Algorithm 1. Being tiny, heads
//! converge in a couple of passes over their stage's feature vectors.

use cdl_nn::activation::Activation;
use cdl_nn::loss::one_hot;
use cdl_tensor::{gemm::GemmKernel, init::Init, ops, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::CdlError;
use crate::Result;

/// Training hyper-parameters for the LMS rule.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LmsConfig {
    /// Passes over the stage's feature set.
    pub epochs: usize,
    /// LMS learning rate.
    pub lr: f32,
    /// Learning-rate multiplier per epoch.
    pub lr_decay: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LmsConfig {
    fn default() -> Self {
        LmsConfig {
            epochs: 14,
            lr: 0.25,
            lr_decay: 0.85,
            seed: 0x1C,
        }
    }
}

/// A linear classifier head: `scores = W·x + b`, prediction through sigmoid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearClassifier {
    weight: Tensor, // [classes, features]
    bias: Tensor,   // [classes]
}

impl LinearClassifier {
    /// Creates a head with small random weights.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadStage`] when either dimension is zero.
    pub fn new(features: usize, classes: usize, seed: u64) -> Result<Self> {
        if features == 0 || classes == 0 {
            return Err(CdlError::BadStage(format!(
                "linear classifier dims must be non-zero: features={features} classes={classes}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(LinearClassifier {
            weight: Init::LecunUniform.build(&[classes, features], features, classes, &mut rng),
            bias: Tensor::zeros(&[classes]),
        })
    }

    /// Input feature count.
    pub fn features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Output class count.
    pub fn classes(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Raw affine scores for a feature vector (any rank; flattened).
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadStage`] on fan-in mismatch.
    pub fn scores(&self, features: &Tensor) -> Result<Tensor> {
        if features.len() != self.features() {
            return Err(CdlError::BadStage(format!(
                "head expects {} features, got {}",
                self.features(),
                features.len()
            )));
        }
        let flat = if features.rank() == 1 {
            features.clone()
        } else {
            features.flatten()
        };
        let mut y = ops::matvec(&self.weight, &flat)?;
        for (o, b) in y.data_mut().iter_mut().zip(self.bias.data()) {
            *o += b;
        }
        Ok(y)
    }

    /// Raw affine scores for a whole batch of feature tensors, written into
    /// a preallocated buffer (`out` becomes `[batch, classes]` row-major)
    /// by the chosen GEMM microkernel.
    ///
    /// Bit-identical to calling [`LinearClassifier::scores`] per element
    /// for **every** [`GemmKernel`] — each kernel accumulates per element
    /// in the same order (see `cdl_tensor::gemm`) — while performing no
    /// allocation beyond growing `out` on first use.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadStage`] on any fan-in mismatch.
    pub fn scores_batch_into(
        &self,
        features: &[Tensor],
        out: &mut Vec<f32>,
        kernel: GemmKernel,
    ) -> Result<()> {
        for f in features {
            if f.len() != self.features() {
                return Err(CdlError::BadStage(format!(
                    "head expects {} features, got {}",
                    self.features(),
                    f.len()
                )));
            }
        }
        // row-major tensors: the raw buffer is the flattened feature vector
        let rows: Vec<&[f32]> = features.iter().map(Tensor::data).collect();
        // grow-only resize — every element is overwritten by the affine pass
        out.resize(features.len() * self.classes(), 0.0);
        ops::affine_rows_into(&rows, &self.weight, self.bias.data(), out, kernel)?;
        Ok(())
    }

    /// Sigmoid outputs (the paper's output-neuron activations).
    ///
    /// # Errors
    ///
    /// Same as [`LinearClassifier::scores`].
    pub fn outputs(&self, features: &Tensor) -> Result<Tensor> {
        Ok(self.scores(features)?.map(|v| Activation::Sigmoid.apply(v)))
    }

    /// Predicted label.
    ///
    /// # Errors
    ///
    /// Same as [`LinearClassifier::scores`].
    pub fn predict(&self, features: &Tensor) -> Result<usize> {
        Ok(self
            .scores(features)?
            .argmax()
            .expect("classes >= 1 by construction"))
    }

    /// One LMS (delta-rule) update on a single sample:
    /// `W += lr · (t − σ(Wx+b)) σ'(·) xᵀ`.
    ///
    /// # Errors
    ///
    /// Propagates score errors; rejects out-of-range labels.
    pub fn lms_update(&mut self, features: &Tensor, label: usize, lr: f32) -> Result<f32> {
        let target = one_hot(label, self.classes()).map_err(CdlError::Nn)?;
        let out = self.outputs(features)?;
        let flat = if features.rank() == 1 {
            features.clone()
        } else {
            features.flatten()
        };
        // delta_j = (t_j - y_j) * y_j (1 - y_j)
        let mut err = 0.0f32;
        let classes = self.classes();
        let feats = self.features();
        for j in 0..classes {
            let y = out.data()[j];
            let e = target.data()[j] - y;
            err += e * e;
            let delta = lr * e * Activation::Sigmoid.derivative_from_output(y);
            if delta == 0.0 {
                continue;
            }
            let row = &mut self.weight.data_mut()[j * feats..(j + 1) * feats];
            for (w, &x) in row.iter_mut().zip(flat.data()) {
                *w += delta * x;
            }
            self.bias.data_mut()[j] += delta;
        }
        Ok(err / classes as f32)
    }

    /// Trains the head on a feature/label set with the LMS rule.
    ///
    /// Returns the mean squared error of the final epoch.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadDataset`] for an empty or misaligned set.
    pub fn train_lms(
        &mut self,
        features: &[Tensor],
        labels: &[usize],
        cfg: &LmsConfig,
    ) -> Result<f32> {
        if features.is_empty() {
            return Err(CdlError::BadDataset("no features to train head on".into()));
        }
        if features.len() != labels.len() {
            return Err(CdlError::BadDataset(format!(
                "{} feature vectors vs {} labels",
                features.len(),
                labels.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut lr = cfg.lr;
        let mut last_mse = f32::INFINITY;
        for _ in 0..cfg.epochs.max(1) {
            order.shuffle(&mut rng);
            let mut mse_sum = 0.0f64;
            for &i in &order {
                mse_sum += self.lms_update(&features[i], labels[i], lr)? as f64;
            }
            last_mse = (mse_sum / features.len() as f64) as f32;
            lr *= cfg.lr_decay;
        }
        Ok(last_mse)
    }

    /// Accuracy of the head on a feature/label set.
    ///
    /// # Errors
    ///
    /// Propagates score errors.
    pub fn accuracy(&self, features: &[Tensor], labels: &[usize]) -> Result<f64> {
        if features.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for (f, &l) in features.iter().zip(labels) {
            if self.predict(f)? == l {
                correct += 1;
            }
        }
        Ok(correct as f64 / features.len() as f64)
    }

    /// MAC count of one head evaluation (the Eq. 1 "additional cost").
    pub fn mac_count(&self) -> u64 {
        (self.features() * self.classes()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Gaussian blobs: class c centred at unit vector e_c * 2.
    fn blobs(
        n: usize,
        classes: usize,
        dim: usize,
        spread: f32,
        seed: u64,
    ) -> (Vec<Tensor>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let c = rng.random_range(0..classes);
            let v: Vec<f32> = (0..dim)
                .map(|d| {
                    let centre = if d == c { 2.0 } else { 0.0 };
                    centre + rng.random_range(-spread..spread)
                })
                .collect();
            xs.push(Tensor::from_vec(v, &[dim]).unwrap());
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn construction_validates() {
        assert!(LinearClassifier::new(0, 10, 1).is_err());
        assert!(LinearClassifier::new(10, 0, 1).is_err());
        let h = LinearClassifier::new(864, 10, 1).unwrap();
        assert_eq!(h.features(), 864);
        assert_eq!(h.classes(), 10);
        assert_eq!(h.mac_count(), 8640);
    }

    #[test]
    fn lms_learns_separable_blobs() {
        let (xs, ys) = blobs(300, 4, 8, 0.4, 3);
        let mut h = LinearClassifier::new(8, 4, 5).unwrap();
        let before = h.accuracy(&xs, &ys).unwrap();
        let mse = h.train_lms(&xs, &ys, &LmsConfig::default()).unwrap();
        let after = h.accuracy(&xs, &ys).unwrap();
        assert!(after > 0.95, "accuracy {before} -> {after}, mse {mse}");
        assert!(after > before);
    }

    #[test]
    fn lms_mse_decreases_over_training() {
        let (xs, ys) = blobs(200, 3, 6, 0.5, 9);
        let mut h1 = LinearClassifier::new(6, 3, 5).unwrap();
        let short = h1
            .train_lms(
                &xs,
                &ys,
                &LmsConfig {
                    epochs: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut h2 = LinearClassifier::new(6, 3, 5).unwrap();
        let long = h2
            .train_lms(
                &xs,
                &ys,
                &LmsConfig {
                    epochs: 10,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(long < short, "mse should fall: {short} -> {long}");
    }

    #[test]
    fn scores_validate_fan_in() {
        let h = LinearClassifier::new(8, 4, 1).unwrap();
        assert!(h.scores(&Tensor::zeros(&[7])).is_err());
        assert!(h.scores(&Tensor::zeros(&[8])).is_ok());
        // multi-rank features are flattened
        assert!(h.scores(&Tensor::zeros(&[2, 2, 2])).is_ok());
    }

    #[test]
    fn train_validates_dataset() {
        let mut h = LinearClassifier::new(4, 2, 1).unwrap();
        assert!(h.train_lms(&[], &[], &LmsConfig::default()).is_err());
        assert!(h
            .train_lms(&[Tensor::zeros(&[4])], &[0, 1], &LmsConfig::default())
            .is_err());
    }

    #[test]
    fn lms_update_rejects_bad_label() {
        let mut h = LinearClassifier::new(4, 2, 1).unwrap();
        assert!(h.lms_update(&Tensor::zeros(&[4]), 2, 0.1).is_err());
    }

    #[test]
    fn outputs_are_probability_like() {
        let h = LinearClassifier::new(4, 3, 2).unwrap();
        let out = h.outputs(&Tensor::ones(&[4])).unwrap();
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_training() {
        let (xs, ys) = blobs(100, 2, 4, 0.3, 1);
        let mut a = LinearClassifier::new(4, 2, 9).unwrap();
        let mut b = LinearClassifier::new(4, 2, 9).unwrap();
        a.train_lms(&xs, &ys, &LmsConfig::default()).unwrap();
        b.train_lms(&xs, &ys, &LmsConfig::default()).unwrap();
        assert_eq!(a.scores(&xs[0]).unwrap(), b.scores(&xs[0]).unwrap());
    }

    #[test]
    fn accuracy_on_empty_is_zero() {
        let h = LinearClassifier::new(4, 2, 1).unwrap();
        assert_eq!(h.accuracy(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let h = LinearClassifier::new(6, 3, 4).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: LinearClassifier = serde_json::from_str(&json).unwrap();
        let x = Tensor::ones(&[6]);
        assert_eq!(h.scores(&x).unwrap(), back.scores(&x).unwrap());
    }
}
