//! Threshold calibration and oracle analysis.
//!
//! The paper leaves δ as a user knob ("adjusted during runtime to achieve
//! the best tradeoff"). This module automates the choice:
//!
//! * [`calibrate_delta`] — given a labelled *validation* set and an accuracy
//!   budget (maximum accuracy the deployment may give up relative to the
//!   baseline), sweep δ and return the cheapest setting that stays within
//!   budget;
//! * [`oracle_bound`] — the savings upper bound: an omniscient activation
//!   module that exits at the first stage whose head is *correct*. Real
//!   policies can't beat this; the gap to it measures how much the
//!   confidence estimate (rather than the heads) is leaving on the table.

use cdl_nn::trainer::LabelledSet;
use serde::{Deserialize, Serialize};

use crate::error::CdlError;
use crate::network::CdlNetwork;
use crate::Result;

/// Outcome of a δ calibration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// The chosen threshold.
    pub delta: f32,
    /// Validation accuracy at the chosen δ.
    pub accuracy: f64,
    /// Mean ops per input normalised by the baseline, at the chosen δ.
    pub normalized_ops: f64,
    /// Baseline accuracy on the validation set (the budget's reference).
    pub baseline_accuracy: f64,
}

/// Picks the cheapest δ on `grid` whose validation accuracy is at least
/// `baseline accuracy − max_accuracy_drop`. Falls back to the most accurate
/// grid point when no point satisfies the budget.
///
/// # Errors
///
/// Returns [`CdlError::BadDataset`] for an empty set or grid, and
/// propagates evaluation errors.
pub fn calibrate_delta(
    cdl: &CdlNetwork,
    validation: &LabelledSet,
    grid: &[f32],
    max_accuracy_drop: f64,
) -> Result<Calibration> {
    if validation.is_empty() {
        return Err(CdlError::BadDataset("empty validation set".into()));
    }
    if grid.is_empty() {
        return Err(CdlError::BadDataset("empty delta grid".into()));
    }
    let n = validation.len() as f64;
    let base_ops = cdl.baseline_ops().compute_ops() as f64;
    let mut baseline_correct = 0usize;
    for (img, &label) in validation.images.iter().zip(&validation.labels) {
        let (pred, _) = cdl.classify_baseline(img)?;
        baseline_correct += (pred == label) as usize;
    }
    let baseline_accuracy = baseline_correct as f64 / n;
    let budget = baseline_accuracy - max_accuracy_drop;

    let mut candidates = Vec::with_capacity(grid.len());
    for &delta in grid {
        let policy = cdl.policy().with_threshold(delta);
        policy.validate()?;
        let mut correct = 0usize;
        let mut ops_sum = 0.0f64;
        for (img, &label) in validation.images.iter().zip(&validation.labels) {
            let out = cdl.classify_with_policy(img, policy)?;
            correct += (out.label == label) as usize;
            ops_sum += out.ops.compute_ops() as f64;
        }
        candidates.push(Calibration {
            delta,
            accuracy: correct as f64 / n,
            normalized_ops: ops_sum / n / base_ops,
            baseline_accuracy,
        });
    }
    let within_budget = candidates
        .iter()
        .filter(|c| c.accuracy >= budget)
        .min_by(|a, b| a.normalized_ops.total_cmp(&b.normalized_ops))
        .cloned();
    Ok(within_budget.unwrap_or_else(|| {
        candidates
            .into_iter()
            .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
            .expect("grid is non-empty")
    }))
}

/// Upper bound on the CDLN's savings/accuracy with an omniscient activation
/// module.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OracleBound {
    /// Accuracy achievable when every input exits at the first stage (or
    /// final layer) that classifies it correctly.
    pub accuracy: f64,
    /// Mean ops per input under the oracle, normalised by the baseline.
    pub normalized_ops: f64,
    /// Fraction of inputs no stage nor the final layer classifies correctly.
    pub unclassifiable: f64,
}

/// Computes the oracle early-exit bound on a labelled set.
///
/// # Errors
///
/// Returns [`CdlError::BadDataset`] for an empty set; propagates evaluation
/// errors.
pub fn oracle_bound(cdl: &CdlNetwork, set: &LabelledSet) -> Result<OracleBound> {
    if set.is_empty() {
        return Err(CdlError::BadDataset("empty evaluation set".into()));
    }
    let mut correct = 0usize;
    let mut unclassifiable = 0usize;
    let mut ops_sum = 0.0f64;
    let worst = cdl.worst_case_ops().compute_ops() as f64;
    for (img, &label) in set.images.iter().zip(&set.labels) {
        // walk the stages manually, stopping at the first correct head
        let mut cur = img.clone();
        let mut prev: Option<usize> = None;
        let mut ops = 0.0f64;
        let mut exited = false;
        for stage in cdl.stages() {
            cur = match prev {
                None => cdl
                    .base()
                    .forward_prefix(&cur, stage.tap_runtime)
                    .map_err(CdlError::Nn)?,
                Some(p) => cdl
                    .base()
                    .forward_between(&cur, p, stage.tap_runtime)
                    .map_err(CdlError::Nn)?,
            };
            ops += (stage.ops_from_prev + stage.head_ops).compute_ops() as f64;
            if stage.head.predict(&cur)? == label {
                correct += 1;
                exited = true;
                break;
            }
            prev = Some(stage.tap_runtime);
        }
        if !exited {
            // run to the end; the oracle pays the full cascade
            ops = worst;
            let (pred, _) = cdl.classify_baseline(img)?;
            if pred == label {
                correct += 1;
            } else {
                unclassifiable += 1;
            }
        }
        ops_sum += ops;
    }
    let n = set.len() as f64;
    Ok(OracleBound {
        accuracy: correct as f64 / n,
        normalized_ops: ops_sum / n / cdl.baseline_ops().compute_ops() as f64,
        unclassifiable: unclassifiable as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_3c;
    use crate::builder::{BuilderConfig, CdlBuilder};
    use crate::confidence::ConfidencePolicy;
    use cdl_dataset::SyntheticMnist;
    use cdl_nn::network::Network;
    use cdl_nn::trainer::{train, TrainConfig};
    use std::sync::OnceLock;

    fn fixture() -> &'static (CdlNetwork, LabelledSet) {
        static FIX: OnceLock<(CdlNetwork, LabelledSet)> = OnceLock::new();
        FIX.get_or_init(|| {
            let (train_set, test_set) = SyntheticMnist::default().generate_split(2200, 400, 55);
            let arch = mnist_3c();
            let mut base = Network::from_spec(&arch.spec, 5).unwrap();
            train(
                &mut base,
                &train_set,
                &TrainConfig {
                    epochs: 25,
                    lr: 1.5,
                    lr_decay: 0.95,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
            let cdl = CdlBuilder::new(arch, ConfidencePolicy::sigmoid_prob(0.5))
                .build(
                    base,
                    &train_set,
                    &BuilderConfig {
                        force_admit_all: true,
                        ..BuilderConfig::default()
                    },
                )
                .unwrap()
                .into_network();
            (cdl, test_set)
        })
    }

    #[test]
    fn calibration_respects_budget() {
        let (cdl, val) = fixture();
        let grid = [0.2f32, 0.35, 0.5, 0.65, 0.8];
        // generous budget: any accuracy is fine → must pick the cheapest
        let lax = calibrate_delta(cdl, val, &grid, 1.0).unwrap();
        let all: Vec<Calibration> = grid
            .iter()
            .map(|&d| {
                let policy = cdl.policy().with_threshold(d);
                let mut ops_sum = 0.0;
                let mut correct = 0usize;
                for (img, &label) in val.images.iter().zip(&val.labels) {
                    let o = cdl.classify_with_policy(img, policy).unwrap();
                    ops_sum += o.ops.compute_ops() as f64;
                    correct += (o.label == label) as usize;
                }
                Calibration {
                    delta: d,
                    accuracy: correct as f64 / val.len() as f64,
                    normalized_ops: ops_sum
                        / val.len() as f64
                        / cdl.baseline_ops().compute_ops() as f64,
                    baseline_accuracy: 0.0,
                }
            })
            .collect();
        let cheapest = all
            .iter()
            .min_by(|a, b| a.normalized_ops.total_cmp(&b.normalized_ops))
            .unwrap();
        assert_eq!(lax.delta, cheapest.delta);

        // zero budget: must choose an accuracy >= every cheaper point's
        let strict = calibrate_delta(cdl, val, &grid, 0.0).unwrap();
        assert!(strict.accuracy >= lax.accuracy - 1e-12);
    }

    #[test]
    fn calibration_validates_inputs() {
        let (cdl, val) = fixture();
        assert!(calibrate_delta(cdl, &LabelledSet::default(), &[0.5], 0.0).is_err());
        assert!(calibrate_delta(cdl, val, &[], 0.0).is_err());
    }

    #[test]
    fn oracle_dominates_any_policy() {
        let (cdl, test) = fixture();
        let oracle = oracle_bound(cdl, test).unwrap();
        // the oracle's accuracy upper-bounds the real policy's
        let report = crate::stats::evaluate(cdl, test, &cdl_hw::EnergyModel::cmos_45nm()).unwrap();
        assert!(
            oracle.accuracy >= report.accuracy - 1e-12,
            "oracle {} vs policy {}",
            oracle.accuracy,
            report.accuracy
        );
        // and its cost lower-bounds what a correct-exit policy could pay
        assert!(oracle.normalized_ops > 0.0);
        assert!(oracle.normalized_ops <= report.normalized_ops + 1e-9);
        assert!((0.0..=1.0).contains(&oracle.unclassifiable));
    }

    #[test]
    fn oracle_rejects_empty() {
        let (cdl, _) = fixture();
        assert!(oracle_bound(cdl, &LabelledSet::default()).is_err());
    }
}
