//! The Conditional Deep Learning Network — Algorithm 2 (testing).

use cdl_hw::OpCount;
use cdl_nn::network::Network;
use cdl_tensor::Tensor;

use crate::confidence::{ConfidencePolicy, ExitOverride};
use crate::error::CdlError;
use crate::head::LinearClassifier;
use crate::Result;

/// One conditional stage: a tap into the baseline network plus its linear
/// classifier.
#[derive(Debug)]
pub struct CdlStage {
    /// Paper-style stage name (`"O1"`, `"O2"`, …).
    pub name: String,
    /// Runtime-layer index (in the baseline network) whose output this
    /// stage taps.
    pub tap_runtime: usize,
    /// The stage's linear classifier.
    pub head: LinearClassifier,
    /// Baseline ops executed to get from the previous tap (exclusive) to
    /// this tap (inclusive).
    pub ops_from_prev: OpCount,
    /// Ops of one head evaluation.
    pub head_ops: OpCount,
}

/// Result of classifying one input with the CDLN.
#[derive(Debug, Clone, PartialEq)]
pub struct CdlOutput {
    /// Predicted class label.
    pub label: usize,
    /// Stage index where classification terminated: `0..stage_count()` for
    /// a linear-classifier exit, `stage_count()` for the final (FC) output.
    pub exit_stage: usize,
    /// Confidence reported by the deciding stage (softmax max-probability of
    /// the final output when no stage exited).
    pub confidence: f32,
    /// Operations actually executed for this input (baseline slices + all
    /// evaluated heads).
    pub ops: OpCount,
    /// Number of hardware stages activated (baseline segments + final),
    /// used for the per-stage control-energy charge.
    pub stages_activated: u64,
    /// `true` when a linear classifier terminated classification before the
    /// final output layer.
    pub exited_early: bool,
}

/// A trained baseline network with conditional stages — the CDLN.
///
/// Constructed by [`crate::builder::CdlBuilder`] (Algorithm 1) or directly
/// via [`CdlNetwork::assemble`] when the heads are already trained.
/// [`CdlNetwork::classify`] implements the paper's Algorithm 2.
#[derive(Debug)]
pub struct CdlNetwork {
    base: Network,
    stages: Vec<CdlStage>,
    policy: ConfidencePolicy,
    /// Ops from the last tap (exclusive) through the final layer.
    final_ops: OpCount,
    /// Ops of one full baseline forward pass (no heads).
    baseline_ops: OpCount,
}

impl CdlNetwork {
    /// Assembles a CDLN from a trained baseline and trained stage heads.
    ///
    /// `stages` pairs each tap's *spec-layer* index with its name and head;
    /// taps must be strictly increasing and leave at least one deeper layer.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadStage`] for inconsistent taps or head fan-ins,
    /// [`CdlError::BadPolicy`] for an invalid policy.
    pub fn assemble(
        base: Network,
        stages: Vec<(usize, String, LinearClassifier)>,
        policy: ConfidencePolicy,
    ) -> Result<Self> {
        policy.validate()?;
        let per_layer = base.op_counts().map_err(CdlError::Nn)?;
        let baseline_ops: OpCount = per_layer.iter().copied().sum();
        let shape_chain = base.spec().shape_chain().map_err(CdlError::Nn)?;

        let mut built = Vec::with_capacity(stages.len());
        let mut prev_runtime: Option<usize> = None;
        let mut prev_spec: Option<usize> = None;
        for (spec_idx, name, head) in stages {
            if spec_idx + 1 >= base.spec().layers.len() {
                return Err(CdlError::BadStage(format!(
                    "stage {name}: tap at spec layer {spec_idx} leaves nothing to gate"
                )));
            }
            if let Some(p) = prev_spec {
                if spec_idx <= p {
                    return Err(CdlError::BadStage(format!(
                        "stage {name}: tap {spec_idx} not after previous tap {p}"
                    )));
                }
            }
            let features: usize = shape_chain[spec_idx].iter().product();
            if head.features() != features {
                return Err(CdlError::BadStage(format!(
                    "stage {name}: head expects {} features but tap provides {features}",
                    head.features()
                )));
            }
            let tap_runtime = base.runtime_index_of(spec_idx).map_err(CdlError::Nn)?;
            let seg_start = prev_runtime.map_or(0, |p| p + 1);
            let ops_from_prev: OpCount = per_layer[seg_start..=tap_runtime].iter().copied().sum();
            let head_ops = head_op_count(&head);
            built.push(CdlStage {
                name,
                tap_runtime,
                head,
                ops_from_prev,
                head_ops,
            });
            prev_runtime = Some(tap_runtime);
            prev_spec = Some(spec_idx);
        }
        let final_start = prev_runtime.map_or(0, |p| p + 1);
        let final_ops: OpCount = per_layer[final_start..].iter().copied().sum();
        Ok(CdlNetwork {
            base,
            stages: built,
            policy,
            final_ops,
            baseline_ops,
        })
    }

    /// The wrapped baseline network.
    pub fn base(&self) -> &Network {
        &self.base
    }

    /// The conditional stages in order.
    pub fn stages(&self) -> &[CdlStage] {
        &self.stages
    }

    /// Number of conditional stages (exit points before the final layer).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The active termination policy.
    pub fn policy(&self) -> ConfidencePolicy {
        self.policy
    }

    /// Replaces the termination policy (the paper's runtime-adjustable δ).
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] for invalid parameters.
    pub fn set_policy(&mut self, policy: ConfidencePolicy) -> Result<()> {
        policy.validate()?;
        self.policy = policy;
        Ok(())
    }

    /// Ops of one full baseline forward pass (the paper's normalisation
    /// denominator).
    pub fn baseline_ops(&self) -> OpCount {
        self.baseline_ops
    }

    /// Ops from the last tap (exclusive) through the final layer — the cost
    /// an input pays after passing every gate (used by the batched
    /// evaluator's op accounting).
    pub fn final_ops(&self) -> OpCount {
        self.final_ops
    }

    /// Worst-case CDLN ops (all stages evaluated, no exit): baseline plus
    /// every head.
    pub fn worst_case_ops(&self) -> OpCount {
        let heads: OpCount = self.stages.iter().map(|s| s.head_ops).sum();
        self.baseline_ops + heads
    }

    /// Classifies an input with the configured policy (Algorithm 2).
    ///
    /// # Errors
    ///
    /// Propagates layer/head evaluation errors.
    pub fn classify(&self, x: &Tensor) -> Result<CdlOutput> {
        self.classify_with_policy(x, self.policy)
    }

    /// Classifies with per-request [`ExitOverride`]s applied to the
    /// configured policy — the reference semantics of the serving layer's
    /// per-request δ/`max_stage` knobs (the batched and sharded paths are
    /// pinned bit-identical to this).
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] when the overridden δ is out of
    /// range; propagates layer/head evaluation errors.
    pub fn classify_with_override(&self, x: &Tensor, ovr: ExitOverride) -> Result<CdlOutput> {
        let policy = ovr.effective_policy(self.policy);
        policy.validate()?;
        self.classify_impl_capped(x, |_| policy, ovr.max_stage)
    }

    /// Classifies with a **per-stage policy schedule** — an extension beyond
    /// the paper's single global δ: early stages can be given stricter
    /// thresholds (they see easier inputs but have weaker features) and
    /// late stages laxer ones. `schedule[i]` gates stage `i`; a schedule
    /// shorter than the stage count reuses its last entry.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] for an empty schedule and propagates
    /// layer/head evaluation errors.
    pub fn classify_with_schedule(
        &self,
        x: &Tensor,
        schedule: &[ConfidencePolicy],
    ) -> Result<CdlOutput> {
        let last = schedule
            .last()
            .ok_or_else(|| CdlError::BadPolicy("empty policy schedule".into()))?;
        self.classify_impl(x, |idx| *schedule.get(idx).unwrap_or(last))
    }

    /// Classifies with an explicit policy (used by δ sweeps so the heads
    /// need not be rebuilt).
    ///
    /// # Errors
    ///
    /// Propagates layer/head evaluation errors.
    pub fn classify_with_policy(&self, x: &Tensor, policy: ConfidencePolicy) -> Result<CdlOutput> {
        self.classify_impl(x, |_| policy)
    }

    fn classify_impl(
        &self,
        x: &Tensor,
        policy_for: impl Fn(usize) -> ConfidencePolicy,
    ) -> Result<CdlOutput> {
        self.classify_impl_capped(x, policy_for, None)
    }

    /// The cascade with an optional depth cap: reaching conditional stage
    /// `force_exit_at` terminates there with that head's decision (same
    /// label/confidence bits the gate computed), whatever the gate said.
    fn classify_impl_capped(
        &self,
        x: &Tensor,
        policy_for: impl Fn(usize) -> ConfidencePolicy,
        force_exit_at: Option<usize>,
    ) -> Result<CdlOutput> {
        let mut cur = x.clone();
        let mut prev_tap: Option<usize> = None;
        let mut ops = OpCount::ZERO;
        for (idx, stage) in self.stages.iter().enumerate() {
            cur = match prev_tap {
                None => self
                    .base
                    .forward_prefix(&cur, stage.tap_runtime)
                    .map_err(CdlError::Nn)?,
                Some(p) => self
                    .base
                    .forward_between(&cur, p, stage.tap_runtime)
                    .map_err(CdlError::Nn)?,
            };
            ops += stage.ops_from_prev + stage.head_ops;
            let scores = stage.head.scores(&cur)?;
            let decision = policy_for(idx).decide(&scores)?;
            if decision.exit || force_exit_at.is_some_and(|cap| idx >= cap) {
                return Ok(CdlOutput {
                    label: decision.label,
                    exit_stage: idx,
                    confidence: decision.confidence,
                    ops,
                    stages_activated: idx as u64 + 1,
                    exited_early: true,
                });
            }
            prev_tap = Some(stage.tap_runtime);
        }
        // final stage: run the remaining baseline layers
        let out = match prev_tap {
            None => self.base.forward(&cur).map_err(CdlError::Nn)?,
            Some(p) => self
                .base
                .forward_between(&cur, p, self.base.layer_count() - 1)
                .map_err(CdlError::Nn)?,
        };
        ops += self.final_ops;
        let label = out
            .argmax()
            .ok_or_else(|| CdlError::BadStage("baseline produced empty output".into()))?;
        let probs = cdl_tensor::ops::softmax(&out);
        Ok(CdlOutput {
            label,
            exit_stage: self.stages.len(),
            confidence: probs.data()[label],
            ops,
            stages_activated: self.stages.len() as u64 + 1,
            exited_early: false,
        })
    }

    /// Classification outcome of the *baseline* network alone (no heads),
    /// with its op count — the comparison point for every experiment.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn classify_baseline(&self, x: &Tensor) -> Result<(usize, OpCount)> {
        let label = self.base.predict(x).map_err(CdlError::Nn)?;
        Ok((label, self.baseline_ops))
    }
}

/// Op count of one head evaluation (dense affine + score readout).
pub fn head_op_count(head: &LinearClassifier) -> OpCount {
    let f = head.features() as u64;
    let c = head.classes() as u64;
    OpCount {
        macs: f * c,
        adds: c,
        compares: c.saturating_sub(1), // argmax / threshold scan
        activations: c,                // sigmoid outputs
        mem_reads: f * c + f,
        mem_writes: c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_3c;
    use cdl_nn::network::Network as NnNetwork;

    fn build_untrained() -> CdlNetwork {
        let arch = mnist_3c();
        let base = NnNetwork::from_spec(&arch.spec, 3).unwrap();
        let feats = arch.tap_features().unwrap();
        let stages = arch
            .taps
            .iter()
            .zip(&feats)
            .map(|(t, &f)| {
                (
                    t.spec_layer,
                    t.name.clone(),
                    LinearClassifier::new(f, 10, 1).unwrap(),
                )
            })
            .collect();
        CdlNetwork::assemble(base, stages, ConfidencePolicy::max_prob(0.6)).unwrap()
    }

    #[test]
    fn assembles_with_correct_op_partition() {
        let cdl = build_untrained();
        assert_eq!(cdl.stage_count(), 2);
        // the baseline segments must partition the full baseline ops
        let seg_sum: OpCount = cdl
            .stages()
            .iter()
            .map(|s| s.ops_from_prev)
            .sum::<OpCount>()
            + cdl.final_ops;
        assert_eq!(seg_sum, cdl.baseline_ops());
        // worst case = baseline + heads
        let heads: OpCount = cdl.stages().iter().map(|s| s.head_ops).sum();
        assert_eq!(cdl.worst_case_ops(), cdl.baseline_ops() + heads);
    }

    #[test]
    fn classify_runs_and_counts_ops() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        let out = cdl.classify(&x).unwrap();
        assert!(out.label < 10);
        assert!(out.exit_stage <= 2);
        assert!(out.ops.compute_ops() > 0);
        // ops never exceed the worst case and never fall below stage 1 cost
        assert!(out.ops.compute_ops() <= cdl.worst_case_ops().compute_ops());
        let min = cdl.stages()[0].ops_from_prev + cdl.stages()[0].head_ops;
        assert!(out.ops.compute_ops() >= min.compute_ops());
    }

    #[test]
    fn lenient_policy_exits_earlier_than_strict() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        let lenient = cdl
            .classify_with_policy(&x, ConfidencePolicy::margin(1e-6))
            .unwrap();
        // delta ~1.0 with untrained heads never exits early
        let strict = cdl
            .classify_with_policy(&x, ConfidencePolicy::max_prob(0.999))
            .unwrap();
        assert!(lenient.exit_stage <= strict.exit_stage);
        assert!(lenient.ops.compute_ops() <= strict.ops.compute_ops());
        assert_eq!(strict.exit_stage, 2); // reaches FC
        assert_eq!(strict.stages_activated, 3);
    }

    #[test]
    fn early_exit_skips_deep_ops() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        // a vanishing margin threshold exits at the first stage for any
        // non-tied score vector (max-prob with small δ would NOT: several
        // classes exceed δ and the uniqueness criterion keeps cascading)
        let early = cdl
            .classify_with_policy(&x, ConfidencePolicy::margin(1e-6))
            .unwrap();
        let full = cdl
            .classify_with_policy(&x, ConfidencePolicy::max_prob(0.999))
            .unwrap();
        assert_eq!(early.exit_stage, 0);
        assert!(early.exited_early);
        assert!(!full.exited_early);
        // exiting at O1 must cost less than half of the full pass here
        assert!(early.ops.compute_ops() * 2 < full.ops.compute_ops());
    }

    #[test]
    fn assemble_validates_stage_config() {
        let arch = mnist_3c();
        let base = NnNetwork::from_spec(&arch.spec, 3).unwrap();
        // wrong fan-in head
        let bad = vec![(
            1usize,
            "O1".to_string(),
            LinearClassifier::new(99, 10, 1).unwrap(),
        )];
        assert!(matches!(
            CdlNetwork::assemble(base, bad, ConfidencePolicy::max_prob(0.5)),
            Err(CdlError::BadStage(_))
        ));
        // unordered taps
        let base = NnNetwork::from_spec(&arch.spec, 3).unwrap();
        let bad = vec![
            (
                3usize,
                "O2".to_string(),
                LinearClassifier::new(150, 10, 1).unwrap(),
            ),
            (
                1usize,
                "O1".to_string(),
                LinearClassifier::new(507, 10, 1).unwrap(),
            ),
        ];
        assert!(CdlNetwork::assemble(base, bad, ConfidencePolicy::max_prob(0.5)).is_err());
        // invalid policy
        let base = NnNetwork::from_spec(&arch.spec, 3).unwrap();
        assert!(CdlNetwork::assemble(base, vec![], ConfidencePolicy::max_prob(0.0)).is_err());
    }

    #[test]
    fn no_stage_cdl_equals_baseline() {
        let arch = mnist_3c();
        let base = NnNetwork::from_spec(&arch.spec, 3).unwrap();
        let cdl = CdlNetwork::assemble(base, vec![], ConfidencePolicy::max_prob(0.5)).unwrap();
        let x = Tensor::full(&[1, 28, 28], 0.3);
        let out = cdl.classify(&x).unwrap();
        let (base_label, base_ops) = cdl.classify_baseline(&x).unwrap();
        assert_eq!(out.label, base_label);
        assert_eq!(out.ops, base_ops);
        assert_eq!(out.exit_stage, 0);
        assert_eq!(out.stages_activated, 1);
    }

    #[test]
    fn set_policy_validates() {
        let mut cdl = build_untrained();
        assert!(cdl.set_policy(ConfidencePolicy::max_prob(0.8)).is_ok());
        assert_eq!(cdl.policy().threshold(), 0.8);
        assert!(cdl.set_policy(ConfidencePolicy::max_prob(0.0)).is_err());
    }

    #[test]
    fn schedule_matches_uniform_policy_when_constant() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        let p = ConfidencePolicy::margin(0.2);
        let uniform = cdl.classify_with_policy(&x, p).unwrap();
        let scheduled = cdl.classify_with_schedule(&x, &[p, p]).unwrap();
        assert_eq!(uniform, scheduled);
        // a short schedule reuses its last entry
        let short = cdl.classify_with_schedule(&x, &[p]).unwrap();
        assert_eq!(uniform, short);
    }

    #[test]
    fn schedule_can_gate_stages_differently() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        // stage 0 impossible (margin 1.0 ~ never), stage 1 trivial
        let strict = ConfidencePolicy::margin(1.0);
        let trivial = ConfidencePolicy::margin(1e-6);
        let out = cdl.classify_with_schedule(&x, &[strict, trivial]).unwrap();
        assert_eq!(out.exit_stage, 1, "must pass stage 0 and exit at stage 1");
        // reversed: exits at stage 0
        let out = cdl.classify_with_schedule(&x, &[trivial, strict]).unwrap();
        assert_eq!(out.exit_stage, 0);
        // empty schedule is rejected
        assert!(cdl.classify_with_schedule(&x, &[]).is_err());
    }

    #[test]
    fn override_none_matches_classify() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        let plain = cdl.classify(&x).unwrap();
        let ovr = cdl.classify_with_override(&x, ExitOverride::NONE).unwrap();
        assert_eq!(plain, ovr);
        // a cap at/after the final stage also changes nothing
        let capped = cdl
            .classify_with_override(&x, ExitOverride::with_max_stage(cdl.stage_count()))
            .unwrap();
        assert_eq!(plain, capped);
    }

    #[test]
    fn delta_override_matches_explicit_policy() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        for delta in [0.3, 0.6, 0.999] {
            let ovr = cdl
                .classify_with_override(&x, ExitOverride::with_delta(delta))
                .unwrap();
            let explicit = cdl
                .classify_with_policy(&x, cdl.policy().with_threshold(delta))
                .unwrap();
            assert_eq!(ovr, explicit, "delta {delta}");
        }
        // invalid δ is rejected before any evaluation
        assert!(cdl
            .classify_with_override(&x, ExitOverride::with_delta(0.0))
            .is_err());
    }

    #[test]
    fn max_stage_caps_the_cascade() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        // δ ≈ 1 never exits on its own → the cap must terminate stage s
        let strict = ExitOverride {
            delta: Some(0.999),
            max_stage: None,
        };
        let uncapped = cdl.classify_with_override(&x, strict).unwrap();
        assert_eq!(uncapped.exit_stage, cdl.stage_count());
        for cap in 0..cdl.stage_count() {
            let out = cdl
                .classify_with_override(
                    &x,
                    ExitOverride {
                        delta: Some(0.999),
                        max_stage: Some(cap),
                    },
                )
                .unwrap();
            assert_eq!(out.exit_stage, cap);
            assert!(out.exited_early);
            assert_eq!(out.stages_activated, cap as u64 + 1);
            assert!(out.ops.compute_ops() < uncapped.ops.compute_ops());
        }
    }

    #[test]
    fn exit_override_helpers() {
        assert!(ExitOverride::NONE.is_none());
        assert!(ExitOverride::default().is_none());
        assert!(!ExitOverride::with_delta(0.5).is_none());
        assert!(!ExitOverride::with_max_stage(1).is_none());
        let p = ConfidencePolicy::max_prob(0.6);
        assert_eq!(ExitOverride::NONE.effective_policy(p), p);
        assert_eq!(
            ExitOverride::with_delta(0.9)
                .effective_policy(p)
                .threshold(),
            0.9
        );
        assert!(ExitOverride::with_delta(2.0).validate_for(p).is_err());
        assert!(ExitOverride::with_delta(0.9).validate_for(p).is_ok());
        assert_eq!(ExitOverride::NONE.to_string(), "default");
        assert!(ExitOverride::with_delta(0.5).to_string().contains("0.5"));
    }

    #[test]
    fn head_op_count_formula() {
        let h = LinearClassifier::new(507, 10, 1).unwrap();
        let ops = head_op_count(&h);
        assert_eq!(ops.macs, 5070);
        assert_eq!(ops.adds, 10);
        assert_eq!(ops.compares, 9);
        assert_eq!(ops.activations, 10);
    }
}
