//! Error type for the CDL crate.

use cdl_nn::NnError;
use cdl_tensor::TensorError;
use std::fmt;

/// Error produced by CDL construction or inference.
#[derive(Debug, Clone, PartialEq)]
pub enum CdlError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Stage configuration is inconsistent (bad tap index, non-monotonic
    /// stage order, head fan-in mismatch, …).
    BadStage(String),
    /// A confidence policy was configured with an out-of-range parameter.
    BadPolicy(String),
    /// The dataset handed to the builder is unusable.
    BadDataset(String),
}

impl fmt::Display for CdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdlError::Nn(e) => write!(f, "network error: {e}"),
            CdlError::Tensor(e) => write!(f, "tensor error: {e}"),
            CdlError::BadStage(msg) => write!(f, "bad stage configuration: {msg}"),
            CdlError::BadPolicy(msg) => write!(f, "bad confidence policy: {msg}"),
            CdlError::BadDataset(msg) => write!(f, "bad dataset: {msg}"),
        }
    }
}

impl std::error::Error for CdlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CdlError::Nn(e) => Some(e),
            CdlError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CdlError {
    fn from(e: NnError) -> Self {
        CdlError::Nn(e)
    }
}

impl From<TensorError> for CdlError {
    fn from(e: TensorError) -> Self {
        CdlError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e: CdlError = NnError::BadConfig("x".into()).into();
        assert!(e.to_string().contains("network error"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CdlError = TensorError::EmptyTensor.into();
        assert!(e.to_string().contains("tensor error"));
        let e = CdlError::BadStage("tap 9 out of order".into());
        assert!(e.to_string().contains("tap 9"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CdlError>();
    }
}
