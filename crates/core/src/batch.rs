//! Batched early-exit inference — Algorithm 2 over whole batches.
//!
//! [`BatchEvaluator`] is a persistent evaluator in the style of batched
//! GPU serving systems: it owns preallocated im2col/GEMM scratch
//! ([`cdl_nn::batch::BatchScratch`]) and pushes an entire batch through the
//! conditional network stage by stage. After each confidence gate the
//! still-active subset is **compacted** — images that exited stop consuming
//! any further operations, exactly as in the per-image cascade, while the
//! survivors keep amortising one im2col+GEMM per conv layer and one batched
//! affine per dense layer/head.
//!
//! Every per-image quantity (`label`, `exit_stage`, `confidence`, `ops`,
//! `stages_activated`, `exited_early`) is **bit-identical** to
//! [`CdlNetwork::classify`] on the same input: the batched kernels
//! accumulate in the same order as the per-image ones (pinned down by the
//! `batch_equivalence` integration test and the `cdl-tensor` property
//! tests).
//!
//! ```no_run
//! use cdl_core::batch::BatchEvaluator;
//! # fn demo(cdln: cdl_core::network::CdlNetwork, images: Vec<cdl_tensor::Tensor>)
//! #     -> cdl_core::Result<()> {
//! let mut eval = BatchEvaluator::new(&cdln);
//! let outputs = eval.classify_batch(&images)?;       // one entry per image
//! let again = eval.classify_batch(&images)?;          // reuses all scratch
//! # let _ = (outputs, again); Ok(())
//! # }
//! ```

use cdl_hw::OpCount;
use cdl_nn::batch::BatchScratch;
use cdl_tensor::gemm::GemmKernel;
use cdl_tensor::Tensor;

use crate::confidence::{ConfidencePolicy, ExitOverride};
use crate::error::CdlError;
use crate::network::{CdlNetwork, CdlOutput};
use crate::Result;

/// The work a request had already consumed when it was shed mid-batch.
///
/// Produced by the sheddable entry points
/// ([`BatchEvaluator::classify_batch_with_override_sheddable`]) for inputs
/// the caller's shed hook evicted at a stage boundary: `stages_activated`
/// cascade stages had run (and been paid for) by then, costing `ops`
/// operations — the exact cumulative cost every image reaching that
/// boundary incurs, so energy accounting built on these numbers is honest
/// rather than zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialEval {
    /// Cascade stages evaluated before the shed (0 is impossible: the
    /// first shed opportunity is the boundary *after* stage 0).
    pub stages_activated: u64,
    /// Operations consumed by those stages, including their heads.
    pub ops: OpCount,
}

/// Per-input result of a sheddable batch pass: either a finished
/// classification or the partial work consumed before a mid-batch shed.
#[derive(Debug, Clone, PartialEq)]
pub enum SheddableOutcome {
    /// The input ran to an exit (early or baseline) — bit-identical to the
    /// non-sheddable pass.
    Done(CdlOutput),
    /// The shed hook evicted the input at a stage boundary; the work done
    /// up to that boundary is recorded.
    Shed(PartialEval),
}

/// Shed hook that never sheds — the non-sheddable entry points route
/// through the sheddable core with this.
fn never_shed(_next_stage: usize, _input_idx: usize) -> bool {
    false
}

/// A persistent batched evaluator over one conditional network.
///
/// Create once, feed batches forever: all intermediate buffers (im2col
/// patch matrices, GEMM outputs, head score rows) are allocated on the
/// first batch and reused afterwards.
#[derive(Debug)]
pub struct BatchEvaluator<'a> {
    net: &'a CdlNetwork,
    scratch: BatchScratch,
    head_scores: Vec<f32>,
}

impl<'a> BatchEvaluator<'a> {
    /// Images per [`BatchEvaluator::classify_stream`] chunk (see there for
    /// the memory/throughput trade-off).
    pub const STREAM_CHUNK: usize = 256;

    /// Creates an evaluator over `net` with empty (lazily grown) scratch,
    /// running the detected GEMM microkernel ([`GemmKernel::detect`] —
    /// the AVX2 `Simd` arm on hosts that support it, `Tiled` otherwise;
    /// the detection runs once here, never per batch).
    pub fn new(net: &'a CdlNetwork) -> Self {
        Self::with_kernel(net, GemmKernel::default())
    }

    /// Creates an evaluator over `net` pinned to a specific
    /// [`GemmKernel`] — selected once here, then run by every batched
    /// conv, dense and head evaluation this evaluator performs. All
    /// kernels are bit-identical; `Reference` exists for A/B benchmarking
    /// and as the pinned baseline of the equivalence suites.
    pub fn with_kernel(net: &'a CdlNetwork, kernel: GemmKernel) -> Self {
        BatchEvaluator {
            net,
            scratch: BatchScratch::with_kernel(kernel),
            head_scores: Vec::new(),
        }
    }

    /// The network this evaluator serves.
    pub fn network(&self) -> &CdlNetwork {
        self.net
    }

    /// The GEMM microkernel this evaluator runs.
    pub fn gemm_kernel(&self) -> GemmKernel {
        self.scratch.kernel
    }

    /// Classifies a batch with the network's configured policy.
    ///
    /// Returns one [`CdlOutput`] per input, in input order.
    ///
    /// # Errors
    ///
    /// Propagates layer/head evaluation errors.
    pub fn classify_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<CdlOutput>> {
        self.classify_batch_with_policy(inputs, self.net.policy())
    }

    /// Classifies a batch under an explicit policy (for δ sweeps).
    ///
    /// # Errors
    ///
    /// Propagates layer/head evaluation errors.
    pub fn classify_batch_with_policy(
        &mut self,
        inputs: &[Tensor],
        policy: ConfidencePolicy,
    ) -> Result<Vec<CdlOutput>> {
        let outcomes =
            self.classify_batch_capped(inputs, policy, None, &mut |_, _| {}, &mut never_shed)?;
        Ok(into_done(outcomes))
    }

    /// Classifies a batch with per-request [`ExitOverride`]s (δ replacement
    /// and/or cascade-depth cap) applied **uniformly to the whole batch** —
    /// the serving layer groups requests by effective override before
    /// calling this, so scratch reuse and bit-exactness are preserved.
    ///
    /// Every output is bit-identical to
    /// [`CdlNetwork::classify_with_override`] on the same input.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] when the overridden δ is out of
    /// range; propagates layer/head evaluation errors.
    pub fn classify_batch_with_override(
        &mut self,
        inputs: &[Tensor],
        ovr: ExitOverride,
    ) -> Result<Vec<CdlOutput>> {
        self.classify_batch_with_override_observed(inputs, ovr, &mut |_, _| {})
    }

    /// [`BatchEvaluator::classify_batch_with_override`] with a per-stage
    /// **observer**: after each cascade segment is evaluated (and before
    /// the exit gate compacts the batch), `observer(stage, active)` is
    /// called with the input indices still active at that stage; the final
    /// baseline segment reports as stage [`CdlNetwork::stage_count`]. The
    /// observer only watches — the arithmetic, and therefore every output,
    /// is bit-identical to the unobserved call. This is the hook the
    /// serving layer's request-lifecycle tracing builds per-stage spans on.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchEvaluator::classify_batch_with_override`].
    pub fn classify_batch_with_override_observed(
        &mut self,
        inputs: &[Tensor],
        ovr: ExitOverride,
        observer: &mut dyn FnMut(usize, &[usize]),
    ) -> Result<Vec<CdlOutput>> {
        let policy = ovr.effective_policy(self.net.policy());
        policy.validate()?;
        let outcomes =
            self.classify_batch_capped(inputs, policy, ovr.max_stage, observer, &mut never_shed)?;
        Ok(into_done(outcomes))
    }

    /// [`BatchEvaluator::classify_batch_with_override_observed`] with a
    /// per-input **shed hook**: at every stage boundary — before cascade
    /// stage `s ≥ 1` runs, and before the final baseline segment (reported
    /// as stage [`CdlNetwork::stage_count`]) — `shed(next_stage, input_idx)`
    /// is asked whether the still-active input at original index
    /// `input_idx` should be evicted instead of paying for `next_stage`.
    /// Evicted inputs settle as [`SheddableOutcome::Shed`] carrying the
    /// exact work already consumed; survivors are **bit-identical** to the
    /// non-sheddable pass (shedding only removes rows from the batched
    /// GEMMs, which never changes per-row arithmetic). A hook that always
    /// returns `false` reproduces
    /// [`BatchEvaluator::classify_batch_with_override_observed`] exactly.
    ///
    /// The hook is *not* consulted before stage 0: admission-time expiry
    /// is the dispatcher's job, and an input that was live at dispatch has
    /// already been committed to its first segment.
    ///
    /// This is the mechanism the serving layer's mid-batch deadline
    /// shedding builds on: a request whose deadline passes while its batch
    /// is in flight stops consuming cascade stages at the next boundary.
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`BatchEvaluator::classify_batch_with_override_observed`].
    pub fn classify_batch_with_override_sheddable(
        &mut self,
        inputs: &[Tensor],
        ovr: ExitOverride,
        observer: &mut dyn FnMut(usize, &[usize]),
        shed: &mut dyn FnMut(usize, usize) -> bool,
    ) -> Result<Vec<SheddableOutcome>> {
        let policy = ovr.effective_policy(self.net.policy());
        policy.validate()?;
        self.classify_batch_capped(inputs, policy, ovr.max_stage, observer, shed)
    }

    fn classify_batch_capped(
        &mut self,
        inputs: &[Tensor],
        policy: ConfidencePolicy,
        force_exit_at: Option<usize>,
        observer: &mut dyn FnMut(usize, &[usize]),
        shed: &mut dyn FnMut(usize, usize) -> bool,
    ) -> Result<Vec<SheddableOutcome>> {
        let n = inputs.len();
        let mut outputs: Vec<Option<SheddableOutcome>> = (0..n).map(|_| None).collect();
        if n == 0 {
            return Ok(Vec::new());
        }

        // the still-active subset: current activations + original indices;
        // empty until the first stage runs — the first segment borrows the
        // caller's inputs directly, so no upfront batch copy is made
        let mut active: Vec<Tensor> = Vec::new();
        let mut started = false;
        let mut active_idx: Vec<usize> = (0..n).collect();
        let mut prev_tap: Option<usize> = None;
        // cumulative cost of reaching (and gating at) each stage — identical
        // for every image that reaches it, mirroring `classify_impl`
        let mut cum_ops = OpCount::ZERO;

        for (stage_idx, stage) in self.net.stages().iter().enumerate() {
            // stage boundary: before paying for stage `stage_idx`, offer
            // every still-active input to the shed hook (never before
            // stage 0 — dispatch-time checks own that boundary)
            if started {
                shed_boundary(
                    stage_idx,
                    cum_ops,
                    &mut active,
                    &mut active_idx,
                    &mut outputs,
                    shed,
                );
                if active.is_empty() {
                    return collect(outputs);
                }
            }
            let src: &[Tensor] = if started { &active } else { inputs };
            active = self.net.base().forward_batch_segment(
                src,
                prev_tap,
                stage.tap_runtime,
                &mut self.scratch,
            )?;
            started = true;
            cum_ops += stage.ops_from_prev + stage.head_ops;

            stage
                .head
                .scores_batch_into(&active, &mut self.head_scores, self.scratch.kernel)?;
            observer(stage_idx, &active_idx);
            let classes = stage.head.classes();

            let mut keep: Vec<Tensor> = Vec::with_capacity(active.len());
            let mut keep_idx: Vec<usize> = Vec::with_capacity(active.len());
            for (k, features) in active.drain(..).enumerate() {
                let row = &self.head_scores[k * classes..(k + 1) * classes];
                let scores = Tensor::from_slice(row);
                let decision = policy.decide(&scores)?;
                if decision.exit || force_exit_at.is_some_and(|cap| stage_idx >= cap) {
                    outputs[active_idx[k]] = Some(SheddableOutcome::Done(CdlOutput {
                        label: decision.label,
                        exit_stage: stage_idx,
                        confidence: decision.confidence,
                        ops: cum_ops,
                        stages_activated: stage_idx as u64 + 1,
                        exited_early: true,
                    }));
                } else {
                    keep.push(features);
                    keep_idx.push(active_idx[k]);
                }
            }
            active = keep;
            active_idx = keep_idx;
            if active.is_empty() {
                return collect(outputs);
            }
            prev_tap = Some(stage.tap_runtime);
        }

        // survivors run the remaining baseline layers to the final output
        let stage_count = self.net.stage_count();
        if started {
            // last boundary: shed before committing to the baseline tail
            shed_boundary(
                stage_count,
                cum_ops,
                &mut active,
                &mut active_idx,
                &mut outputs,
                shed,
            );
            if active.is_empty() {
                return collect(outputs);
            }
        }
        let last = self.net.base().layer_count() - 1;
        let src: &[Tensor] = if started { &active } else { inputs };
        let finals =
            self.net
                .base()
                .forward_batch_segment(src, prev_tap, last, &mut self.scratch)?;
        cum_ops += self.net.final_ops();
        observer(stage_count, &active_idx);
        for (k, out) in finals.iter().enumerate() {
            let label = out
                .argmax()
                .ok_or_else(|| CdlError::BadStage("baseline produced empty output".into()))?;
            let probs = cdl_tensor::ops::softmax(out);
            outputs[active_idx[k]] = Some(SheddableOutcome::Done(CdlOutput {
                label,
                exit_stage: stage_count,
                confidence: probs.data()[label],
                ops: cum_ops,
                stages_activated: stage_count as u64 + 1,
                exited_early: false,
            }));
        }
        collect(outputs)
    }

    /// Classifies an arbitrarily long stream by pushing
    /// [`BatchEvaluator::STREAM_CHUNK`]-image chunks through
    /// [`BatchEvaluator::classify_batch`] — large enough to amortise one
    /// im2col+GEMM per conv layer, small enough to bound the scratch
    /// matrices (~`chunk × out_h × out_w × k²·c` floats for the widest
    /// layer). Outputs stay bit-identical to per-image
    /// [`CdlNetwork::classify`], in input order.
    ///
    /// # Errors
    ///
    /// Propagates layer/head evaluation errors.
    pub fn classify_stream(&mut self, inputs: &[Tensor]) -> Result<Vec<CdlOutput>> {
        self.classify_stream_with_override(inputs, ExitOverride::NONE)
    }

    /// [`BatchEvaluator::classify_stream`] with one [`ExitOverride`]
    /// applied to every image of the stream (see
    /// [`BatchEvaluator::classify_batch_with_override`]).
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadPolicy`] when the overridden δ is out of
    /// range; propagates layer/head evaluation errors.
    pub fn classify_stream_with_override(
        &mut self,
        inputs: &[Tensor],
        ovr: ExitOverride,
    ) -> Result<Vec<CdlOutput>> {
        self.classify_stream_with_override_observed(inputs, ovr, &mut |_, _| {})
    }

    /// [`BatchEvaluator::classify_stream_with_override`] with the
    /// per-stage observer of
    /// [`BatchEvaluator::classify_batch_with_override_observed`]. Observed
    /// indices are positions in the full `inputs` stream (each chunk's
    /// local indices are shifted by the chunk base before the callback),
    /// so one observer serves the whole stream.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchEvaluator::classify_stream_with_override`].
    pub fn classify_stream_with_override_observed(
        &mut self,
        inputs: &[Tensor],
        ovr: ExitOverride,
        observer: &mut dyn FnMut(usize, &[usize]),
    ) -> Result<Vec<CdlOutput>> {
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut shifted: Vec<usize> = Vec::new();
        for (chunk_no, chunk) in inputs.chunks(Self::STREAM_CHUNK).enumerate() {
            let base = chunk_no * Self::STREAM_CHUNK;
            outputs.extend(self.classify_batch_with_override_observed(
                chunk,
                ovr,
                &mut |stage, active| {
                    shifted.clear();
                    shifted.extend(active.iter().map(|&k| base + k));
                    observer(stage, &shifted);
                },
            )?);
        }
        Ok(outputs)
    }

    /// Sheddable twin of
    /// [`BatchEvaluator::classify_stream_with_override_observed`]: pushes
    /// [`BatchEvaluator::STREAM_CHUNK`]-image chunks through
    /// [`BatchEvaluator::classify_batch_with_override_sheddable`]. Both
    /// the observer and the shed hook see indices into the full `inputs`
    /// stream (chunk-local indices are shifted by the chunk base), so one
    /// pair of hooks serves the whole stream.
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`BatchEvaluator::classify_batch_with_override_sheddable`].
    pub fn classify_stream_with_override_sheddable(
        &mut self,
        inputs: &[Tensor],
        ovr: ExitOverride,
        observer: &mut dyn FnMut(usize, &[usize]),
        shed: &mut dyn FnMut(usize, usize) -> bool,
    ) -> Result<Vec<SheddableOutcome>> {
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut shifted: Vec<usize> = Vec::new();
        for (chunk_no, chunk) in inputs.chunks(Self::STREAM_CHUNK).enumerate() {
            let base = chunk_no * Self::STREAM_CHUNK;
            outputs.extend(self.classify_batch_with_override_sheddable(
                chunk,
                ovr,
                &mut |stage, active| {
                    shifted.clear();
                    shifted.extend(active.iter().map(|&k| base + k));
                    observer(stage, &shifted);
                },
                &mut |next_stage, idx| shed(next_stage, base + idx),
            )?);
        }
        Ok(outputs)
    }

    /// Batched [`CdlNetwork::classify_baseline`]: runs the *baseline*
    /// network alone (no heads, no gates) over the whole batch against this
    /// evaluator's scratch, returning each image's `(label, baseline_ops)`.
    ///
    /// Bit-identical to calling `classify_baseline` per image — the batched
    /// segment reproduces `Network::forward` exactly.
    ///
    /// # Errors
    ///
    /// Propagates layer evaluation errors.
    pub fn classify_baseline_batch(&mut self, inputs: &[Tensor]) -> Result<Vec<(usize, OpCount)>> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let last = self.net.base().layer_count() - 1;
        let finals =
            self.net
                .base()
                .forward_batch_segment(inputs, None, last, &mut self.scratch)?;
        let ops = self.net.baseline_ops();
        finals
            .iter()
            .map(|out| {
                let label = out
                    .argmax()
                    .ok_or_else(|| CdlError::BadStage("baseline produced empty output".into()))?;
                Ok((label, ops))
            })
            .collect()
    }
}

/// Offers every still-active input to the shed hook at the boundary
/// before `next_stage`; evicted inputs settle as `Shed` carrying the
/// cumulative cost `cum_ops` (the cost of the `next_stage` stages they
/// already ran).
fn shed_boundary(
    next_stage: usize,
    cum_ops: OpCount,
    active: &mut Vec<Tensor>,
    active_idx: &mut Vec<usize>,
    outputs: &mut [Option<SheddableOutcome>],
    shed: &mut dyn FnMut(usize, usize) -> bool,
) {
    let mut keep: Vec<Tensor> = Vec::with_capacity(active.len());
    let mut keep_idx: Vec<usize> = Vec::with_capacity(active_idx.len());
    for (k, features) in active.drain(..).enumerate() {
        let idx = active_idx[k];
        if shed(next_stage, idx) {
            outputs[idx] = Some(SheddableOutcome::Shed(PartialEval {
                stages_activated: next_stage as u64,
                ops: cum_ops,
            }));
        } else {
            keep.push(features);
            keep_idx.push(idx);
        }
    }
    *active = keep;
    *active_idx = keep_idx;
}

fn collect(outputs: Vec<Option<SheddableOutcome>>) -> Result<Vec<SheddableOutcome>> {
    outputs
        .into_iter()
        .map(|o| {
            o.ok_or_else(|| CdlError::BadStage("image left unclassified by batch pass".into()))
        })
        .collect()
}

/// Unwraps a never-shed pass back to plain outputs (the non-sheddable
/// entry points route through the sheddable core with [`never_shed`], so
/// a `Shed` arm here is impossible).
fn into_done(outcomes: Vec<SheddableOutcome>) -> Vec<CdlOutput> {
    outcomes
        .into_iter()
        .map(|o| match o {
            SheddableOutcome::Done(out) => out,
            SheddableOutcome::Shed(_) => unreachable!("never_shed hook cannot shed"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_3c;
    use crate::head::LinearClassifier;
    use cdl_nn::network::Network;

    fn build_untrained() -> CdlNetwork {
        let arch = mnist_3c();
        let base = Network::from_spec(&arch.spec, 3).unwrap();
        let feats = arch.tap_features().unwrap();
        let stages = arch
            .taps
            .iter()
            .zip(&feats)
            .map(|(t, &f)| {
                (
                    t.spec_layer,
                    t.name.clone(),
                    LinearClassifier::new(f, 10, 1).unwrap(),
                )
            })
            .collect();
        CdlNetwork::assemble(base, stages, ConfidencePolicy::max_prob(0.6)).unwrap()
    }

    fn batch(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| Tensor::full(&[1, 28, 28], 0.1 + 0.07 * (i as f32 % 11.0)))
            .collect()
    }

    #[test]
    fn matches_per_image_classify_exactly() {
        let cdl = build_untrained();
        let inputs = batch(24);
        let mut eval = BatchEvaluator::new(&cdl);
        for policy in [
            ConfidencePolicy::max_prob(0.6),
            ConfidencePolicy::margin(1e-6),
            ConfidencePolicy::max_prob(0.999),
            ConfidencePolicy::sigmoid_prob(0.5),
        ] {
            let batched = eval.classify_batch_with_policy(&inputs, policy).unwrap();
            for (img, out) in inputs.iter().zip(&batched) {
                let single = cdl.classify_with_policy(img, policy).unwrap();
                assert_eq!(*out, single, "policy {policy}");
            }
        }
    }

    #[test]
    fn every_gemm_kernel_matches_per_image_classify() {
        let cdl = build_untrained();
        let inputs = batch(19);
        for kernel in GemmKernel::ALL {
            let mut eval = BatchEvaluator::with_kernel(&cdl, kernel);
            assert_eq!(eval.gemm_kernel(), kernel);
            let batched = eval.classify_batch(&inputs).unwrap();
            for (img, out) in inputs.iter().zip(&batched) {
                assert_eq!(*out, cdl.classify(img).unwrap(), "kernel {kernel}");
            }
        }
        // the default evaluator runs the host-detected kernel
        assert_eq!(
            BatchEvaluator::new(&cdl).gemm_kernel(),
            GemmKernel::detect()
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let cdl = build_untrained();
        let mut eval = BatchEvaluator::new(&cdl);
        assert!(eval.classify_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn single_image_batch_matches() {
        let cdl = build_untrained();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        let mut eval = BatchEvaluator::new(&cdl);
        let out = eval.classify_batch(std::slice::from_ref(&x)).unwrap();
        assert_eq!(out[0], cdl.classify(&x).unwrap());
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let cdl = build_untrained();
        let inputs = batch(9);
        let mut eval = BatchEvaluator::new(&cdl);
        let first = eval.classify_batch(&inputs).unwrap();
        let second = eval.classify_batch(&inputs).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn stream_matches_one_big_batch() {
        let cdl = build_untrained();
        // spans multiple STREAM_CHUNK chunks without being slow
        let inputs = batch(BatchEvaluator::STREAM_CHUNK + 17);
        let mut eval = BatchEvaluator::new(&cdl);
        let streamed = eval.classify_stream(&inputs).unwrap();
        let whole = eval.classify_batch(&inputs).unwrap();
        assert_eq!(streamed, whole);
        assert!(eval.classify_stream(&[]).unwrap().is_empty());
    }

    #[test]
    fn baseline_batch_matches_per_image() {
        let cdl = build_untrained();
        let inputs = batch(13);
        let mut eval = BatchEvaluator::new(&cdl);
        let batched = eval.classify_baseline_batch(&inputs).unwrap();
        for (img, got) in inputs.iter().zip(&batched) {
            assert_eq!(*got, cdl.classify_baseline(img).unwrap());
        }
        assert!(eval.classify_baseline_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn override_batch_matches_per_image_override() {
        let cdl = build_untrained();
        let inputs = batch(17);
        let mut eval = BatchEvaluator::new(&cdl);
        for ovr in [
            ExitOverride::NONE,
            ExitOverride::with_delta(0.45),
            ExitOverride::with_delta(0.999),
            ExitOverride::with_max_stage(0),
            ExitOverride::with_max_stage(1),
            ExitOverride {
                delta: Some(0.999),
                max_stage: Some(1),
            },
        ] {
            let batched = eval.classify_batch_with_override(&inputs, ovr).unwrap();
            for (img, out) in inputs.iter().zip(&batched) {
                let single = cdl.classify_with_override(img, ovr).unwrap();
                assert_eq!(*out, single, "override {ovr}");
            }
            let streamed = eval.classify_stream_with_override(&inputs, ovr).unwrap();
            assert_eq!(streamed, batched, "override {ovr}");
        }
        // invalid δ is rejected before any evaluation
        assert!(eval
            .classify_batch_with_override(&inputs, ExitOverride::with_delta(-1.0))
            .is_err());
    }

    #[test]
    fn observed_classification_is_bit_identical_and_reports_every_stage() {
        let cdl = build_untrained();
        // spans two stream chunks so the index-shifting path is exercised
        let inputs = batch(BatchEvaluator::STREAM_CHUNK + 31);
        let mut eval = BatchEvaluator::new(&cdl);
        let plain = eval
            .classify_stream_with_override(&inputs, ExitOverride::NONE)
            .unwrap();
        // per input: the set of stages the observer saw it active at
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); inputs.len()];
        let observed = eval
            .classify_stream_with_override_observed(
                &inputs,
                ExitOverride::NONE,
                &mut |stage, active| {
                    for &i in active {
                        seen[i].push(stage);
                    }
                },
            )
            .unwrap();
        assert_eq!(observed, plain, "observer must not perturb results");
        let stage_count = cdl.stage_count();
        for (i, out) in observed.iter().enumerate() {
            // an image that exited at stage s was active at exactly
            // stages 0..=s (the final baseline segment reports as
            // stage_count)
            let expect: Vec<usize> = if out.exited_early {
                (0..=out.exit_stage).collect()
            } else {
                (0..=stage_count).collect()
            };
            assert_eq!(seen[i], expect, "input {i}: {out:?}");
        }
    }

    #[test]
    fn never_shedding_hook_is_bit_identical() {
        let cdl = build_untrained();
        let inputs = batch(BatchEvaluator::STREAM_CHUNK + 9);
        let mut eval = BatchEvaluator::new(&cdl);
        let ovr = ExitOverride::with_delta(0.999); // keep most images deep
        let plain = eval.classify_stream_with_override(&inputs, ovr).unwrap();
        let sheddable = eval
            .classify_stream_with_override_sheddable(&inputs, ovr, &mut |_, _| {}, &mut |_, _| {
                false
            })
            .unwrap();
        assert_eq!(sheddable.len(), plain.len());
        for (got, want) in sheddable.iter().zip(&plain) {
            assert_eq!(*got, SheddableOutcome::Done(want.clone()));
        }
    }

    #[test]
    fn shed_hook_evicts_with_honest_partial_accounting_and_exact_survivors() {
        let cdl = build_untrained();
        let inputs = batch(12);
        let mut eval = BatchEvaluator::new(&cdl);
        // δ high enough that images survive past stage 0, so boundaries
        // after stage 0 actually see active inputs
        let ovr = ExitOverride::with_delta(0.999);
        let plain = eval.classify_batch_with_override(&inputs, ovr).unwrap();

        // shed inputs 3 and 7 at the first boundary they are offered
        let mut offered: Vec<Vec<usize>> = vec![Vec::new(); inputs.len()];
        let outcomes = eval
            .classify_batch_with_override_sheddable(
                &inputs,
                ovr,
                &mut |_, _| {},
                &mut |next_stage, idx| {
                    offered[idx].push(next_stage);
                    idx == 3 || idx == 7
                },
            )
            .unwrap();

        // the first offer is at the boundary *after* stage 0, never before
        for offers in offered.iter().filter(|o| !o.is_empty()) {
            assert!(offers[0] >= 1, "offers: {offers:?}");
        }
        for (i, outcome) in outcomes.iter().enumerate() {
            if (i == 3 || i == 7) && plain[i].stages_activated > 1 {
                // evicted at the boundary after stage 0: exactly one stage
                // of work done, at the cost every stage-0 image pays
                let SheddableOutcome::Shed(partial) = outcome else {
                    panic!("input {i} should have been shed: {outcome:?}");
                };
                assert_eq!(partial.stages_activated, 1);
                assert!(partial.ops.compute_ops() > 0, "shed work must be non-zero");
                assert!(
                    partial.ops.compute_ops() < plain[i].ops.compute_ops(),
                    "partial cost must undercut the full run"
                );
            } else {
                // survivors (and images that exited at stage 0 before any
                // boundary) are bit-identical to the unshredded pass
                assert_eq!(
                    *outcome,
                    SheddableOutcome::Done(plain[i].clone()),
                    "input {i}"
                );
            }
        }
    }

    #[test]
    fn no_stage_network_runs_to_final() {
        let arch = mnist_3c();
        let base = Network::from_spec(&arch.spec, 3).unwrap();
        let cdl = CdlNetwork::assemble(base, vec![], ConfidencePolicy::max_prob(0.5)).unwrap();
        let inputs = batch(5);
        let mut eval = BatchEvaluator::new(&cdl);
        let outs = eval.classify_batch(&inputs).unwrap();
        for (img, out) in inputs.iter().zip(&outs) {
            assert_eq!(*out, cdl.classify(img).unwrap());
            assert_eq!(out.exit_stage, 0);
            assert!(!out.exited_early);
        }
    }
}
