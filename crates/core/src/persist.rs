//! Model persistence: save/load a trained CDLN as a single JSON document.
//!
//! The serialised form captures everything needed to reconstruct the network
//! bit-exactly: the baseline spec, its trained parameters, each admitted
//! stage's tap point and head weights, and the active policy.

use std::path::Path;

use cdl_nn::network::Network;
use cdl_nn::spec::NetworkSpec;
use cdl_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::confidence::ConfidencePolicy;
use crate::error::CdlError;
use crate::head::LinearClassifier;
use crate::network::CdlNetwork;
use crate::Result;

/// Self-contained serialised form of a trained CDLN.
#[derive(Debug, Serialize, Deserialize)]
pub struct SavedCdl {
    /// Baseline network spec.
    pub spec: NetworkSpec,
    /// Trained baseline parameters in export order.
    pub params: Vec<Tensor>,
    /// Admitted stages: (spec-layer index, name, head).
    pub heads: Vec<(usize, String, LinearClassifier)>,
    /// Active termination policy.
    pub policy: ConfidencePolicy,
}

impl SavedCdl {
    /// Captures a CDLN into its serialisable form.
    pub fn capture(cdl: &CdlNetwork) -> SavedCdl {
        let spec = cdl.base().spec().clone();
        // recover each stage's spec-layer index from its runtime tap index
        let mut runtime_to_spec = std::collections::HashMap::new();
        for spec_idx in 0..spec.layers.len() {
            if let Ok(rt) = cdl.base().runtime_index_of(spec_idx) {
                runtime_to_spec.insert(rt, spec_idx);
            }
        }
        let heads = cdl
            .stages()
            .iter()
            .map(|s| {
                let spec_idx = *runtime_to_spec
                    .get(&s.tap_runtime)
                    .expect("stage tap always sits on a spec-layer boundary");
                (spec_idx, s.name.clone(), s.head.clone())
            })
            .collect();
        SavedCdl {
            spec,
            params: cdl.base().snapshot_params(),
            heads,
            policy: cdl.policy(),
        }
    }

    /// Reconstructs the CDLN.
    ///
    /// # Errors
    ///
    /// Propagates spec/parameter/stage validation errors.
    pub fn restore(self) -> Result<CdlNetwork> {
        let mut base = Network::from_spec(&self.spec, 0).map_err(CdlError::Nn)?;
        base.import_params(&self.params).map_err(CdlError::Nn)?;
        CdlNetwork::assemble(base, self.heads, self.policy)
    }
}

/// Saves a CDLN to a JSON file.
///
/// # Errors
///
/// Returns [`CdlError::BadStage`] wrapping I/O or serialisation failures.
pub fn save(cdl: &CdlNetwork, path: &Path) -> Result<()> {
    let saved = SavedCdl::capture(cdl);
    let json =
        serde_json::to_vec(&saved).map_err(|e| CdlError::BadStage(format!("serialise: {e}")))?;
    std::fs::write(path, json).map_err(|e| CdlError::BadStage(format!("write: {e}")))?;
    Ok(())
}

/// Loads a CDLN from a JSON file produced by [`save`].
///
/// # Errors
///
/// Returns [`CdlError::BadStage`] wrapping I/O or parse failures, and
/// propagates reconstruction errors.
pub fn load(path: &Path) -> Result<CdlNetwork> {
    let bytes = std::fs::read(path).map_err(|e| CdlError::BadStage(format!("read: {e}")))?;
    let saved: SavedCdl =
        serde_json::from_slice(&bytes).map_err(|e| CdlError::BadStage(format!("parse: {e}")))?;
    saved.restore()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_3c;

    fn demo_cdl() -> CdlNetwork {
        let arch = mnist_3c();
        let base = Network::from_spec(&arch.spec, 3).unwrap();
        let feats = arch.tap_features().unwrap();
        let stages = arch
            .taps
            .iter()
            .zip(&feats)
            .map(|(t, &f)| {
                (
                    t.spec_layer,
                    t.name.clone(),
                    LinearClassifier::new(f, 10, 1).unwrap(),
                )
            })
            .collect();
        CdlNetwork::assemble(base, stages, ConfidencePolicy::sigmoid_prob(0.6)).unwrap()
    }

    #[test]
    fn capture_restore_round_trip_in_memory() {
        let cdl = demo_cdl();
        let restored = SavedCdl::capture(&cdl).restore().unwrap();
        let x = Tensor::full(&[1, 28, 28], 0.4);
        let a = cdl.classify(&x).unwrap();
        let b = restored.classify(&x).unwrap();
        assert_eq!(a, b);
        assert_eq!(restored.stage_count(), cdl.stage_count());
        assert_eq!(restored.policy(), cdl.policy());
        assert_eq!(restored.baseline_ops(), cdl.baseline_ops());
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let cdl = demo_cdl();
        let path = std::env::temp_dir().join(format!("cdl_persist_{}.json", std::process::id()));
        save(&cdl, &path).unwrap();
        let restored = load(&path).unwrap();
        let x = Tensor::full(&[1, 28, 28], 0.7);
        assert_eq!(cdl.classify(&x).unwrap(), restored.classify(&x).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load(Path::new("/definitely/not/here.json")).is_err());
    }

    #[test]
    fn load_garbage_errors() {
        let path = std::env::temp_dir().join(format!("cdl_garbage_{}.json", std::process::id()));
        std::fs::write(&path, b"not json").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_matches_export() {
        let arch = mnist_3c();
        let mut net = Network::from_spec(&arch.spec, 9).unwrap();
        assert_eq!(net.snapshot_params(), net.export_params());
    }
}
