//! # cdl-core — Conditional Deep Learning
//!
//! The primary contribution of Panda, Sengupta & Roy, *"Conditional Deep
//! Learning for Energy-Efficient and Enhanced Pattern Recognition"*, DATE
//! 2016, reimplemented as a Rust library.
//!
//! A **CDLN** (Conditional Deep Learning Network) wraps a trained baseline
//! CNN ("DLN") and attaches a small **linear classifier** to the output of
//! selected convolutional/pooling stages. At inference time the input flows
//! stage by stage:
//!
//! 1. run the next slice of the baseline network to the stage's tap point,
//! 2. evaluate the stage's linear classifier on the (flattened) features,
//! 3. let the **activation module** ([`confidence::ConfidencePolicy`])
//!    decide — if exactly one class is confident beyond the user threshold
//!    **δ**, classification *terminates here* and deeper layers are never
//!    executed; otherwise the next stage is activated.
//!
//! Training follows the paper's Algorithm 1 ([`builder`]): heads are trained
//! with the least-mean-square rule on the features of instances that reach
//! their stage, and a head is only *admitted* into the final network when its
//! measured **gain** `G_i = (γ_base − γ_i)·Cl_i − γ_head·(I_i − Cl_i)`
//! exceeds a threshold ε. Inference is Algorithm 2 ([`network::CdlNetwork`]).
//!
//! The architecture presets of the paper's Tables I & II live in [`arch`];
//! evaluation/statistics (per-digit OPS, exit histograms, energy) in
//! [`stats`]; the δ- and stage-count sweeps behind Figs. 9 & 10 in
//! [`sweep`].
//!
//! ## Example
//!
//! ```no_run
//! use cdl_core::arch;
//! use cdl_core::builder::{CdlBuilder, BuilderConfig};
//! use cdl_core::confidence::ConfidencePolicy;
//! use cdl_dataset::SyntheticMnist;
//! use cdl_nn::network::Network;
//! use cdl_nn::trainer::{train, TrainConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (train_set, test_set) = SyntheticMnist::default().generate_split(6000, 1000, 1);
//! // 1. train the baseline DLN (paper Table II)
//! let arch = arch::mnist_3c();
//! let mut dln = Network::from_spec(&arch.spec, 7)?;
//! train(&mut dln, &train_set, &TrainConfig::default())?;
//! // 2. Algorithm 1: train + admit linear classifiers
//! let cdln = CdlBuilder::new(arch, ConfidencePolicy::max_prob(0.6))
//!     .build(dln, &train_set, &BuilderConfig::default())?;
//! // 3. Algorithm 2: early-exit inference
//! let out = cdln.network().classify(&test_set.images[0])?;
//! println!("label {} at stage {}", out.label, out.exit_stage);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arch;
pub mod batch;
pub mod builder;
pub mod calibrate;
pub mod confidence;
pub mod error;
pub mod head;
pub mod network;
pub mod persist;
pub mod stats;
pub mod sweep;

pub use arch::CdlArchitecture;
pub use batch::{BatchEvaluator, PartialEval, SheddableOutcome};
pub use builder::{BuilderConfig, CdlBuilder, TrainedCdl};
pub use confidence::{ConfidencePolicy, Decision, ExitOverride};
pub use error::CdlError;
pub use head::LinearClassifier;
pub use network::{CdlNetwork, CdlOutput};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CdlError>;
