//! Architecture presets — the paper's Tables I & II.
//!
//! A [`CdlArchitecture`] couples a baseline network spec with the *candidate
//! tap points* where linear classifiers may be attached. Per the paper, "the
//! learnt feature vectors from the pooling layers are used as training inputs
//! to the linear classifiers", so taps sit after pooling stages.

use cdl_nn::activation::Activation;
use cdl_nn::spec::{LayerSpec, NetworkSpec};
use serde::{Deserialize, Serialize};

use crate::error::CdlError;
use crate::Result;

/// A candidate location for a linear-classifier head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TapPoint {
    /// Index into the spec's layer list whose *output* feeds the head.
    pub spec_layer: usize,
    /// Paper-style name, e.g. `"O1"`.
    pub name: String,
}

/// A baseline DLN plus the candidate head locations of its CDL variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdlArchitecture {
    /// Architecture name, e.g. `"MNIST_3C"`.
    pub name: String,
    /// The baseline network ("DLN") spec.
    pub spec: NetworkSpec,
    /// Candidate tap points in network order.
    pub taps: Vec<TapPoint>,
}

impl CdlArchitecture {
    /// Validates that taps are in-range, strictly increasing, and not after
    /// the final layer.
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadStage`] describing the offending tap.
    pub fn validate(&self) -> Result<()> {
        self.spec.shape_chain().map_err(CdlError::Nn)?;
        let mut prev: Option<usize> = None;
        for tap in &self.taps {
            if tap.spec_layer + 1 >= self.spec.layers.len() {
                return Err(CdlError::BadStage(format!(
                    "tap {} at spec layer {} leaves no deeper layers to gate",
                    tap.name, tap.spec_layer
                )));
            }
            if let Some(p) = prev {
                if tap.spec_layer <= p {
                    return Err(CdlError::BadStage(format!(
                        "tap {} at spec layer {} is not after the previous tap ({p})",
                        tap.name, tap.spec_layer
                    )));
                }
            }
            prev = Some(tap.spec_layer);
        }
        Ok(())
    }

    /// Feature count at each tap (flattened output volume of the tapped
    /// layer).
    ///
    /// # Errors
    ///
    /// Propagates spec shape errors.
    pub fn tap_features(&self) -> Result<Vec<usize>> {
        let chain = self.spec.shape_chain().map_err(CdlError::Nn)?;
        self.taps
            .iter()
            .map(|t| {
                chain
                    .get(t.spec_layer)
                    .map(|s| s.iter().product())
                    .ok_or_else(|| {
                        CdlError::BadStage(format!(
                            "tap {} at out-of-range spec layer {}",
                            t.name, t.spec_layer
                        ))
                    })
            })
            .collect()
    }

    /// Restricted copy keeping only the first `n` taps (used by the
    /// stage-count sweep of Fig. 9).
    pub fn with_first_taps(&self, n: usize) -> CdlArchitecture {
        CdlArchitecture {
            name: format!("{}[{}taps]", self.name, n.min(self.taps.len())),
            spec: self.spec.clone(),
            taps: self.taps.iter().take(n).cloned().collect(),
        }
    }

    /// Number of output classes of the baseline.
    ///
    /// # Errors
    ///
    /// Propagates spec shape errors.
    pub fn classes(&self) -> Result<usize> {
        let out = self.spec.output_shape().map_err(CdlError::Nn)?;
        Ok(out[0])
    }
}

/// Table I baseline: `I → C1(5×5,6) → P1 → C2(5×5,12) → P2 → FC(10)`, with
/// the MNIST_2C head `O1` after `P1` (6×12×12 = 864 features).
pub fn mnist_2c() -> CdlArchitecture {
    CdlArchitecture {
        name: "MNIST_2C".into(),
        spec: NetworkSpec::new(
            vec![
                LayerSpec::conv(1, 6, 5, Activation::Sigmoid), // C1 -> 24x24x6
                LayerSpec::maxpool(2),                         // P1 -> 12x12x6
                LayerSpec::conv(6, 12, 5, Activation::Sigmoid), // C2 -> 8x8x12
                LayerSpec::maxpool(2),                         // P2 -> 4x4x12
                LayerSpec::flatten(),
                LayerSpec::dense(192, 10, Activation::Sigmoid), // FC
            ],
            &[1, 28, 28],
        ),
        taps: vec![TapPoint {
            spec_layer: 1,
            name: "O1".into(),
        }],
    }
}

/// Table I architecture with an additional candidate head after `P2`
/// (for stage-count ablations beyond the paper's O1-only MNIST_2C).
pub fn mnist_2c_full() -> CdlArchitecture {
    let mut arch = mnist_2c();
    arch.name = "MNIST_2C+O2".into();
    arch.taps.push(TapPoint {
        spec_layer: 3,
        name: "O2".into(),
    });
    arch
}

/// Table II baseline: `I → C1(3×3,3) → P1 → C2(4×4,6) → P2 → C3(3×3,9) → P3
/// → FC(10)`, with MNIST_3C heads `O1` after `P1` (507 features) and `O2`
/// after `P2` (150 features).
///
/// The paper lists `P3` as "3×3, 9 maps" following a 3×3 `C3` output — a
/// size-preserving stage, modelled here as a 1×1 (identity) pool; see
/// DESIGN.md §7.
pub fn mnist_3c() -> CdlArchitecture {
    CdlArchitecture {
        name: "MNIST_3C".into(),
        spec: NetworkSpec::new(
            vec![
                LayerSpec::conv(1, 3, 3, Activation::Sigmoid), // C1 -> 26x26x3
                LayerSpec::maxpool(2),                         // P1 -> 13x13x3
                LayerSpec::conv(3, 6, 4, Activation::Sigmoid), // C2 -> 10x10x6
                LayerSpec::maxpool(2),                         // P2 -> 5x5x6
                LayerSpec::conv(6, 9, 3, Activation::Sigmoid), // C3 -> 3x3x9
                LayerSpec::maxpool(1),                         // P3 -> 3x3x9 (identity)
                LayerSpec::flatten(),
                LayerSpec::dense(81, 10, Activation::Sigmoid), // FC
            ],
            &[1, 28, 28],
        ),
        taps: vec![
            TapPoint {
                spec_layer: 1,
                name: "O1".into(),
            },
            TapPoint {
                spec_layer: 3,
                name: "O2".into(),
            },
        ],
    }
}

/// Table II architecture with the third candidate head `O3` after `P3`,
/// as used in the paper's Figs. 7 & 9 (`O1-O2-O3-FC`).
pub fn mnist_3c_full() -> CdlArchitecture {
    let mut arch = mnist_3c();
    arch.name = "MNIST_3C+O3".into();
    arch.taps.push(TapPoint {
        spec_layer: 5,
        name: "O3".into(),
    });
    arch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for arch in [mnist_2c(), mnist_2c_full(), mnist_3c(), mnist_3c_full()] {
            arch.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", arch.name));
            assert_eq!(arch.classes().unwrap(), 10);
        }
    }

    #[test]
    fn table1_geometry_matches_paper() {
        let arch = mnist_2c();
        let chain = arch.spec.shape_chain().unwrap();
        assert_eq!(chain[0], vec![6, 24, 24]); // C1
        assert_eq!(chain[1], vec![6, 12, 12]); // P1
        assert_eq!(chain[2], vec![12, 8, 8]); // C2
        assert_eq!(chain[3], vec![12, 4, 4]); // P2
        assert_eq!(chain[5], vec![10]); // FC
        assert_eq!(arch.tap_features().unwrap(), vec![864]); // O1 on 6*12*12
    }

    #[test]
    fn table2_geometry_matches_paper() {
        let arch = mnist_3c_full();
        let chain = arch.spec.shape_chain().unwrap();
        assert_eq!(chain[0], vec![3, 26, 26]); // C1
        assert_eq!(chain[1], vec![3, 13, 13]); // P1
        assert_eq!(chain[2], vec![6, 10, 10]); // C2
        assert_eq!(chain[3], vec![6, 5, 5]); // P2
        assert_eq!(chain[4], vec![9, 3, 3]); // C3
        assert_eq!(chain[5], vec![9, 3, 3]); // P3 (identity)
        assert_eq!(chain[7], vec![10]); // FC
        assert_eq!(arch.tap_features().unwrap(), vec![507, 150, 81]);
    }

    #[test]
    fn with_first_taps_restricts() {
        let arch = mnist_3c_full();
        assert_eq!(arch.with_first_taps(0).taps.len(), 0);
        assert_eq!(arch.with_first_taps(1).taps.len(), 1);
        assert_eq!(arch.with_first_taps(99).taps.len(), 3);
        assert_eq!(arch.with_first_taps(1).taps[0].name, "O1");
    }

    #[test]
    fn validation_rejects_tap_at_end() {
        let mut arch = mnist_2c();
        arch.taps[0].spec_layer = 5; // FC output — nothing left to gate
        assert!(arch.validate().is_err());
    }

    #[test]
    fn validation_rejects_unordered_taps() {
        let mut arch = mnist_3c();
        arch.taps[1].spec_layer = 1; // same as first tap
        assert!(arch.validate().is_err());
        arch.taps[1].spec_layer = 0; // before first tap
        assert!(arch.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let arch = mnist_3c();
        let json = serde_json::to_string(&arch).unwrap();
        let back: CdlArchitecture = serde_json::from_str(&json).unwrap();
        assert_eq!(back, arch);
    }
}
