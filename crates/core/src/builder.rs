//! Algorithm 1 — training the CDLN and choosing the optimum number of
//! stages.
//!
//! Given a *trained* baseline DLN and the training set:
//!
//! 1. extract the CNN feature vector at every candidate tap for every
//!    training instance (one forward pass per instance);
//! 2. walk the taps in network order, training each linear classifier with
//!    the LMS rule on the instances that *reach* its stage (instances that
//!    exited at an earlier admitted stage are excluded — the paper notes the
//!    training set shrinks as we go deeper);
//! 3. measure, on the training set, how many of the reaching instances the
//!    stage would classify (`Cl_i`) under the termination policy, and
//!    compute the **gain**
//!    `G_i = (γ_base − γ_i)·Cl_i − γ_head·(I_i − Cl_i)`
//!    where `γ_base` is the full-baseline op count, `γ_i` the cumulative op
//!    count of reaching + evaluating stage i, and `γ_head` the head's own
//!    cost (the Eq. 1 penalty inflicted on instances that pass through);
//! 4. admit the stage into the CDLN iff `G_i > ε`.

use cdl_nn::network::Network;
use cdl_nn::trainer::LabelledSet;
use cdl_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::arch::CdlArchitecture;
use crate::confidence::ConfidencePolicy;
use crate::error::CdlError;
use crate::head::{LinearClassifier, LmsConfig};
use crate::network::{head_op_count, CdlNetwork};
use crate::Result;

/// Configuration of the Algorithm 1 builder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuilderConfig {
    /// LMS hyper-parameters for head training.
    pub lms: LmsConfig,
    /// Gain threshold ε, in operations per instance. A stage is admitted
    /// only when its measured per-instance gain exceeds this.
    pub epsilon: f64,
    /// Train each head only on instances that reach its stage (the paper's
    /// cascade). Disable to train every head on the full set (used by the
    /// Fig. 7 accuracy study).
    pub cascade_training: bool,
    /// Admit every candidate stage regardless of gain (used by sweeps that
    /// control the stage count explicitly).
    pub force_admit_all: bool,
    /// Seed for head initialisation.
    pub head_seed: u64,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        BuilderConfig {
            lms: LmsConfig::default(),
            epsilon: 0.0,
            cascade_training: true,
            force_admit_all: false,
            head_seed: 0xCD1,
        }
    }
}

/// Per-stage outcome of Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name (`"O1"`, …).
    pub name: String,
    /// Feature count at the tap.
    pub features: usize,
    /// Final-epoch LMS mean-squared error.
    pub lms_mse: f32,
    /// Head accuracy on the instances it was trained on.
    pub head_accuracy: f64,
    /// Instances reaching this stage (`I_i`).
    pub reached: usize,
    /// Instances the stage classifies under the policy (`Cl_i`).
    pub classified: usize,
    /// Measured gain `G_i` in ops/instance (averaged over the full set).
    pub gain_ops_per_instance: f64,
    /// Whether the stage was admitted into the CDLN.
    pub admitted: bool,
}

/// The product of Algorithm 1: an assembled CDLN plus the per-stage log.
#[derive(Debug)]
pub struct TrainedCdl {
    network: CdlNetwork,
    reports: Vec<StageReport>,
}

impl TrainedCdl {
    /// The assembled conditional network.
    pub fn network(&self) -> &CdlNetwork {
        &self.network
    }

    /// Mutable access (e.g. to adjust δ at runtime).
    pub fn network_mut(&mut self) -> &mut CdlNetwork {
        &mut self.network
    }

    /// Consumes the wrapper, returning the network.
    pub fn into_network(self) -> CdlNetwork {
        self.network
    }

    /// Per-stage training/admission log.
    pub fn reports(&self) -> &[StageReport] {
        &self.reports
    }
}

/// Algorithm 1 driver.
#[derive(Debug)]
pub struct CdlBuilder {
    arch: CdlArchitecture,
    policy: ConfidencePolicy,
}

impl CdlBuilder {
    /// Creates a builder for an architecture and termination policy.
    pub fn new(arch: CdlArchitecture, policy: ConfidencePolicy) -> Self {
        CdlBuilder { arch, policy }
    }

    /// Runs Algorithm 1 on a trained baseline.
    ///
    /// `base` must have been built from `arch.spec` and already trained on
    /// `train` (step 1 of the paper's algorithm happens outside, via
    /// [`cdl_nn::trainer::train`]).
    ///
    /// # Errors
    ///
    /// Returns [`CdlError::BadDataset`] for an empty training set,
    /// [`CdlError::BadStage`] for architecture inconsistencies, and
    /// propagates evaluation errors.
    pub fn build(
        &self,
        base: Network,
        train: &LabelledSet,
        cfg: &BuilderConfig,
    ) -> Result<TrainedCdl> {
        self.arch.validate()?;
        self.policy.validate()?;
        if train.is_empty() {
            return Err(CdlError::BadDataset("empty training set".into()));
        }
        if base.spec() != &self.arch.spec {
            return Err(CdlError::BadStage(
                "baseline network spec differs from the architecture spec".into(),
            ));
        }
        let classes = self.arch.classes()?;
        let features = extract_tap_features(&base, &self.arch, train)?;

        // cumulative baseline ops up to (and including) each tap
        let per_layer = base.op_counts().map_err(CdlError::Nn)?;
        let gamma_base: f64 = per_layer.iter().map(|o| o.compute_ops() as f64).sum();
        let mut tap_cum_ops = Vec::with_capacity(self.arch.taps.len());
        for tap in &self.arch.taps {
            let rt = base
                .runtime_index_of(tap.spec_layer)
                .map_err(CdlError::Nn)?;
            let cum: f64 = per_layer[..=rt]
                .iter()
                .map(|o| o.compute_ops() as f64)
                .sum();
            tap_cum_ops.push(cum);
        }

        let mut active: Vec<usize> = (0..train.len()).collect();
        let mut admitted: Vec<(usize, String, LinearClassifier)> = Vec::new();
        let mut reports = Vec::new();

        for (ti, tap) in self.arch.taps.iter().enumerate() {
            let feats = &features[ti];
            // cascade: train on instances reaching this stage; otherwise on
            // everything. Gains are always measured on the cascade flow.
            let all_idx: Vec<usize> = (0..train.len()).collect();
            let train_on: &[usize] = if cfg.cascade_training {
                &active
            } else {
                &all_idx
            };
            let eval_idx: &[usize] = &active;

            let mut head = LinearClassifier::new(
                feats.first().map_or(0, |f| f.len()),
                classes,
                cfg.head_seed.wrapping_add(ti as u64),
            )?;
            let (train_feats, train_labels) = gather(feats, &train.labels, train_on);
            let lms_mse = head.train_lms(&train_feats, &train_labels, &cfg.lms)?;
            let head_accuracy = head.accuracy(&train_feats, &train_labels)?;

            // simulate the activation module on the instances reaching here
            let mut classified = 0usize;
            let mut exits = Vec::new();
            for &i in eval_idx {
                let decision = self.policy.decide(&head.scores(&feats[i])?)?;
                if decision.exit {
                    classified += 1;
                    exits.push(i);
                }
            }
            let reached = eval_idx.len();
            // Eq. 1 accounting. For the Cl_i instances classified here, the
            // counterfactual (no LC_i) is to continue through the remaining
            // baseline layers — previously-admitted heads are paid on BOTH
            // paths and cancel out, so the saving per classified instance is
            //   γ_base − (ops up to tap i) − (this head's own cost).
            // Instances that pass through pay this head's cost as pure
            // penalty.
            let gamma_head = head_op_count(&head).compute_ops() as f64;
            let gamma_i = tap_cum_ops[ti] + gamma_head;
            let gain = ((gamma_base - gamma_i) * classified as f64
                - gamma_head * (reached - classified) as f64)
                / train.len() as f64;

            let admit = cfg.force_admit_all || gain > cfg.epsilon;
            reports.push(StageReport {
                name: tap.name.clone(),
                features: head.features(),
                lms_mse,
                head_accuracy,
                reached,
                classified,
                gain_ops_per_instance: gain,
                admitted: admit,
            });
            if admit {
                let exit_set: std::collections::HashSet<usize> = exits.into_iter().collect();
                active.retain(|i| !exit_set.contains(i));
                admitted.push((tap.spec_layer, tap.name.clone(), head));
            }
        }

        let network = CdlNetwork::assemble(base, admitted, self.policy)?;
        Ok(TrainedCdl { network, reports })
    }
}

/// Extracts the flattened feature vector at every candidate tap for every
/// training instance (one forward pass per instance).
fn extract_tap_features(
    base: &Network,
    arch: &CdlArchitecture,
    train: &LabelledSet,
) -> Result<Vec<Vec<Tensor>>> {
    let tap_runtimes: Vec<usize> = arch
        .taps
        .iter()
        .map(|t| base.runtime_index_of(t.spec_layer).map_err(CdlError::Nn))
        .collect::<Result<_>>()?;
    let mut features: Vec<Vec<Tensor>> = vec![Vec::with_capacity(train.len()); tap_runtimes.len()];
    for img in &train.images {
        let mut cur = img.clone();
        let mut prev: Option<usize> = None;
        for (ti, &rt) in tap_runtimes.iter().enumerate() {
            cur = match prev {
                None => base.forward_prefix(&cur, rt).map_err(CdlError::Nn)?,
                Some(p) => base.forward_between(&cur, p, rt).map_err(CdlError::Nn)?,
            };
            features[ti].push(cur.flatten());
            prev = Some(rt);
        }
    }
    Ok(features)
}

fn gather(feats: &[Tensor], labels: &[usize], idx: &[usize]) -> (Vec<Tensor>, Vec<usize>) {
    let mut f = Vec::with_capacity(idx.len());
    let mut l = Vec::with_capacity(idx.len());
    for &i in idx {
        f.push(feats[i].clone());
        l.push(labels[i]);
    }
    (f, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{mnist_3c, mnist_3c_full};
    use cdl_dataset::SyntheticMnist;
    use cdl_nn::trainer::{train as train_dln, TrainConfig};

    /// Small trained baseline + data, shared across tests (built once).
    fn trained_fixture() -> (Network, LabelledSet, LabelledSet) {
        let gen = SyntheticMnist::default();
        let (train_set, test_set) = gen.generate_split(900, 250, 11);
        let arch = mnist_3c();
        let mut base = Network::from_spec(&arch.spec, 7).unwrap();
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        train_dln(&mut base, &train_set, &cfg).unwrap();
        (base, train_set, test_set)
    }

    #[test]
    fn algorithm1_builds_and_early_exits() {
        let (base, train_set, test_set) = trained_fixture();
        let builder = CdlBuilder::new(mnist_3c(), ConfidencePolicy::max_prob(0.55));
        let trained = builder
            .build(base, &train_set, &BuilderConfig::default())
            .unwrap();

        // both candidate stages should report
        assert_eq!(trained.reports().len(), 2);
        // stage 1 sees everything
        assert_eq!(trained.reports()[0].reached, train_set.len());
        // heads learn something meaningful on their subset
        assert!(trained.reports()[0].head_accuracy > 0.5);

        // at least one stage must be admitted on a learnable dataset, and
        // admitted stages actually produce early exits at test time
        let cdl = trained.network();
        assert!(cdl.stage_count() >= 1);
        let mut exits = 0usize;
        let mut correct = 0usize;
        for (img, &label) in test_set.images.iter().zip(&test_set.labels) {
            let out = cdl.classify(img).unwrap();
            if out.exit_stage < cdl.stage_count() {
                exits += 1;
            }
            if out.label == label {
                correct += 1;
            }
        }
        assert!(exits > test_set.len() / 4, "only {exits} early exits");
        assert!(
            correct as f64 / test_set.len() as f64 > 0.6,
            "accuracy too low: {}",
            correct as f64 / test_set.len() as f64
        );
    }

    #[test]
    fn cascade_shrinks_training_sets() {
        let (base, train_set, _) = trained_fixture();
        let builder = CdlBuilder::new(mnist_3c(), ConfidencePolicy::max_prob(0.55));
        let trained = builder
            .build(base, &train_set, &BuilderConfig::default())
            .unwrap();
        let r = trained.reports();
        if r[0].admitted {
            // stage 2 reaches only what stage 1 did not classify
            assert_eq!(r[1].reached, r[0].reached - r[0].classified);
        }
    }

    #[test]
    fn force_admit_includes_all_taps() {
        let (base, train_set, _) = trained_fixture();
        let builder = CdlBuilder::new(mnist_3c_full(), ConfidencePolicy::max_prob(0.55));
        let cfg = BuilderConfig {
            force_admit_all: true,
            ..BuilderConfig::default()
        };
        let trained = builder.build(base, &train_set, &cfg).unwrap();
        assert_eq!(trained.network().stage_count(), 3);
        assert!(trained.reports().iter().all(|r| r.admitted));
    }

    #[test]
    fn huge_epsilon_rejects_all_stages() {
        let (base, train_set, _) = trained_fixture();
        let builder = CdlBuilder::new(mnist_3c(), ConfidencePolicy::max_prob(0.55));
        let cfg = BuilderConfig {
            epsilon: f64::MAX,
            ..BuilderConfig::default()
        };
        let trained = builder.build(base, &train_set, &cfg).unwrap();
        assert_eq!(trained.network().stage_count(), 0);
        assert!(trained.reports().iter().all(|r| !r.admitted));
    }

    #[test]
    fn rejects_mismatched_baseline() {
        let (_, train_set, _) = trained_fixture();
        let wrong = Network::from_spec(&crate::arch::mnist_2c().spec, 1).unwrap();
        let builder = CdlBuilder::new(mnist_3c(), ConfidencePolicy::max_prob(0.5));
        assert!(matches!(
            builder.build(wrong, &train_set, &BuilderConfig::default()),
            Err(CdlError::BadStage(_))
        ));
    }

    #[test]
    fn rejects_empty_training_set() {
        let arch = mnist_3c();
        let base = Network::from_spec(&arch.spec, 1).unwrap();
        let builder = CdlBuilder::new(arch, ConfidencePolicy::max_prob(0.5));
        assert!(matches!(
            builder.build(base, &LabelledSet::default(), &BuilderConfig::default()),
            Err(CdlError::BadDataset(_))
        ));
    }

    #[test]
    fn gain_is_positive_for_a_useful_first_stage() {
        let (base, train_set, _) = trained_fixture();
        let builder = CdlBuilder::new(mnist_3c(), ConfidencePolicy::max_prob(0.55));
        let trained = builder
            .build(base, &train_set, &BuilderConfig::default())
            .unwrap();
        let r0 = &trained.reports()[0];
        // a first stage classifying a meaningful share of a learnable set
        // must show positive gain (it skips most of the network's ops)
        if r0.classified * 3 > r0.reached {
            assert!(
                r0.gain_ops_per_instance > 0.0,
                "gain {}",
                r0.gain_ops_per_instance
            );
            assert!(r0.admitted);
        }
    }
}
