//! Parameter sweeps: the δ knob (Fig. 10) and the stage count (Figs. 7 & 9).

use cdl_hw::EnergyModel;
use cdl_nn::network::Network;
use cdl_nn::trainer::LabelledSet;
use serde::{Deserialize, Serialize};

use crate::arch::CdlArchitecture;
use crate::builder::{BuilderConfig, CdlBuilder};
use crate::confidence::ConfidencePolicy;
use crate::error::CdlError;
use crate::network::CdlNetwork;
use crate::stats::evaluate;
use crate::Result;

/// One point of a δ sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeltaPoint {
    /// The threshold δ.
    pub delta: f32,
    /// CDLN accuracy at this δ.
    pub accuracy: f64,
    /// Mean ops normalised by the baseline.
    pub normalized_ops: f64,
    /// Fraction of instances reaching the final output layer.
    pub fc_fraction: f64,
}

/// Sweeps the confidence threshold δ on an already-built CDLN (Fig. 10).
///
/// The heads stay fixed — only the activation module's threshold changes,
/// exactly the paper's "δ can be adjusted during runtime".
///
/// # Errors
///
/// Returns [`CdlError::BadDataset`] for an empty test set or empty δ list,
/// and propagates evaluation errors.
pub fn delta_sweep(
    cdl: &mut CdlNetwork,
    test: &LabelledSet,
    deltas: &[f32],
    energy_model: &EnergyModel,
) -> Result<Vec<DeltaPoint>> {
    if deltas.is_empty() {
        return Err(CdlError::BadDataset("empty delta list".into()));
    }
    let original = cdl.policy();
    let mut points = Vec::with_capacity(deltas.len());
    for &delta in deltas {
        cdl.set_policy(original.with_threshold(delta))?;
        let report = evaluate(cdl, test, energy_model)?;
        points.push(DeltaPoint {
            delta,
            accuracy: report.accuracy,
            normalized_ops: report.normalized_ops,
            fc_fraction: report.fc_fraction(),
        });
    }
    cdl.set_policy(original)?;
    Ok(points)
}

/// One point of a stage-count sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StagePoint {
    /// Number of linear-classifier stages in this configuration.
    pub stages: usize,
    /// Stage names, e.g. `["O1", "O2"]`.
    pub names: Vec<String>,
    /// CDLN accuracy.
    pub accuracy: f64,
    /// Baseline accuracy (identical across points; kept for convenience).
    pub baseline_accuracy: f64,
    /// Mean normalized ops.
    pub normalized_ops: f64,
    /// Fraction of instances reaching the final output layer.
    pub fc_fraction: f64,
}

/// Sweeps the number of output stages (Figs. 7 & 9): for `n = 0 ..= taps`,
/// trains heads on the first `n` candidate taps (force-admitted) and
/// evaluates the resulting CDLN.
///
/// The baseline is re-used across points via parameter export/import, so
/// every configuration wraps an *identical* trained DLN.
///
/// # Errors
///
/// Propagates build/evaluation errors.
pub fn stage_count_sweep(
    arch: &CdlArchitecture,
    base: &mut Network,
    train_set: &LabelledSet,
    test_set: &LabelledSet,
    policy: ConfidencePolicy,
    cfg: &BuilderConfig,
    energy_model: &EnergyModel,
) -> Result<Vec<StagePoint>> {
    arch.validate()?;
    let params = base.export_params();
    let mut points = Vec::with_capacity(arch.taps.len() + 1);
    for n in 0..=arch.taps.len() {
        let sub_arch = arch.with_first_taps(n);
        let mut clone = Network::from_spec(&arch.spec, 0).map_err(CdlError::Nn)?;
        clone.import_params(&params).map_err(CdlError::Nn)?;
        let force = BuilderConfig {
            force_admit_all: true,
            ..cfg.clone()
        };
        let trained = CdlBuilder::new(sub_arch.clone(), policy).build(clone, train_set, &force)?;
        let report = evaluate(trained.network(), test_set, energy_model)?;
        points.push(StagePoint {
            stages: n,
            names: sub_arch.taps.iter().map(|t| t.name.clone()).collect(),
            accuracy: report.accuracy,
            baseline_accuracy: report.baseline_accuracy,
            normalized_ops: report.normalized_ops,
            fc_fraction: report.fc_fraction(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_3c_full;
    use cdl_dataset::SyntheticMnist;
    use cdl_nn::trainer::{train as train_dln, TrainConfig};

    fn fixture() -> (CdlArchitecture, Network, LabelledSet, LabelledSet) {
        let gen = SyntheticMnist::default();
        let (train_set, test_set) = gen.generate_split(800, 250, 33);
        let arch = mnist_3c_full();
        let mut base = Network::from_spec(&arch.spec, 9).unwrap();
        train_dln(
            &mut base,
            &train_set,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        (arch, base, train_set, test_set)
    }

    #[test]
    fn delta_sweep_is_monotone_in_ops() {
        let (arch, base, train_set, test_set) = fixture();
        let mut cdl = CdlBuilder::new(arch, ConfidencePolicy::max_prob(0.5))
            .build(
                base,
                &train_set,
                &BuilderConfig {
                    force_admit_all: true,
                    ..BuilderConfig::default()
                },
            )
            .unwrap()
            .into_network();
        let deltas = [0.3f32, 0.5, 0.7, 0.9];
        let points = delta_sweep(&mut cdl, &test_set, &deltas, &EnergyModel::cmos_45nm()).unwrap();
        assert_eq!(points.len(), 4);
        // raising delta keeps more inputs in the cascade → ops rise (paper
        // phrases it with the complementary convention; see bench fig10)
        for pair in points.windows(2) {
            assert!(
                pair[1].normalized_ops >= pair[0].normalized_ops - 1e-9,
                "ops not monotone: {points:?}"
            );
            assert!(pair[1].fc_fraction >= pair[0].fc_fraction - 1e-9);
        }
        // the policy is restored afterwards
        assert_eq!(cdl.policy().threshold(), 0.5);
    }

    #[test]
    fn delta_sweep_rejects_empty() {
        let (arch, base, train_set, test_set) = fixture();
        let mut cdl = CdlBuilder::new(arch, ConfidencePolicy::max_prob(0.5))
            .build(base, &train_set, &BuilderConfig::default())
            .unwrap()
            .into_network();
        assert!(delta_sweep(&mut cdl, &test_set, &[], &EnergyModel::cmos_45nm()).is_err());
    }

    #[test]
    fn stage_sweep_covers_zero_to_all() {
        let (arch, mut base, train_set, test_set) = fixture();
        let points = stage_count_sweep(
            &arch,
            &mut base,
            &train_set,
            &test_set,
            ConfidencePolicy::max_prob(0.55),
            &BuilderConfig::default(),
            &EnergyModel::cmos_45nm(),
        )
        .unwrap();
        assert_eq!(points.len(), 4); // 0..=3 stages
        assert_eq!(points[0].stages, 0);
        assert_eq!(points[3].names, vec!["O1", "O2", "O3"]);
        // zero stages = pure baseline: normalized ops exactly 1
        assert!((points[0].normalized_ops - 1.0).abs() < 1e-9);
        assert!((points[0].fc_fraction - 1.0).abs() < 1e-12);
        // with stages, ops drop below baseline
        assert!(points[2].normalized_ops < 1.0);
        // fc fraction decreases as stages are added
        for pair in points.windows(2) {
            assert!(pair[1].fc_fraction <= pair[0].fc_fraction + 1e-9);
        }
        // baseline accuracy identical across points
        for p in &points {
            assert!((p.baseline_accuracy - points[0].baseline_accuracy).abs() < 1e-12);
        }
    }
}
