//! Evaluation statistics: per-digit OPS, energy, accuracy, exit histograms.
//!
//! This module computes everything the paper's result figures need from one
//! pass over a test set: Fig. 5 (normalized OPS per digit), Fig. 6 / Fig. 8
//! (normalized energy, difficulty ordering, FC activation fractions),
//! Table III (accuracy) and the exit histograms behind Fig. 9.

use cdl_hw::{EnergyModel, OpCount};
use cdl_nn::trainer::LabelledSet;
use serde::{Deserialize, Serialize};

use crate::batch::BatchEvaluator;
use crate::error::CdlError;
use crate::network::CdlNetwork;
use crate::Result;

/// Images per batched evaluation pass (the [`BatchEvaluator`] streaming
/// chunk: amortises GEMMs while bounding the scratch matrices).
const EVAL_CHUNK: usize = BatchEvaluator::STREAM_CHUNK;

/// Per-class statistics from one evaluation pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DigitStats {
    /// The class label.
    pub digit: usize,
    /// Number of test instances of this class.
    pub count: usize,
    /// CDLN accuracy on this class.
    pub accuracy: f64,
    /// Mean CDLN compute ops per instance.
    pub avg_ops: f64,
    /// Mean ops normalised by the baseline ops (the paper's "normalized
    /// #OPS"; < 1 means the CDLN is cheaper).
    pub normalized_ops: f64,
    /// Mean CDLN energy per instance, pJ.
    pub avg_energy_pj: f64,
    /// Energy normalised by baseline energy.
    pub normalized_energy: f64,
    /// Exit counts per stage (`len = stage_count + 1`; last entry = final
    /// output layer).
    pub exit_histogram: Vec<usize>,
    /// Fraction of instances that reached the final output layer (the
    /// paper's "FC activated for x% of instances").
    pub fc_fraction: f64,
}

/// Whole-test-set statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// CDLN accuracy over the whole set.
    pub accuracy: f64,
    /// Baseline DLN accuracy over the whole set (same underlying network,
    /// heads ignored).
    pub baseline_accuracy: f64,
    /// Mean normalized ops over the whole set.
    pub normalized_ops: f64,
    /// Mean normalized energy over the whole set.
    pub normalized_energy: f64,
    /// Ops of one baseline pass.
    pub baseline_ops: u64,
    /// Energy of one baseline pass, pJ.
    pub baseline_energy_pj: f64,
    /// Exit counts per stage over the whole set.
    pub exit_histogram: Vec<usize>,
    /// Per-class breakdown, indexed by digit.
    pub digits: Vec<DigitStats>,
}

impl EvalReport {
    /// The paper's headline "x× improvement in average OPS/input".
    pub fn ops_improvement(&self) -> f64 {
        if self.normalized_ops > 0.0 {
            1.0 / self.normalized_ops
        } else {
            f64::INFINITY
        }
    }

    /// The paper's "x× improvement in energy".
    pub fn energy_improvement(&self) -> f64 {
        if self.normalized_energy > 0.0 {
            1.0 / self.normalized_energy
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of all instances that reached the final output layer.
    pub fn fc_fraction(&self) -> f64 {
        let total: usize = self.exit_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *self.exit_histogram.last().unwrap_or(&0) as f64 / total as f64
    }

    /// Digits sorted by decreasing energy benefit (Fig. 8's x-axis order).
    pub fn digits_by_energy_benefit(&self) -> Vec<usize> {
        let mut order: Vec<usize> = self.digits.iter().map(|d| d.digit).collect();
        order.sort_by(|&a, &b| {
            let ea = self
                .digits
                .iter()
                .find(|d| d.digit == a)
                .map_or(1.0, |d| d.normalized_energy);
            let eb = self
                .digits
                .iter()
                .find(|d| d.digit == b)
                .map_or(1.0, |d| d.normalized_energy);
            ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }
}

/// Evaluates a CDLN on a test set, producing every statistic the paper's
/// figures use.
///
/// Both passes (conditional and baseline) run on the batched path: one
/// persistent [`BatchEvaluator`] pushes [`EVAL_CHUNK`]-image chunks through
/// the network, reusing its im2col/GEMM scratch across chunks. Per-image
/// results — and therefore every statistic in the report — are
/// bit-identical to the former per-image `classify` loop (the equivalence
/// the batch test-suite pins down).
///
/// Energy is computed with `energy_model`; the baseline is charged a single
/// control stage (one monolithic design), the CDLN one control charge per
/// activated stage.
///
/// # Errors
///
/// Returns [`CdlError::BadDataset`] for an empty set and propagates
/// classification errors.
pub fn evaluate(
    cdl: &CdlNetwork,
    test: &LabelledSet,
    energy_model: &EnergyModel,
) -> Result<EvalReport> {
    if test.is_empty() {
        return Err(CdlError::BadDataset("empty test set".into()));
    }
    let classes = test.class_count().max(1);
    let stage_slots = cdl.stage_count() + 1;
    let baseline_ops = cdl.baseline_ops();
    let baseline_energy = energy_model.total_pj(&baseline_ops, 1);

    #[derive(Default, Clone)]
    struct Acc {
        count: usize,
        correct: usize,
        ops_sum: f64,
        energy_sum: f64,
        exits: Vec<usize>,
    }
    let mut per_digit = vec![
        Acc {
            exits: vec![0; stage_slots],
            ..Default::default()
        };
        classes
    ];
    let mut baseline_correct = 0usize;

    let mut eval = BatchEvaluator::new(cdl);
    for (chunk_idx, chunk) in test.images.chunks(EVAL_CHUNK).enumerate() {
        let labels = &test.labels[chunk_idx * EVAL_CHUNK..];
        let outs = eval.classify_batch(chunk)?;
        let base = eval.classify_baseline_batch(chunk)?;
        for ((out, (base_label, _)), &label) in outs.iter().zip(&base).zip(labels) {
            let energy = energy_model.total_pj(&out.ops, out.stages_activated);
            let acc = &mut per_digit[label];
            acc.count += 1;
            acc.ops_sum += out.ops.compute_ops() as f64;
            acc.energy_sum += energy;
            acc.exits[out.exit_stage.min(stage_slots - 1)] += 1;
            if out.label == label {
                acc.correct += 1;
            }
            if *base_label == label {
                baseline_correct += 1;
            }
        }
    }

    let base_ops_f = baseline_ops.compute_ops() as f64;
    let mut digits = Vec::new();
    let mut exit_histogram = vec![0usize; stage_slots];
    let mut ops_total = 0.0;
    let mut energy_total = 0.0;
    let mut correct_total = 0usize;
    for (digit, acc) in per_digit.iter().enumerate() {
        if acc.count == 0 {
            continue;
        }
        for (h, &e) in exit_histogram.iter_mut().zip(&acc.exits) {
            *h += e;
        }
        ops_total += acc.ops_sum;
        energy_total += acc.energy_sum;
        correct_total += acc.correct;
        let n = acc.count as f64;
        digits.push(DigitStats {
            digit,
            count: acc.count,
            accuracy: acc.correct as f64 / n,
            avg_ops: acc.ops_sum / n,
            normalized_ops: acc.ops_sum / n / base_ops_f,
            avg_energy_pj: acc.energy_sum / n,
            normalized_energy: acc.energy_sum / n / baseline_energy,
            exit_histogram: acc.exits.clone(),
            fc_fraction: acc.exits[stage_slots - 1] as f64 / n,
        });
    }
    let n = test.len() as f64;
    Ok(EvalReport {
        accuracy: correct_total as f64 / n,
        baseline_accuracy: baseline_correct as f64 / n,
        normalized_ops: ops_total / n / base_ops_f,
        normalized_energy: energy_total / n / baseline_energy,
        baseline_ops: baseline_ops.compute_ops(),
        baseline_energy_pj: baseline_energy,
        exit_histogram,
        digits,
    })
}

/// Op count helper re-exported for reports: total ops of a labelled
/// evaluation when *every* instance runs the full baseline.
pub fn baseline_total_ops(cdl: &CdlNetwork, instances: usize) -> OpCount {
    cdl.baseline_ops() * instances as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_3c;
    use crate::builder::{BuilderConfig, CdlBuilder};
    use crate::confidence::ConfidencePolicy;
    use cdl_dataset::SyntheticMnist;
    use cdl_nn::network::Network;
    use cdl_nn::trainer::{train as train_dln, TrainConfig};

    /// Baseline parameters + data, computed once and shared across tests.
    fn fixture_data() -> &'static (Vec<cdl_tensor::Tensor>, LabelledSet, LabelledSet) {
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<(Vec<cdl_tensor::Tensor>, LabelledSet, LabelledSet)> =
            OnceLock::new();
        FIXTURE.get_or_init(|| {
            let gen = SyntheticMnist::default();
            let (train_set, test_set) = gen.generate_split(2500, 400, 21);
            let arch = mnist_3c();
            let mut base = Network::from_spec(&arch.spec, 5).unwrap();
            train_dln(
                &mut base,
                &train_set,
                &TrainConfig {
                    epochs: 6,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
            (base.export_params(), train_set, test_set)
        })
    }

    fn trained_cdl() -> (CdlNetwork, LabelledSet) {
        let (params, train_set, test_set) = fixture_data();
        let arch = mnist_3c();
        let mut base = Network::from_spec(&arch.spec, 5).unwrap();
        base.import_params(params).unwrap();
        // force-admit both stages so the fixture exercises early exits even
        // when the briefly-trained baseline would fail the gain check
        let cfg = BuilderConfig {
            force_admit_all: true,
            ..BuilderConfig::default()
        };
        let cdl = CdlBuilder::new(arch, ConfidencePolicy::max_prob(0.5))
            .build(base, train_set, &cfg)
            .unwrap()
            .into_network();
        (cdl, test_set.clone())
    }

    #[test]
    fn evaluation_produces_consistent_report() {
        let (cdl, test_set) = trained_cdl();
        let model = EnergyModel::cmos_45nm();
        let report = evaluate(&cdl, &test_set, &model).unwrap();

        // histogram accounts for every instance
        let total: usize = report.exit_histogram.iter().sum();
        assert_eq!(total, test_set.len());

        // per-digit counts sum to the set size
        let digit_total: usize = report.digits.iter().map(|d| d.count).sum();
        assert_eq!(digit_total, test_set.len());

        // normalized ops must lie in (0, worst-case/baseline]
        let worst = cdl.worst_case_ops().compute_ops() as f64 / report.baseline_ops as f64;
        assert!(report.normalized_ops > 0.0);
        assert!(report.normalized_ops <= worst + 1e-9);

        // early exits must actually save ops on a trained CDLN
        assert!(
            report.normalized_ops < 1.0,
            "normalized ops {} not < 1",
            report.normalized_ops
        );
        assert!(report.ops_improvement() > 1.0);

        // energy improvement exists but is compressed vs ops improvement
        assert!(report.energy_improvement() > 1.0);
        assert!(report.energy_improvement() <= report.ops_improvement() + 0.2);

        // accuracies are probabilities
        assert!((0.0..=1.0).contains(&report.accuracy));
        assert!((0.0..=1.0).contains(&report.baseline_accuracy));
        for d in &report.digits {
            assert!((0.0..=1.0).contains(&d.accuracy));
            assert!((0.0..=1.0).contains(&d.fc_fraction));
        }
    }

    #[test]
    fn digits_by_energy_benefit_sorted() {
        let (cdl, test_set) = trained_cdl();
        let report = evaluate(&cdl, &test_set, &EnergyModel::cmos_45nm()).unwrap();
        let order = report.digits_by_energy_benefit();
        assert_eq!(order.len(), report.digits.len());
        let energies: Vec<f64> = order
            .iter()
            .map(|&d| {
                report
                    .digits
                    .iter()
                    .find(|s| s.digit == d)
                    .unwrap()
                    .normalized_energy
            })
            .collect();
        for pair in energies.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
    }

    #[test]
    fn batched_evaluate_matches_per_image_reference() {
        let (cdl, test_set) = trained_cdl();
        let model = EnergyModel::cmos_45nm();
        let report = evaluate(&cdl, &test_set, &model).unwrap();

        // per-image reference for the integer-derived statistics
        let mut exit_histogram = vec![0usize; cdl.stage_count() + 1];
        let mut correct = 0usize;
        let mut baseline_correct = 0usize;
        let mut ops_sum = 0.0f64;
        for (img, &label) in test_set.images.iter().zip(&test_set.labels) {
            let out = cdl.classify(img).unwrap();
            exit_histogram[out.exit_stage] += 1;
            ops_sum += out.ops.compute_ops() as f64;
            if out.label == label {
                correct += 1;
            }
            let (base_label, _) = cdl.classify_baseline(img).unwrap();
            if base_label == label {
                baseline_correct += 1;
            }
        }
        let n = test_set.len() as f64;
        assert_eq!(report.exit_histogram, exit_histogram);
        assert_eq!(report.accuracy, correct as f64 / n);
        assert_eq!(report.baseline_accuracy, baseline_correct as f64 / n);
        let reference = ops_sum / n / cdl.baseline_ops().compute_ops() as f64;
        assert!((report.normalized_ops - reference).abs() < 1e-12);
    }

    #[test]
    fn empty_set_rejected() {
        let (cdl, _) = trained_cdl();
        assert!(evaluate(&cdl, &LabelledSet::default(), &EnergyModel::cmos_45nm()).is_err());
    }

    #[test]
    fn fc_fraction_consistency() {
        let (cdl, test_set) = trained_cdl();
        let report = evaluate(&cdl, &test_set, &EnergyModel::cmos_45nm()).unwrap();
        let total: usize = report.exit_histogram.iter().sum();
        let fc = *report.exit_histogram.last().unwrap();
        assert!((report.fc_fraction() - fc as f64 / total as f64).abs() < 1e-12);
    }

    #[test]
    fn baseline_total_ops_scales() {
        let (cdl, _) = trained_cdl();
        let one = baseline_total_ops(&cdl, 1);
        let ten = baseline_total_ops(&cdl, 10);
        assert_eq!(ten.compute_ops(), one.compute_ops() * 10);
    }
}
