//! Property-based tests for the CDL machinery.

use cdl_core::confidence::ConfidencePolicy;
use cdl_core::head::{LinearClassifier, LmsConfig};
use cdl_core::network::head_op_count;
use cdl_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every policy's decision is well-formed: the label indexes the score
    /// vector and the confidence is finite.
    #[test]
    fn decisions_are_well_formed(
        scores in proptest::collection::vec(-20.0f32..20.0, 2..16),
        threshold in 0.01f32..0.99,
    ) {
        let n = scores.len();
        let t = Tensor::from_vec(scores, &[n]).unwrap();
        for policy in [
            ConfidencePolicy::sigmoid_prob(threshold),
            ConfidencePolicy::max_prob(threshold),
            ConfidencePolicy::margin(threshold),
            ConfidencePolicy::entropy(threshold),
        ] {
            let d = policy.decide(&t).unwrap();
            prop_assert!(d.label < n);
            prop_assert!(d.confidence.is_finite());
        }
    }

    /// The chosen label is always the argmax of the scores, regardless of
    /// policy (the activation module picks thresholds, never labels).
    #[test]
    fn label_is_argmax(
        scores in proptest::collection::vec(-5.0f32..5.0, 2..12),
        threshold in 0.05f32..0.95,
    ) {
        let n = scores.len();
        let t = Tensor::from_vec(scores, &[n]).unwrap();
        let argmax = t.argmax().unwrap();
        for policy in [
            ConfidencePolicy::sigmoid_prob(threshold),
            ConfidencePolicy::max_prob(threshold),
            ConfidencePolicy::margin(threshold),
            ConfidencePolicy::entropy(threshold),
        ] {
            prop_assert_eq!(policy.decide(&t).unwrap().label, argmax);
        }
    }

    /// A dominant score always exits under every policy with a moderate
    /// threshold; a perfectly flat vector never does.
    #[test]
    fn extreme_score_vectors(n in 2usize..12, hot in 0usize..12) {
        let hot = hot % n;
        let mut v = vec![-8.0f32; n];
        v[hot] = 8.0;
        let peaked = Tensor::from_vec(v, &[n]).unwrap();
        let flat = Tensor::zeros(&[n]);
        for policy in [
            ConfidencePolicy::sigmoid_prob(0.6),
            ConfidencePolicy::max_prob(0.6),
            ConfidencePolicy::margin(0.5),
            ConfidencePolicy::entropy(0.2),
        ] {
            let d = policy.decide(&peaked).unwrap();
            prop_assert!(d.exit, "{policy}: dominant score must exit");
            prop_assert_eq!(d.label, hot);
            prop_assert!(!policy.decide(&flat).unwrap().exit, "{policy}: flat scores must cascade");
        }
    }

    /// LMS training monotonically reduces error on average across epochs
    /// for separable data (paper: heads converge to their global minimum).
    #[test]
    fn lms_converges_on_separable_blobs(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 12;
        let classes = 4;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..160 {
            let c = rng.random_range(0..classes);
            let v: Vec<f32> = (0..dim)
                .map(|d| if d == c * 3 { 2.0 } else { 0.0 } + rng.random_range(-0.4..0.4))
                .collect();
            xs.push(Tensor::from_vec(v, &[dim]).unwrap());
            ys.push(c);
        }
        let mut head = LinearClassifier::new(dim, classes, seed).unwrap();
        let short = head
            .clone_for_test()
            .train_lms(&xs, &ys, &LmsConfig { epochs: 2, ..LmsConfig::default() })
            .unwrap();
        let long = head
            .train_lms(&xs, &ys, &LmsConfig { epochs: 16, ..LmsConfig::default() })
            .unwrap();
        prop_assert!(long <= short + 1e-3, "mse should not rise: {short} -> {long}");
        prop_assert!(head.accuracy(&xs, &ys).unwrap() > 0.9);
    }

    /// Head op counts scale exactly with features × classes.
    #[test]
    fn head_ops_scale(features in 1usize..512, classes in 2usize..12) {
        let head = LinearClassifier::new(features, classes, 1).unwrap();
        let ops = head_op_count(&head);
        prop_assert_eq!(ops.macs, (features * classes) as u64);
        prop_assert!(ops.compute_ops() >= ops.macs);
        prop_assert!(ops.mem_reads as usize >= features * classes);
    }
}

/// Helper trait impl via extension — `LinearClassifier` is `Clone`, so this
/// just names the intent in the test above.
trait CloneForTest {
    fn clone_for_test(&self) -> Self;
}

impl CloneForTest for LinearClassifier {
    fn clone_for_test(&self) -> Self {
        self.clone()
    }
}
