//! Length-prefixed binary TCP edge over the replicated [`Router`].
//!
//! This is the process boundary of the serving stack: a [`TcpServer`]
//! accepts plain `std::net` connections and multiplexes **pipelined**
//! requests per connection onto the router, and a blocking [`TcpClient`]
//! speaks the same protocol from the other end. Everything below the edge
//! is unchanged — requests admitted over TCP go through the exact same
//! placement → gate → batcher → worker pipeline as in-process
//! [`Router::submit_with`] calls, and responses stay bit-identical to
//! [`cdl_core::network::CdlNetwork::classify_with_override`] (f32s travel
//! as IEEE-754 bit patterns, so the round trip is bit-exact; pinned by
//! `tests/net_loopback.rs`).
//!
//! # Wire protocol
//!
//! Every frame is a big-endian `u32` body length followed by the body
//! (at most [`MAX_FRAME`] bytes), encoded with the vendored [`bytes`]
//! [`Buf`]/[`BufMut`] traits.
//!
//! Request body:
//!
//! ```text
//! u64 request id        (client-chosen; echoed verbatim in the response)
//! u16 model-name length, then that many UTF-8 bytes
//! u8  option flags      (bit0: δ override follows, bit1: stage cap follows,
//!                        bit2: telemetry trace id follows, bit3: deadline
//!                        follows, bit4: priority class follows, bit5:
//!                        tenant id follows)
//! f32 δ override        (iff bit0)
//! u32 max stage         (iff bit1)
//! u64 trace id          (iff bit2; non-zero — zero is reserved for "no
//!                        trace" and rejected as malformed)
//! u64 deadline          (iff bit3; relative nanoseconds from admission —
//!                        the server sheds the request with an `Expired`
//!                        reply if it cannot dispatch in time)
//! u8  priority class    (iff bit4; 0 = high, 1 = normal, 2 = low —
//!                        anything else is rejected as malformed)
//! u32 tenant id         (iff bit5; counted against the server's
//!                        per-tenant in-flight quota, if one is set)
//! u8  rank, then u32 × rank dims, then f32 × volume payload
//! ```
//!
//! Every flag bit is backward compatible in both directions: old frames
//! (bits 2–5 clear) decode unchanged, and a request carrying only default
//! options costs no wire space beyond the flags byte. A traced request
//! continues the client's [`cdl_telemetry::TraceId`] on the server side —
//! the serving replica re-derives the sampling decision from the id
//! itself, so one trace covers the wire hop without any coordination.
//!
//! # Overload control at the edge
//!
//! Deadline, priority, and tenant travel with the request and are enforced
//! by the admission gate and batcher behind the edge, exactly as for
//! in-process submits. Refusals come back as typed error replies:
//! [`ErrorCode::Expired`] (deadline passed before dispatch — zero
//! evaluator ops were spent), [`ErrorCode::Shed`] (admission shed a
//! lower-priority request under load), and [`ErrorCode::Quota`] (the
//! tenant is at its in-flight cap). A request with no deadline is never
//! shed once admitted: a full gate **parks** the decoded request on its
//! connection (the tensor moves into the parked slot — reclaimed from
//! [`Router::try_submit_reclaim`], never cloned) and the owning poller
//! stops parsing that connection's stream until admission succeeds.
//! Parked admissions resume **event-driven**: the gate fires the router's
//! vacancy listeners when a slot frees, and each poller registers one
//! that wakes its eventfd whenever it has something parked — the retry
//! rides a wakeup, not a poll interval (a long 400 ms fallback poll
//! remains as a lost-wakeup safety net). Backpressure is per connection
//! and propagates to the peer as ordinary TCP flow control while every
//! other connection keeps flowing; a saturated gate can never wedge the
//! edge against shutdown because the poller keeps servicing its event
//! loop between retries.
//!
//! Response body:
//!
//! ```text
//! u64 request id
//! u8  status            (0 = OK, else an ErrorCode discriminant)
//! OK  → u32 label · u32 exit stage · f32 confidence · u64 × 6 op counts
//!       (macs, adds, compares, activations, mem reads, mem writes) ·
//!       u64 stages activated · u8 exited-early flag
//! err → u16 message length, then that many UTF-8 bytes
//! ```
//!
//! # Connection model
//!
//! The edge is a fixed-size **event loop**, not thread-per-connection: an
//! accept thread hands each socket (round-robin) to one of
//! [`EdgeConfig::pollers`] poller threads, and every poller multiplexes
//! its share of the connections over an edge-triggered readiness selector
//! (the vendored [`reactor`] crate — epoll on Linux, poll(2) elsewhere).
//! Total edge threads = pollers + 1, independent of connection count: 256
//! idle connections cost buffers, not threads (pinned by
//! `tests/net_soak.rs`).
//!
//! Each connection is a small state machine owned by exactly one poller:
//! a read buffer reassembles length-prefixed frames incrementally from
//! whatever the socket yields, decoded requests are submitted through the
//! router's placement policy, and completed responses are serialised into
//! a write buffer drained as fast as the socket accepts them. Completion
//! crosses threads without parking anyone: when a worker settles a
//! routed request's [`Pending`], a registered waker enqueues the
//! (connection, sequence) pair and tickles the owning poller's
//! [`reactor::Waker`] (an eventfd on Linux), so responses stream back
//! with readiness latency instead of the old 50 ms poll slices. Because
//! submission and completion are decoupled, a client may pipeline
//! arbitrarily many requests before reading a single response; responses
//! can complete out of submission order (different replicas, different
//! batches) and carry the request id so the client can match them up.
//!
//! A client that disconnects mid-request only cancels **its own** pending
//! work: the poller sees the hangup, drops the connection's state, and
//! the orphaned [`Pending`] handles cancel in the pipeline (recorded as
//! `cancelled` in the replica's metrics) while the shard keeps serving
//! everyone else.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Buf, BufMut};
use cdl_core::network::CdlOutput;
use cdl_hw::OpCount;
use cdl_telemetry::TraceId;
use cdl_tensor::Tensor;
use reactor::{Events, Interest, Poll, Token, Waker};

use crate::config::{EdgeConfig, Priority, SubmitOptions};
use crate::error::ServeError;
use crate::pending::Pending;
use crate::router::{ModelId, Router};

/// Hard cap on a frame body, request or response: 16 MiB — comfortably
/// above any 28×28 batch-of-one payload, far below anything that could
/// be a desynchronised stream misread as a length.
pub const MAX_FRAME: u32 = 16 << 20;

/// Poll timeout while a poller has a parked (gate-full) request. The
/// normal resume path is event-driven — the admission gate fires the
/// router's vacancy listeners when capacity frees, and each poller's
/// listener wakes its eventfd — so this is only a safety net against a
/// lost wakeup, not a retry cadence (it was a 1 ms poll before the
/// vacancy hook existed).
const PARKED_FALLBACK: Duration = Duration::from_millis(400);

const FLAG_DELTA: u8 = 1 << 0;
const FLAG_MAX_STAGE: u8 = 1 << 1;
const FLAG_TRACE: u8 = 1 << 2;
const FLAG_DEADLINE: u8 = 1 << 3;
const FLAG_PRIORITY: u8 = 1 << 4;
const FLAG_TENANT: u8 = 1 << 5;

const KNOWN_FLAGS: u8 =
    FLAG_DELTA | FLAG_MAX_STAGE | FLAG_TRACE | FLAG_DEADLINE | FLAG_PRIORITY | FLAG_TENANT;

/// Request id used on error replies for frames too corrupt to carry one.
const NO_ID: u64 = u64::MAX;

/// Typed error category carried in a response frame's status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// No replica set serves the requested model name.
    UnknownModel = 1,
    /// The per-request override was rejected at admission.
    BadOptions = 2,
    /// The placed replica's queue was at capacity.
    Full = 3,
    /// The router is shutting down.
    ShuttingDown = 4,
    /// The pipeline dropped the request without evaluating it.
    Disconnected = 5,
    /// The evaluator failed on the batch containing this request.
    Eval = 6,
    /// The request frame could not be decoded.
    Malformed = 7,
    /// The request's deadline passed before dispatch; no evaluator ops
    /// were spent on it.
    Expired = 8,
    /// Admission shed the request under load (lower priority classes are
    /// shed first).
    Shed = 9,
    /// The request's tenant is at its in-flight quota.
    Quota = 10,
}

impl ErrorCode {
    fn from_status(status: u8) -> Option<ErrorCode> {
        match status {
            1 => Some(ErrorCode::UnknownModel),
            2 => Some(ErrorCode::BadOptions),
            3 => Some(ErrorCode::Full),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::Disconnected),
            6 => Some(ErrorCode::Eval),
            7 => Some(ErrorCode::Malformed),
            8 => Some(ErrorCode::Expired),
            9 => Some(ErrorCode::Shed),
            10 => Some(ErrorCode::Quota),
            _ => None,
        }
    }
}

impl From<&ServeError> for ErrorCode {
    fn from(e: &ServeError) -> ErrorCode {
        match e {
            ServeError::Full => ErrorCode::Full,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::Disconnected => ErrorCode::Disconnected,
            ServeError::Eval(_) => ErrorCode::Eval,
            ServeError::BadOptions(_) | ServeError::BadConfig(_) => ErrorCode::BadOptions,
            ServeError::UnknownModel(_) => ErrorCode::UnknownModel,
            ServeError::Expired => ErrorCode::Expired,
            ServeError::Shed(_) => ErrorCode::Shed,
            ServeError::QuotaExceeded(_) => ErrorCode::Quota,
            // a bad tensor is a malformed request as far as the wire is
            // concerned: the frame decoded but the payload can't be served
            ServeError::BadInput(_) => ErrorCode::Malformed,
            // injected faults surface on the wire as evaluation failures:
            // the client sees the same category a real replica fault would
            ServeError::Fault(_) => ErrorCode::Eval,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::UnknownModel => "unknown model",
            ErrorCode::BadOptions => "bad options",
            ErrorCode::Full => "queue full",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Disconnected => "disconnected",
            ErrorCode::Eval => "evaluation failed",
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::Expired => "deadline expired",
            ErrorCode::Shed => "shed under load",
            ErrorCode::Quota => "tenant quota exceeded",
        };
        f.write_str(name)
    }
}

/// The error half of a response frame: a typed category plus the server's
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Typed category (drives client-side handling: retry on
    /// [`ErrorCode::Full`], fail fast on [`ErrorCode::UnknownModel`], …).
    pub code: ErrorCode,
    /// Server-side detail, for logs and operators.
    pub message: String,
}

impl std::fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ErrorReply {}

// ---------------------------------------------------------------------------
// frame codec
// ---------------------------------------------------------------------------

fn malformed(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Appends `body` as one length-prefixed frame to `out`.
fn put_frame(out: &mut Vec<u8>, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME as usize {
        return Err(malformed(format!(
            "frame body of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
            body.len()
        )));
    }
    out.put_u32(body.len() as u32);
    out.put_slice(body);
    Ok(())
}

fn encode_request(
    out: &mut Vec<u8>,
    id: u64,
    model: &str,
    options: SubmitOptions,
    trace: Option<TraceId>,
    input: &Tensor,
) -> io::Result<()> {
    if model.len() > u16::MAX as usize {
        return Err(malformed("model name longer than u16::MAX bytes"));
    }
    if input.dims().len() > u8::MAX as usize {
        return Err(malformed("tensor rank exceeds u8::MAX"));
    }
    let mut body = Vec::with_capacity(32 + model.len() + 4 * input.data().len());
    body.put_u64(id);
    body.put_u16(model.len() as u16);
    body.put_slice(model.as_bytes());
    let mut flags = 0u8;
    if options.delta.is_some() {
        flags |= FLAG_DELTA;
    }
    if options.max_stage.is_some() {
        flags |= FLAG_MAX_STAGE;
    }
    if trace.is_some() {
        flags |= FLAG_TRACE;
    }
    let deadline_nanos = options
        .deadline
        .map(|d| u64::try_from(d.as_nanos()).map_err(|_| malformed("deadline exceeds u64 nanos")))
        .transpose()?;
    if deadline_nanos.is_some() {
        flags |= FLAG_DEADLINE;
    }
    if options.priority != Priority::default() {
        flags |= FLAG_PRIORITY;
    }
    if options.tenant.is_some() {
        flags |= FLAG_TENANT;
    }
    body.put_u8(flags);
    if let Some(delta) = options.delta {
        body.put_f32(delta);
    }
    if let Some(max_stage) = options.max_stage {
        body.put_u32(u32::try_from(max_stage).map_err(|_| malformed("max_stage exceeds u32"))?);
    }
    if let Some(trace) = trace {
        body.put_u64(trace.raw());
    }
    if let Some(nanos) = deadline_nanos {
        body.put_u64(nanos);
    }
    if flags & FLAG_PRIORITY != 0 {
        body.put_u8(options.priority.class() as u8);
    }
    if let Some(tenant) = options.tenant {
        body.put_u32(tenant);
    }
    body.put_u8(input.dims().len() as u8);
    for &d in input.dims() {
        body.put_u32(u32::try_from(d).map_err(|_| malformed("tensor dim exceeds u32"))?);
    }
    for &v in input.data() {
        body.put_f32(v);
    }
    put_frame(out, &body)
}

struct RequestFrame {
    id: u64,
    model: String,
    options: SubmitOptions,
    trace: Option<TraceId>,
    input: Tensor,
}

/// Pulls `n` checked bytes-worth of remaining capacity or fails.
fn need(cursor: &&[u8], n: usize, what: &str) -> io::Result<()> {
    if cursor.remaining() < n {
        return Err(malformed(format!("truncated frame: {what}")));
    }
    Ok(())
}

fn decode_request(body: &[u8]) -> io::Result<RequestFrame> {
    let mut cursor = body;
    need(&cursor, 8, "request id")?;
    let id = cursor.get_u64();
    need(&cursor, 2, "model-name length")?;
    let name_len = cursor.get_u16() as usize;
    need(&cursor, name_len, "model name")?;
    let mut name = vec![0u8; name_len];
    cursor.copy_to_slice(&mut name);
    let model = String::from_utf8(name).map_err(|_| malformed("model name is not valid UTF-8"))?;
    need(&cursor, 1, "option flags")?;
    let flags = cursor.get_u8();
    if flags & !KNOWN_FLAGS != 0 {
        return Err(malformed(format!("unknown option flags {flags:#04x}")));
    }
    let mut options = SubmitOptions::default();
    if flags & FLAG_DELTA != 0 {
        need(&cursor, 4, "delta override")?;
        options.delta = Some(cursor.get_f32());
    }
    if flags & FLAG_MAX_STAGE != 0 {
        need(&cursor, 4, "max-stage cap")?;
        options.max_stage = Some(cursor.get_u32() as usize);
    }
    let trace =
        if flags & FLAG_TRACE != 0 {
            need(&cursor, 8, "trace id")?;
            Some(TraceId::from_raw(cursor.get_u64()).ok_or_else(|| {
                malformed("zero trace id (the trace flag promises a non-zero id)")
            })?)
        } else {
            None
        };
    if flags & FLAG_DEADLINE != 0 {
        need(&cursor, 8, "deadline")?;
        options.deadline = Some(Duration::from_nanos(cursor.get_u64()));
    }
    if flags & FLAG_PRIORITY != 0 {
        need(&cursor, 1, "priority class")?;
        let class = cursor.get_u8();
        options.priority = Priority::from_class(class)
            .ok_or_else(|| malformed(format!("unknown priority class {class}")))?;
    }
    if flags & FLAG_TENANT != 0 {
        need(&cursor, 4, "tenant id")?;
        options.tenant = Some(cursor.get_u32());
    }
    need(&cursor, 1, "tensor rank")?;
    let rank = cursor.get_u8() as usize;
    need(&cursor, 4 * rank, "tensor dims")?;
    let dims: Vec<usize> = (0..rank).map(|_| cursor.get_u32() as usize).collect();
    let volume: usize = dims
        .iter()
        .try_fold(1usize, |acc, &d| {
            acc.checked_mul(d)
                .filter(|&v| v <= (MAX_FRAME as usize) / 4)
        })
        .ok_or_else(|| malformed("tensor volume overflows the frame cap"))?;
    need(&cursor, 4 * volume, "tensor payload")?;
    let data: Vec<f32> = (0..volume).map(|_| cursor.get_f32()).collect();
    if cursor.remaining() != 0 {
        return Err(malformed(format!(
            "{} trailing bytes after tensor payload",
            cursor.remaining()
        )));
    }
    let input =
        Tensor::from_vec(data, &dims).map_err(|e| malformed(format!("bad tensor shape: {e}")))?;
    Ok(RequestFrame {
        id,
        model,
        options,
        trace,
        input,
    })
}

fn encode_response(
    out: &mut Vec<u8>,
    id: u64,
    result: &Result<CdlOutput, ErrorReply>,
) -> io::Result<()> {
    let mut body = Vec::with_capacity(96);
    body.put_u64(id);
    match result {
        Ok(output) => {
            body.put_u8(0);
            body.put_u32(u32::try_from(output.label).map_err(|_| malformed("label exceeds u32"))?);
            body.put_u32(
                u32::try_from(output.exit_stage)
                    .map_err(|_| malformed("exit stage exceeds u32"))?,
            );
            body.put_f32(output.confidence);
            body.put_u64(output.ops.macs);
            body.put_u64(output.ops.adds);
            body.put_u64(output.ops.compares);
            body.put_u64(output.ops.activations);
            body.put_u64(output.ops.mem_reads);
            body.put_u64(output.ops.mem_writes);
            body.put_u64(output.stages_activated);
            body.put_u8(output.exited_early as u8);
        }
        Err(reply) => {
            body.put_u8(reply.code as u8);
            let msg = reply.message.as_bytes();
            let take = msg.len().min(u16::MAX as usize);
            body.put_u16(take as u16);
            body.put_slice(&msg[..take]);
        }
    }
    put_frame(out, &body)
}

fn decode_response(body: &[u8]) -> io::Result<(u64, Result<CdlOutput, ErrorReply>)> {
    let mut cursor = body;
    need(&cursor, 9, "response header")?;
    let id = cursor.get_u64();
    let status = cursor.get_u8();
    if status == 0 {
        need(&cursor, 4 + 4 + 4 + 8 * 7 + 1, "output payload")?;
        let output = CdlOutput {
            label: cursor.get_u32() as usize,
            exit_stage: cursor.get_u32() as usize,
            confidence: cursor.get_f32(),
            ops: OpCount {
                macs: cursor.get_u64(),
                adds: cursor.get_u64(),
                compares: cursor.get_u64(),
                activations: cursor.get_u64(),
                mem_reads: cursor.get_u64(),
                mem_writes: cursor.get_u64(),
            },
            stages_activated: cursor.get_u64(),
            exited_early: cursor.get_u8() != 0,
        };
        if cursor.remaining() != 0 {
            return Err(malformed("trailing bytes after output payload"));
        }
        Ok((id, Ok(output)))
    } else {
        let code = ErrorCode::from_status(status)
            .ok_or_else(|| malformed(format!("unknown status byte {status}")))?;
        need(&cursor, 2, "error-message length")?;
        let msg_len = cursor.get_u16() as usize;
        need(&cursor, msg_len, "error message")?;
        let mut msg = vec![0u8; msg_len];
        cursor.copy_to_slice(&mut msg);
        if cursor.remaining() != 0 {
            return Err(malformed("trailing bytes after error message"));
        }
        let message =
            String::from_utf8(msg).map_err(|_| malformed("error message is not valid UTF-8"))?;
        Ok((id, Err(ErrorReply { code, message })))
    }
}

// ---------------------------------------------------------------------------
// server: accept thread + poller event loops
// ---------------------------------------------------------------------------

/// Token reserved for each poller's [`Waker`]; connection tokens start
/// at 1 and are never reused within a poller.
const WAKER_TOKEN: Token = Token(0);

/// Exponential backoff for a failing `accept()` loop: a persistent
/// accept error (fd exhaustion, a torn-down listener) must never
/// busy-spin a core. Consecutive failures double the delay from
/// `initial` up to `max`; any successful accept resets the streak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AcceptBackoff {
    initial: Duration,
    max: Duration,
    /// Delay for the next failure; `None` while accepts are succeeding.
    next: Option<Duration>,
}

impl AcceptBackoff {
    fn new(initial: Duration, max: Duration) -> AcceptBackoff {
        AcceptBackoff {
            initial,
            max,
            next: None,
        }
    }

    /// A successful accept ends the error streak.
    fn on_success(&mut self) {
        self.next = None;
    }

    /// How long to sleep before retrying a failed accept.
    fn on_error(&mut self) -> Duration {
        let delay = self.next.unwrap_or(self.initial).min(self.max);
        self.next = Some((delay * 2).min(self.max));
        delay
    }
}

fn to_reply(e: &ServeError) -> ErrorReply {
    ErrorReply {
        code: ErrorCode::from(e),
        message: e.to_string(),
    }
}

/// A decoded request that admission refused with [`ServeError::Full`]:
/// the tensor came back out of [`Router::try_submit_reclaim`] by move
/// and waits here until the gate has room. While a request is parked its
/// connection's stream is not parsed further — that is the edge's
/// per-connection backpressure.
struct Parked {
    wire_id: u64,
    model: ModelId,
    options: SubmitOptions,
    trace: Option<TraceId>,
    input: Tensor,
}

/// Per-connection state machine, owned by exactly one poller thread.
struct Conn {
    stream: TcpStream,
    /// Frame-reassembly buffer: bytes read off the socket but not yet
    /// parsed into complete frames.
    read_buf: Vec<u8>,
    /// Edge-triggered read readiness: set by readable/hangup events (and
    /// on registration), cleared only when a read drains to `WouldBlock`.
    readable: bool,
    /// The read side saw EOF or an error; drop the connection after the
    /// current service pass (its inflight handles cancel).
    peer_gone: bool,
    /// Responses serialised but not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// The last write hit `WouldBlock`; wait for the writable edge.
    write_blocked: bool,
    /// A bogus frame length desynced the stream: flush what's queued,
    /// then hang up.
    closing: bool,
    /// Routed requests awaiting completion: poller-local sequence →
    /// (wire id, handle). Dropping an entry cancels that request.
    inflight: HashMap<u64, (u64, Pending)>,
    next_seq: u64,
    parked: Option<Parked>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            // service the socket once on registration: bytes may have
            // arrived before the fd joined the selector
            readable: true,
            peer_gone: false,
            write_buf: Vec::new(),
            write_pos: 0,
            write_blocked: false,
            closing: false,
            inflight: HashMap::new(),
            next_seq: 0,
            parked: None,
        }
    }
}

fn push_error(conn: &mut Conn, wire_id: u64, code: ErrorCode, message: String) {
    push_reply(conn, wire_id, ErrorReply { code, message });
}

fn push_reply(conn: &mut Conn, wire_id: u64, reply: ErrorReply) {
    // encoding can only fail on a >MAX_FRAME body, impossible for an
    // error reply (messages are clamped to u16::MAX bytes)
    let _ = encode_response(&mut conn.write_buf, wire_id, &Err(reply));
}

/// Drains the write buffer into the socket until empty or `WouldBlock`.
/// Returns `false` on a write error (the connection is unusable).
fn flush(conn: &mut Conn) -> bool {
    if conn.write_blocked {
        return true; // nothing to do until the writable edge arrives
    }
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.write_blocked = true;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.write_pos == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    true
}

/// Moves a settled request's response into the connection's write
/// buffer. A notice for an unsettled handle (impossible today, but cheap
/// to tolerate) re-inserts it rather than dropping — dropping would
/// cancel a live request.
fn complete(conn: &mut Conn, seq: u64) {
    let Some((wire_id, pending)) = conn.inflight.remove(&seq) else {
        return;
    };
    match pending.try_claim() {
        Some(result) => {
            let result = result.map_err(|e| to_reply(&e));
            let _ = encode_response(&mut conn.write_buf, wire_id, &result);
        }
        None => {
            conn.inflight.insert(seq, (wire_id, pending));
        }
    }
}

/// Tries to route one decoded request. On success the [`Pending`] is
/// registered with a waker that notifies the owning poller and parked in
/// `inflight`; a typed refusal (Shed, Quota, BadInput, …) is an answer,
/// not congestion, and becomes an error reply; [`ServeError::Full`]
/// hands the request back (tensor reclaimed by move, never cloned) for
/// parking.
fn admit(
    conn: &mut Conn,
    key: usize,
    router: &Router,
    done_tx: &Sender<(usize, u64)>,
    waker: &Arc<Waker>,
    parked: Parked,
) -> Option<Parked> {
    let Parked {
        wire_id,
        model,
        options,
        trace,
        input,
    } = parked;
    match router.try_submit_reclaim(model, input, options, trace) {
        Ok(pending) => {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            let tx = done_tx.clone();
            let wake = Arc::clone(waker);
            pending.set_waker(move || {
                // both halves are best-effort: at shutdown the poller (and
                // its channel) may already be gone
                let _ = tx.send((key, seq));
                let _ = wake.wake();
            });
            conn.inflight.insert(seq, (wire_id, pending));
            None
        }
        Err((ServeError::Full, Some(input))) => Some(Parked {
            wire_id,
            model,
            options,
            trace,
            input,
        }),
        Err((e, _)) => {
            push_reply(conn, wire_id, to_reply(&e));
            None
        }
    }
}

/// Parses every complete frame in the read buffer, stopping early when
/// the stream desyncs (bogus length → goodbye, then hang up) or
/// admission parks a request (backpressure: the rest of the buffer
/// waits).
fn parse_frames(
    conn: &mut Conn,
    key: usize,
    router: &Router,
    done_tx: &Sender<(usize, u64)>,
    waker: &Arc<Waker>,
) {
    let mut consumed = 0;
    while !conn.closing && conn.parked.is_none() {
        let rest = &conn.read_buf[consumed..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_be_bytes(rest[..4].try_into().unwrap());
        if len == 0 || len > MAX_FRAME {
            // the stream can't be trusted past a bogus length: report and
            // hang up rather than misparse whatever follows. Pipelined
            // requests still pending are cancelled *now* — the goodbye is
            // only sent on an otherwise-quiet connection; with work still
            // in flight the peer just sees the close (it desynced the
            // stream, it cannot be trusted to parse a frame either)
            if conn.inflight.is_empty() {
                push_error(
                    conn,
                    NO_ID,
                    ErrorCode::Malformed,
                    format!("frame length {len} outside 1..={MAX_FRAME}"),
                );
            }
            conn.inflight.clear();
            conn.closing = true;
            break;
        }
        let len = len as usize;
        if rest.len() - 4 < len {
            break; // partial body: wait for more bytes
        }
        // the frame boundary itself was sound, so the connection survives
        // a malformed body: reply under the id the frame claimed (its
        // first 8 bytes) and keep parsing
        let body = &conn.read_buf[consumed + 4..consumed + 4 + len];
        let claimed_id = if body.len() >= 8 {
            u64::from_be_bytes(body[..8].try_into().unwrap())
        } else {
            NO_ID
        };
        let decoded = decode_request(body);
        consumed += 4 + len;
        match decoded {
            Err(e) => push_error(conn, claimed_id, ErrorCode::Malformed, e.to_string()),
            Ok(frame) => match router.model_id(&frame.model) {
                None => push_error(
                    conn,
                    frame.id,
                    ErrorCode::UnknownModel,
                    format!("no replica set serves {:?}", frame.model),
                ),
                Some(model) => {
                    let request = Parked {
                        wire_id: frame.id,
                        model,
                        options: frame.options,
                        trace: frame.trace,
                        input: frame.input,
                    };
                    conn.parked = admit(conn, key, router, done_tx, waker, request);
                }
            },
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }
}

/// One service pass over a connection: retry a parked admission, parse
/// and submit complete frames, read more while the socket is ready,
/// flush the write buffer. Returns `false` when the connection should be
/// dropped (peer gone, write failure, or a desync goodbye fully
/// flushed); dropping the [`Conn`] cancels its inflight handles.
fn service(
    conn: &mut Conn,
    key: usize,
    router: &Router,
    done_tx: &Sender<(usize, u64)>,
    waker: &Arc<Waker>,
    scratch: &mut [u8],
) -> bool {
    if let Some(parked) = conn.parked.take() {
        conn.parked = admit(conn, key, router, done_tx, waker, parked);
    }
    while !conn.closing && conn.parked.is_none() && !conn.peer_gone {
        parse_frames(conn, key, router, done_tx, waker);
        if conn.closing || conn.parked.is_some() || !conn.readable {
            break;
        }
        match conn.stream.read(scratch) {
            // even a clean close means nobody will read further
            // responses: the connection is done
            Ok(0) => conn.peer_gone = true,
            Ok(n) => conn.read_buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => conn.readable = false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => conn.peer_gone = true,
        }
    }
    if conn.peer_gone {
        return false;
    }
    if !flush(conn) {
        return false;
    }
    // a desynced connection hangs up once its goodbye is on the wire
    !(conn.closing && conn.write_pos == conn.write_buf.len())
}

/// One poller thread: owns a [`Poll`] instance and the full state of the
/// connections the accept thread assigned to it.
struct Poller {
    poll: Poll,
    waker: Arc<Waker>,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    /// True while any of this poller's connections has a parked (gate-
    /// full) admission — read by the router's gate-vacancy listener to
    /// decide whether a freed slot should wake this poller's eventfd.
    parked: Arc<AtomicBool>,
    /// New sockets handed over by the accept thread.
    reg_rx: Receiver<TcpStream>,
    /// Completion notices from request wakers: (connection token, seq).
    done_tx: Sender<(usize, u64)>,
    done_rx: Receiver<(usize, u64)>,
}

impl Poller {
    fn run(self) {
        let mut conns: HashMap<usize, Conn> = HashMap::new();
        let mut next_token = WAKER_TOKEN.0 + 1;
        let mut events = Events::with_capacity(256);
        let mut scratch = vec![0u8; 64 * 1024];
        let mut touched: Vec<usize> = Vec::new();
        loop {
            // with a parked request, publish the fact so a gate-vacancy
            // wakeup reaches this poller, and bound the wait as a safety
            // net against a wakeup lost in the park/publish window
            let any_parked = conns.values().any(|c| c.parked.is_some());
            self.parked.store(any_parked, Ordering::Relaxed);
            let timeout = any_parked.then_some(PARKED_FALLBACK);
            if self.poll.wait(&mut events, timeout).is_err() {
                break; // fatal selector failure: drop every connection
            }
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            touched.clear();
            for event in events.iter() {
                if event.token() == WAKER_TOKEN {
                    self.waker.reset();
                    continue;
                }
                let key = event.token().0;
                if let Some(conn) = conns.get_mut(&key) {
                    if event.is_readable() || event.is_hangup() || event.is_error() {
                        conn.readable = true;
                    }
                    if event.is_writable() {
                        conn.write_blocked = false;
                    }
                    touched.push(key);
                }
            }
            while let Ok(stream) = self.reg_rx.try_recv() {
                if stream.set_nonblocking(true).is_err() {
                    continue; // never registered; the socket just closes
                }
                let key = next_token;
                if self
                    .poll
                    .register(
                        stream.as_raw_fd(),
                        Token(key),
                        Interest::READABLE | Interest::WRITABLE,
                    )
                    .is_err()
                {
                    continue;
                }
                next_token += 1;
                conns.insert(key, Conn::new(stream));
                touched.push(key);
            }
            while let Ok((key, seq)) = self.done_rx.try_recv() {
                if let Some(conn) = conns.get_mut(&key) {
                    complete(conn, seq);
                    touched.push(key);
                }
            }
            // parked admissions retry on every pass; a gate-vacancy
            // wakeup (or the PARKED_FALLBACK timeout) guarantees a pass
            // happens as soon as capacity frees
            for (key, conn) in &conns {
                if conn.parked.is_some() {
                    touched.push(*key);
                }
            }
            touched.sort_unstable();
            touched.dedup();
            for &key in &touched {
                let Some(conn) = conns.get_mut(&key) else {
                    continue;
                };
                let alive = service(
                    conn,
                    key,
                    &self.router,
                    &self.done_tx,
                    &self.waker,
                    &mut scratch,
                );
                if !alive {
                    if let Some(conn) = conns.remove(&key) {
                        let _ = self.poll.deregister(conn.stream.as_raw_fd());
                        // dropping `conn` drops its inflight Pendings,
                        // cancelling this connection's outstanding work
                    }
                }
            }
        }
        // shutdown (or selector failure): flush responses that already
        // completed, then drop every connection — inflight handles cancel
        // in the pipeline, parked requests go unanswered (the peer sees
        // the close)
        for (_, mut conn) in conns.drain() {
            let _ = flush(&mut conn);
        }
    }
}

/// Event-loop TCP front door over a [`Router`]: accepts connections and
/// serves the [module-level wire protocol](self) until dropped or
/// [`TcpServer::shutdown`].
///
/// The server shares the router (`Arc`) and never consumes it — shut the
/// edge down first, then [`Router::shutdown`] to drain and collect final
/// metrics:
///
/// ```ignore
/// let router = Arc::new(Router::start(specs)?);
/// let edge = TcpServer::bind("127.0.0.1:0", Arc::clone(&router))?;
/// let addr = edge.local_addr();
/// // … clients connect to `addr` …
/// edge.shutdown();
/// let metrics = Arc::try_unwrap(router).unwrap().shutdown();
/// ```
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pollers: Vec<PollerHandle>,
}

#[derive(Debug)]
struct PollerHandle {
    reg_tx: Sender<TcpStream>,
    waker: Arc<Waker>,
    thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) with the default
    /// [`EdgeConfig`] and starts accepting connections immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, router: Arc<Router>) -> io::Result<TcpServer> {
        TcpServer::bind_with(addr, router, EdgeConfig::default())
    }

    /// [`TcpServer::bind`] with an explicit [`EdgeConfig`] — poller-pool
    /// size and accept-backoff policy.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; an invalid config surfaces as
    /// [`io::ErrorKind::InvalidInput`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        router: Arc<Router>,
        config: EdgeConfig,
    ) -> io::Result<TcpServer> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut pollers = Vec::with_capacity(config.pollers);
        for _ in 0..config.pollers {
            let poll = Poll::new()?;
            let waker = Arc::new(Waker::new(&poll, WAKER_TOKEN)?);
            let parked = Arc::new(AtomicBool::new(false));
            let (reg_tx, reg_rx) = mpsc::channel();
            let (done_tx, done_rx) = mpsc::channel();
            // event-driven resume for parked admissions: when any
            // replica's gate frees capacity, wake this poller — but only
            // if it actually has something parked, so an idle edge costs
            // the gate one relaxed load per release, not an eventfd write
            {
                let waker = Arc::clone(&waker);
                let parked = Arc::clone(&parked);
                router.on_gate_vacancy(Arc::new(move || {
                    if parked.load(Ordering::Relaxed) {
                        let _ = waker.wake();
                    }
                }));
            }
            let poller = Poller {
                poll,
                waker: Arc::clone(&waker),
                router: Arc::clone(&router),
                stop: Arc::clone(&stop),
                parked,
                reg_rx,
                done_tx,
                done_rx,
            };
            let thread = std::thread::spawn(move || poller.run());
            pollers.push(PollerHandle {
                reg_tx,
                waker,
                thread: Some(thread),
            });
        }
        let accept = {
            let stop = Arc::clone(&stop);
            let handoff: Vec<(Sender<TcpStream>, Arc<Waker>)> = pollers
                .iter()
                .map(|p| (p.reg_tx.clone(), Arc::clone(&p.waker)))
                .collect();
            let mut backoff =
                AcceptBackoff::new(config.accept_backoff_initial, config.accept_backoff_max);
            std::thread::spawn(move || {
                let mut next = 0usize;
                loop {
                    let (stream, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(_) => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            // a persistent accept failure (fd exhaustion,
                            // EMFILE) must not busy-spin a core: back off
                            // exponentially, re-checking stop in short
                            // slices so shutdown stays prompt
                            let mut left = backoff.on_error();
                            while !left.is_zero() {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                                let slice = left.min(Duration::from_millis(25));
                                std::thread::sleep(slice);
                                left -= slice;
                            }
                            continue;
                        }
                    };
                    if stop.load(Ordering::Relaxed) {
                        return; // the shutdown self-connect, or a late client
                    }
                    backoff.on_success();
                    // round-robin handoff to a poller's event loop
                    let (reg_tx, waker) = &handoff[next % handoff.len()];
                    next = next.wrapping_add(1);
                    if reg_tx.send(stream).is_ok() {
                        let _ = waker.wake();
                    }
                }
            })
        };
        Ok(TcpServer {
            local_addr,
            stop,
            accept: Some(accept),
            pollers,
        })
    }

    /// The bound address — the port to hand to [`TcpClient::connect`]
    /// after binding port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects every connection, and joins the
    /// accept and poller threads. Responses already completed are
    /// flushed; requests still in flight are cancelled (their submitters
    /// see the connection close). The shared router keeps running.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            // wake the blocking accept() with a throwaway connection
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        for poller in &mut self.pollers {
            let _ = poller.waker.wake();
            if let Some(thread) = poller.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------------
// client
// ---------------------------------------------------------------------------

/// Blocking client for the [module-level wire protocol](self).
///
/// [`TcpClient::submit`] and [`TcpClient::recv`] are decoupled so a
/// client can pipeline: write a burst of requests, then match the
/// responses (which may arrive out of submission order) by id.
/// [`TcpClient::call`] is the one-in-one-out convenience wrapper.
#[derive(Debug)]
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl TcpClient {
    /// Connects to a [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Sends one request (model by registered name, per-request
    /// [`SubmitOptions`]) and returns the request id to match the
    /// response with. Does **not** wait for the response — pipeline as
    /// many submits as you like before receiving.
    ///
    /// # Errors
    ///
    /// Fails on unencodable inputs (oversized name, rank, or payload) or
    /// a broken connection.
    pub fn submit(
        &mut self,
        model: &str,
        input: &Tensor,
        options: SubmitOptions,
    ) -> io::Result<u64> {
        self.submit_inner(model, input, options, None)
    }

    /// [`TcpClient::submit`] carrying a telemetry [`TraceId`], so the
    /// server-side lifecycle (admission through reply) is recorded under
    /// an id the client chose — allocate one with [`TraceId::next`] and
    /// correlate client-observed latency with the server's span drain.
    /// Costs 8 bytes on the wire; untraced submits cost nothing.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::submit`].
    pub fn submit_with_trace(
        &mut self,
        model: &str,
        input: &Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> io::Result<u64> {
        self.submit_inner(model, input, options, Some(trace))
    }

    fn submit_inner(
        &mut self,
        model: &str,
        input: &Tensor,
        options: SubmitOptions,
        trace: Option<TraceId>,
    ) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let mut frame = Vec::new();
        encode_request(&mut frame, id, model, options, trace, input)?;
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Blocks for the next response frame: the request id it answers,
    /// and either the bit-exact [`CdlOutput`] or the server's typed
    /// [`ErrorReply`].
    ///
    /// # Errors
    ///
    /// Fails when the connection closes or the stream desyncs.
    pub fn recv(&mut self) -> io::Result<(u64, Result<CdlOutput, ErrorReply>)> {
        let mut header = [0u8; 4];
        self.reader.read_exact(&mut header)?;
        let len = u32::from_be_bytes(header);
        if len == 0 || len > MAX_FRAME {
            return Err(malformed(format!(
                "response frame length {len} outside 1..={MAX_FRAME}"
            )));
        }
        let mut body = vec![0u8; len as usize];
        self.reader.read_exact(&mut body)?;
        decode_response(&body)
    }

    /// Submit-then-receive for the non-pipelined case.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::submit`] and [`TcpClient::recv`], plus a protocol
    /// error if the server answers a different request id (impossible
    /// unless submits and receives were interleaved).
    pub fn call(
        &mut self,
        model: &str,
        input: &Tensor,
        options: SubmitOptions,
    ) -> io::Result<Result<CdlOutput, ErrorReply>> {
        let id = self.submit(model, input, options)?;
        let (answered, result) = self.recv()?;
        if answered != id {
            return Err(malformed(format!(
                "response for request {answered} while awaiting {id}"
            )));
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The accept loop's retry policy: consecutive failures double the
    /// delay from the initial value to the ceiling (never beyond), and a
    /// single successful accept resets the streak. (Regression: the old
    /// accept loop retried a failing `accept()` with a bare `continue`,
    /// busy-spinning a core for as long as the error persisted.)
    #[test]
    fn accept_backoff_doubles_to_the_cap_and_resets_on_success() {
        let mut backoff = AcceptBackoff::new(Duration::from_millis(1), Duration::from_millis(8));
        assert_eq!(backoff.on_error(), Duration::from_millis(1));
        assert_eq!(backoff.on_error(), Duration::from_millis(2));
        assert_eq!(backoff.on_error(), Duration::from_millis(4));
        assert_eq!(backoff.on_error(), Duration::from_millis(8));
        assert_eq!(backoff.on_error(), Duration::from_millis(8), "capped");
        backoff.on_success();
        assert_eq!(
            backoff.on_error(),
            Duration::from_millis(1),
            "a successful accept resets the streak"
        );
        // a ceiling below the initial delay clamps immediately rather
        // than sleeping longer than configured
        let mut tight = AcceptBackoff::new(Duration::from_millis(10), Duration::from_millis(4));
        assert_eq!(tight.on_error(), Duration::from_millis(4));
        assert_eq!(tight.on_error(), Duration::from_millis(4));
    }

    fn output_fixture() -> CdlOutput {
        CdlOutput {
            label: 7,
            exit_stage: 1,
            confidence: 0.625,
            ops: OpCount {
                macs: 1,
                adds: 2,
                compares: 3,
                activations: 4,
                mem_reads: 5,
                mem_writes: 6,
            },
            stages_activated: 2,
            exited_early: true,
        }
    }

    fn one_frame(buf: &[u8]) -> &[u8] {
        let mut cursor = buf;
        let len = cursor.get_u32() as usize;
        assert_eq!(cursor.remaining(), len, "exactly one frame");
        cursor
    }

    #[test]
    fn request_round_trips_bit_exactly() {
        // a payload with the nastiest f32s: NaN payload, -0.0, subnormal
        let input = Tensor::from_vec(
            vec![
                f32::from_bits(0x7FC0_0001),
                -0.0,
                f32::MIN_POSITIVE / 2.0,
                1.5,
            ],
            &[2, 2],
        )
        .unwrap();
        let options = SubmitOptions {
            delta: Some(0.75),
            max_stage: Some(1),
            ..SubmitOptions::default()
        };
        let mut frame = Vec::new();
        let trace = TraceId::from_raw(0xDEAD_BEEF).unwrap();
        encode_request(&mut frame, 42, "MNIST_2C", options, Some(trace), &input).unwrap();
        let decoded = decode_request(one_frame(&frame)).unwrap();
        assert_eq!(decoded.id, 42);
        assert_eq!(decoded.model, "MNIST_2C");
        assert_eq!(decoded.options, options);
        assert_eq!(decoded.trace, Some(trace));
        assert_eq!(decoded.input.dims(), input.dims());
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&decoded.input), bits(&input));
    }

    #[test]
    fn default_options_take_no_wire_space() {
        let input = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let mut with_default = Vec::new();
        encode_request(
            &mut with_default,
            0,
            "m",
            SubmitOptions::default(),
            None,
            &input,
        )
        .unwrap();
        let mut with_both = Vec::new();
        let options = SubmitOptions {
            delta: Some(0.5),
            max_stage: Some(0),
            ..SubmitOptions::default()
        };
        encode_request(&mut with_both, 0, "m", options, None, &input).unwrap();
        assert_eq!(with_both.len(), with_default.len() + 8);
        let decoded = decode_request(one_frame(&with_default)).unwrap();
        assert_eq!(decoded.options, SubmitOptions::default());
        assert_eq!(decoded.trace, None);
        // the trace id is exactly 8 more bytes, only when present
        let mut with_trace = Vec::new();
        encode_request(
            &mut with_trace,
            0,
            "m",
            SubmitOptions::default(),
            TraceId::from_raw(1),
            &input,
        )
        .unwrap();
        assert_eq!(with_trace.len(), with_default.len() + 8);
        // a zero trace id never encodes; hand-patching one in must be
        // rejected at decode (zero is the wire's "no trace" reserve)
        let mut zero_trace = with_trace.clone();
        let flags_at = 4 + 8 + 2 + 1; // frame len + id + name len + name "m"
        assert_eq!(zero_trace[flags_at], FLAG_TRACE);
        zero_trace[flags_at + 1..flags_at + 9].fill(0);
        assert!(decode_request(one_frame(&zero_trace)).is_err());
    }

    #[test]
    fn overload_options_round_trip_and_cost_exact_wire_space() {
        let input = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let mut plain = Vec::new();
        encode_request(&mut plain, 0, "m", SubmitOptions::default(), None, &input).unwrap();

        // each service-level field costs exactly its payload, only when set
        let cases: [(SubmitOptions, usize); 4] = [
            (SubmitOptions::with_deadline(Duration::from_millis(250)), 8),
            (SubmitOptions::default().priority(Priority::Low), 1),
            (SubmitOptions::default().tenant(17), 4),
            (
                SubmitOptions::with_deadline(Duration::from_micros(1500))
                    .priority(Priority::Normal)
                    .tenant(u32::MAX),
                8 + 1 + 4,
            ),
        ];
        for (options, extra) in cases {
            let mut frame = Vec::new();
            encode_request(&mut frame, 5, "m", options, None, &input).unwrap();
            assert_eq!(frame.len(), plain.len() + extra, "{options:?}");
            let decoded = decode_request(one_frame(&frame)).unwrap();
            assert_eq!(decoded.options, options);
        }

        // a default priority rides the flags byte for free
        let mut high = Vec::new();
        let explicit_high = SubmitOptions::default().priority(Priority::High);
        encode_request(&mut high, 0, "m", explicit_high, None, &input).unwrap();
        assert_eq!(high.len(), plain.len());

        // an out-of-range priority class is rejected at decode
        let mut frame = Vec::new();
        encode_request(
            &mut frame,
            0,
            "m",
            SubmitOptions::default().priority(Priority::Low),
            None,
            &input,
        )
        .unwrap();
        let class_at = 4 + 8 + 2 + 1 + 1; // frame len + id + name len + "m" + flags
        assert_eq!(frame[class_at], 2);
        frame[class_at] = 3;
        assert!(decode_request(one_frame(&frame)).is_err());
    }

    #[test]
    fn pre_overload_frames_decode_unchanged() {
        // a frame laid out exactly as the previous protocol revision wrote
        // it (only flag bits 0–2 existed) must decode to the same options
        // with the new service-level fields at their defaults
        let mut body = Vec::new();
        body.put_u64(77);
        body.put_u16(8);
        body.put_slice(b"MNIST_2C");
        body.put_u8(FLAG_DELTA | FLAG_MAX_STAGE | FLAG_TRACE);
        body.put_f32(0.85);
        body.put_u32(1);
        body.put_u64(0xBEEF);
        body.put_u8(1);
        body.put_u32(2);
        body.put_f32(0.25);
        body.put_f32(0.75);
        let decoded = decode_request(&body).unwrap();
        assert_eq!(decoded.id, 77);
        assert_eq!(decoded.options.delta, Some(0.85));
        assert_eq!(decoded.options.max_stage, Some(1));
        assert_eq!(decoded.trace, TraceId::from_raw(0xBEEF));
        assert_eq!(decoded.options.deadline, None);
        assert_eq!(decoded.options.priority, Priority::High);
        assert_eq!(decoded.options.tenant, None);
        // and the encoder still writes that exact layout for such options
        let mut frame = Vec::new();
        encode_request(
            &mut frame,
            77,
            "MNIST_2C",
            SubmitOptions {
                delta: Some(0.85),
                max_stage: Some(1),
                ..SubmitOptions::default()
            },
            TraceId::from_raw(0xBEEF),
            &decoded.input,
        )
        .unwrap();
        assert_eq!(one_frame(&frame), &body[..]);
    }

    #[test]
    fn response_round_trips_both_arms() {
        let mut frame = Vec::new();
        encode_response(&mut frame, 9, &Ok(output_fixture())).unwrap();
        let (id, result) = decode_response(one_frame(&frame)).unwrap();
        assert_eq!(id, 9);
        assert_eq!(result.unwrap(), output_fixture());

        let reply = ErrorReply {
            code: ErrorCode::Full,
            message: "submission queue full".into(),
        };
        let mut frame = Vec::new();
        encode_response(&mut frame, 10, &Err(reply.clone())).unwrap();
        let (id, result) = decode_response(one_frame(&frame)).unwrap();
        assert_eq!(id, 10);
        assert_eq!(result.unwrap_err(), reply);
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        let input = Tensor::from_vec(vec![0.5, 1.0], &[2]).unwrap();
        let mut frame = Vec::new();
        encode_request(&mut frame, 3, "m", SubmitOptions::default(), None, &input).unwrap();
        let body = one_frame(&frame);
        // truncations at every boundary fail, never panic
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err(), "cut at {cut}");
        }
        // trailing garbage is rejected too
        let mut long = body.to_vec();
        long.push(0);
        assert!(decode_request(&long).is_err());
        // unknown option flags are rejected (forward-compat is explicit)
        let mut bad_flags = body.to_vec();
        let flags_at = 8 + 2 + 1; // id + name len + name "m"
        bad_flags[flags_at] = 0x80;
        assert!(decode_request(&bad_flags).is_err());
        // a dim product that overflows the frame cap is rejected before
        // any allocation
        let mut huge = Vec::new();
        huge.put_u64(1);
        huge.put_u16(1);
        huge.put_slice(b"m");
        huge.put_u8(0);
        huge.put_u8(2);
        huge.put_u32(u32::MAX);
        huge.put_u32(u32::MAX);
        assert!(decode_request(&huge).is_err());
        // response side: unknown status byte
        let mut bad_status = Vec::new();
        bad_status.put_u64(1);
        bad_status.put_u8(99);
        bad_status.put_u16(0);
        assert!(decode_response(&bad_status).is_err());
    }

    #[test]
    fn error_codes_map_from_serve_errors_and_back() {
        let cases: Vec<(ServeError, ErrorCode)> = vec![
            (ServeError::Full, ErrorCode::Full),
            (ServeError::ShuttingDown, ErrorCode::ShuttingDown),
            (ServeError::Disconnected, ErrorCode::Disconnected),
            (ServeError::BadOptions("x".into()), ErrorCode::BadOptions),
            (
                ServeError::UnknownModel(crate::router::ModelId::from_index(0)),
                ErrorCode::UnknownModel,
            ),
            (ServeError::Expired, ErrorCode::Expired),
            (ServeError::Shed(Priority::Low), ErrorCode::Shed),
            (ServeError::QuotaExceeded(3), ErrorCode::Quota),
        ];
        for (err, code) in cases {
            assert_eq!(ErrorCode::from(&err), code);
            assert_eq!(ErrorCode::from_status(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_status(0), None);
        assert_eq!(ErrorCode::from_status(200), None);
        // a bad tensor is a malformed request on the wire: the frame
        // decoded but the payload can't be served
        assert_eq!(
            ErrorCode::from(&ServeError::BadInput("rank 1".into())),
            ErrorCode::Malformed
        );
    }
}
