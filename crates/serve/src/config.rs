//! Batch-formation policy, replica placement and server configuration.

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use cdl_core::confidence::{ConfidencePolicy, ExitOverride};
use cdl_hw::EnergyModel;
use cdl_telemetry::TelemetryConfig;
use cdl_tensor::gemm::GemmKernel;

use crate::error::{ServeError, ServeResult};
use crate::fault::FaultPlan;

/// How a [`crate::Router`] picks the replica that admits a request, chosen
/// once per submission over the replica set's **live queue depths** (the
/// gate occupancy [`crate::Server::queue_depth`] reports).
///
/// Whatever the policy picks, the response is bit-identical — every replica
/// of a model serves the same network — so placement only shapes load,
/// latency and backpressure, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Cycle through the replicas in index order (a lock-free counter):
    /// perfectly even admission counts, blind to load imbalance.
    #[default]
    RoundRobin,
    /// Scan every replica's queue depth and place on the least loaded
    /// (ties to the lowest index). Best balance, O(replicas) per admission.
    LeastLoaded,
    /// Sample two distinct replicas pseudo-randomly and place on the less
    /// loaded of the pair — the classic power-of-two-choices compromise:
    /// near-least-loaded balance at O(1) probes per admission.
    PowerOfTwoChoices,
}

impl PlacementPolicy {
    /// Every placement policy, for equivalence sweeps.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::PowerOfTwoChoices,
    ];
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementPolicy::RoundRobin => "round_robin",
            PlacementPolicy::LeastLoaded => "least_loaded",
            PlacementPolicy::PowerOfTwoChoices => "p2c",
        })
    }
}

impl FromStr for PlacementPolicy {
    type Err = ServeError;

    /// Parses `"round_robin"`/`"rr"`, `"least_loaded"`, and
    /// `"p2c"`/`"power_of_two_choices"` (case-insensitive, `-` ≡ `_`).
    fn from_str(s: &str) -> ServeResult<Self> {
        match s.to_ascii_lowercase().replace('-', "_").as_str() {
            "round_robin" | "rr" => Ok(PlacementPolicy::RoundRobin),
            "least_loaded" => Ok(PlacementPolicy::LeastLoaded),
            "p2c" | "power_of_two" | "power_of_two_choices" => {
                Ok(PlacementPolicy::PowerOfTwoChoices)
            }
            other => Err(ServeError::BadConfig(format!(
                "unknown placement policy {other:?} \
                 (expected round_robin, least_loaded or p2c)"
            ))),
        }
    }
}

/// How a model is replicated inside a [`crate::Router`]: the replica count
/// and the [`PlacementPolicy`] choosing among them at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// Number of identical shards serving this model (each the full
    /// gate → batcher → worker-pool pipeline). Must be ≥ 1.
    pub replicas: usize,
    /// The admission-time placement policy over the replica set.
    pub placement: PlacementPolicy,
}

impl ReplicaSpec {
    /// `replicas` shards balanced by `placement`.
    pub fn new(replicas: usize, placement: PlacementPolicy) -> Self {
        ReplicaSpec {
            replicas,
            placement,
        }
    }

    /// The unreplicated spec: one shard (placement is then irrelevant).
    pub fn single() -> Self {
        ReplicaSpec::default()
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero replica count.
    pub fn validate(&self) -> ServeResult<()> {
        if self.replicas == 0 {
            return Err(ServeError::BadConfig("replicas must be >= 1".into()));
        }
        Ok(())
    }
}

impl Default for ReplicaSpec {
    /// One replica, round-robin (vacuously) placed.
    fn default() -> Self {
        ReplicaSpec {
            replicas: 1,
            placement: PlacementPolicy::RoundRobin,
        }
    }
}

impl fmt::Display for ReplicaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.replicas, self.placement)
    }
}

impl FromStr for ReplicaSpec {
    type Err = ServeError;

    /// Parses `"N"` (N replicas, default placement), `"POLICY"` (one
    /// replica… which any policy serves trivially — more useful combined),
    /// or `"NxPOLICY"` (e.g. `"3xleast_loaded"`, `"4xp2c"`).
    fn from_str(s: &str) -> ServeResult<Self> {
        let spec = if let Some((count, policy)) = s.split_once('x') {
            let replicas: usize = count
                .trim()
                .parse()
                .map_err(|_| ServeError::BadConfig(format!("bad replica count in {s:?}")))?;
            ReplicaSpec::new(replicas, policy.trim().parse()?)
        } else if let Ok(replicas) = s.trim().parse::<usize>() {
            ReplicaSpec {
                replicas,
                ..ReplicaSpec::default()
            }
        } else {
            ReplicaSpec {
                placement: s.trim().parse()?,
                ..ReplicaSpec::default()
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Health state of one replica in a [`crate::Router`] shard, as driven by
/// the shard's [`HealthPolicy`] state machine:
///
/// ```text
///  Healthy ──unhealthy window──▶ Degraded ──evict_after bad checks──▶ Evicted
///     ▲                            │                                    │
///     │◀──────healthy window───────┘                              next check
///     │                                                                │
///     └──healthy probe window── Probing ◀──────(canary admissions)─────┘
/// ```
///
/// `Healthy` and `Degraded` replicas take normal placements (`Degraded` is
/// the hysteresis band — suspicious but still serving). `Evicted` replicas
/// take **no** placements at all. `Probing` replicas take only a bounded
/// number of canary admissions ([`HealthPolicy::probe_budget`]) whose
/// outcomes decide readmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum ReplicaHealth {
    /// Serving normally; takes placements.
    #[default]
    Healthy = 0,
    /// One unhealthy check window observed; still takes placements while
    /// the hysteresis counter decides between recovery and eviction.
    Degraded = 1,
    /// Removed from placement entirely; no requests are routed here.
    Evicted = 2,
    /// Taking up to [`HealthPolicy::probe_budget`] canary admissions to
    /// decide readmission.
    Probing = 3,
}

impl ReplicaHealth {
    /// Stable numeric code (also the telemetry export encoding).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ReplicaHealth::code`].
    pub fn from_code(code: u8) -> Option<ReplicaHealth> {
        match code {
            0 => Some(ReplicaHealth::Healthy),
            1 => Some(ReplicaHealth::Degraded),
            2 => Some(ReplicaHealth::Evicted),
            3 => Some(ReplicaHealth::Probing),
            _ => None,
        }
    }

    /// Whether the replica takes normal (non-canary) placements.
    pub fn is_live(self) -> bool {
        matches!(self, ReplicaHealth::Healthy | ReplicaHealth::Degraded)
    }
}

impl fmt::Display for ReplicaHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Degraded => "degraded",
            ReplicaHealth::Evicted => "evicted",
            ReplicaHealth::Probing => "probing",
        })
    }
}

/// Hysteresis thresholds for the per-replica health state machine (see
/// [`ReplicaHealth`]), attached to a shard with
/// [`crate::ShardSpec::health`].
///
/// Checks judge a **window**: the delta of a replica's error counters and
/// latency histogram since the previous judged check (windowed via
/// [`cdl_telemetry::LogHistogram::subtracted`]). A window is unhealthy
/// when its error rate exceeds `error_threshold` **or** its
/// `latency_quantile` latency exceeds `latency_threshold`. Windows with
/// fewer than `min_samples` settled outcomes are inconclusive and leave
/// the state untouched, so an idle replica is never judged on noise.
///
/// Checks run opportunistically every `check_every` placements on the
/// shard, and on demand through [`crate::Router::check_health`] (what
/// deterministic tests drive).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Window error rate (failed + injected-fault outcomes over all
    /// settled outcomes) above which the window is unhealthy. In `(0, 1]`;
    /// `1.0` effectively disables the error signal (a rate can equal but
    /// never exceed it).
    pub error_threshold: f64,
    /// Window latency above which the window is unhealthy, compared at
    /// `latency_quantile`. `None` disables the latency signal.
    pub latency_threshold: Option<Duration>,
    /// Which quantile of the window's latency histogram to compare against
    /// `latency_threshold`. In `(0, 1]`.
    pub latency_quantile: f64,
    /// Minimum settled outcomes in a window before it is judged (for a
    /// `Probing` replica, the effective minimum is
    /// `min_samples.min(probe_budget)` so a small probe budget can still
    /// readmit).
    pub min_samples: u64,
    /// Consecutive unhealthy checks (the first of which moves
    /// `Healthy → Degraded`) before the replica is evicted. `1` evicts on
    /// the first bad window; `2` (the default) requires confirmation.
    pub evict_after: u32,
    /// Canary admissions a `Probing` replica may take before its probe
    /// window is judged for readmission.
    pub probe_budget: u64,
    /// Run an automatic health check once per this many placements on the
    /// shard. `0` disables automatic checks (checks then only run through
    /// [`crate::Router::check_health`]).
    pub check_every: u64,
}

impl HealthPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for thresholds or quantiles out
    /// of range, or zero hysteresis/probe/window parameters.
    pub fn validate(&self) -> ServeResult<()> {
        if !self.error_threshold.is_finite() || !(0.0..=1.0).contains(&self.error_threshold) {
            return Err(ServeError::BadConfig(format!(
                "health error_threshold must be in [0, 1], got {}",
                self.error_threshold
            )));
        }
        if !self.latency_quantile.is_finite() || !(0.0..=1.0).contains(&self.latency_quantile) {
            return Err(ServeError::BadConfig(format!(
                "health latency_quantile must be in [0, 1], got {}",
                self.latency_quantile
            )));
        }
        if self.latency_threshold == Some(Duration::ZERO) {
            return Err(ServeError::BadConfig(
                "health latency_threshold must be > 0 when set (use None to disable)".into(),
            ));
        }
        if self.min_samples == 0 {
            return Err(ServeError::BadConfig(
                "health min_samples must be >= 1".into(),
            ));
        }
        if self.evict_after == 0 {
            return Err(ServeError::BadConfig(
                "health evict_after must be >= 1".into(),
            ));
        }
        if self.probe_budget == 0 {
            return Err(ServeError::BadConfig(
                "health probe_budget must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

impl Default for HealthPolicy {
    /// Evict on half the window failing or a p99 over 250 ms, confirmed by
    /// a second bad check; readmit through 4 canary probes; auto-check
    /// every 64 placements.
    fn default() -> Self {
        HealthPolicy {
            error_threshold: 0.5,
            latency_threshold: Some(Duration::from_millis(250)),
            latency_quantile: 0.99,
            min_samples: 8,
            evict_after: 2,
            probe_budget: 4,
            check_every: 64,
        }
    }
}

/// Request-level resilience for one shard, attached with
/// [`crate::ShardSpec::retry`]: budgeted retries on replica failure, plus
/// an optional hedged second attempt.
///
/// A failed attempt is retried (on a freshly placed replica) when its
/// error is *retryable* — [`ServeError::Eval`],
/// [`ServeError::Disconnected`], or [`ServeError::Fault`] — up to
/// `max_retries` extra attempts. Typed refusals (`Full`, `Shed`, quota,
/// validation) are **not** retried: they are backpressure, and retrying
/// them would amplify overload.
///
/// With `hedge_quantile` set, a second attempt is also launched if the
/// first has not settled after the shard's merged latency histogram says
/// `hedge_quantile` of requests should have (clamped below by
/// `hedge_floor`, which is also the cold-start delay while the histogram
/// is empty). First completion wins; the loser is cancelled through its
/// drop-to-cancel handle at **zero** evaluator ops. Responses stay
/// bit-identical whichever attempt wins — every replica serves the same
/// network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts after the first, spent only on retryable errors.
    pub max_retries: u32,
    /// Latency quantile deriving the hedge delay from the shard's merged
    /// histogram; `None` disables hedging.
    pub hedge_quantile: Option<f64>,
    /// Lower bound on the hedge delay, and the delay used while the shard
    /// has no latency samples yet.
    pub hedge_floor: Duration,
}

impl RetryPolicy {
    /// Retry-only policy: `max_retries` extra attempts, no hedging.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            hedge_quantile: None,
            hedge_floor: Duration::from_millis(10),
        }
    }

    /// Returns this policy with hedging at `quantile` (builder-style).
    pub fn hedged(mut self, quantile: f64) -> Self {
        self.hedge_quantile = Some(quantile);
        self
    }

    /// Returns this policy with the hedge-delay floor set (builder-style).
    pub fn hedge_floor(mut self, floor: Duration) -> Self {
        self.hedge_floor = floor;
        self
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an out-of-range hedge
    /// quantile or a zero-attempt policy (no retries *and* no hedge —
    /// use no policy at all instead).
    pub fn validate(&self) -> ServeResult<()> {
        if let Some(q) = self.hedge_quantile {
            if !q.is_finite() || !(0.0..=1.0).contains(&q) {
                return Err(ServeError::BadConfig(format!(
                    "retry hedge_quantile must be in [0, 1], got {q}"
                )));
            }
        }
        if self.max_retries == 0 && self.hedge_quantile.is_none() {
            return Err(ServeError::BadConfig(
                "retry policy with no retries and no hedge does nothing (omit it instead)".into(),
            ));
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    /// One retry, no hedging, 10 ms hedge floor.
    fn default() -> Self {
        RetryPolicy::retries(1)
    }
}

/// Priority class of a submission, used by the admission gate to decide
/// which requests to shed first under load.
///
/// The gate admits each class only up to a fraction of
/// [`ServerConfig::queue_capacity`]: [`Priority::High`] may fill the whole
/// gate, [`Priority::Normal`] roughly the lower two thirds, and
/// [`Priority::Low`] roughly the lower third. As queue depth rises the low
/// classes are refused first (a typed [`ServeError::Shed`]), reserving the
/// remaining headroom for higher classes — strict priority admission
/// without reordering the FIFO queue.
///
/// The default is [`Priority::High`]: a request that never states a
/// priority behaves exactly as before priorities existed (admitted until
/// the gate is completely full). Lower classes are strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Admitted until the gate is completely full (the pre-priority
    /// behavior, and the default).
    #[default]
    High,
    /// Shed once the gate passes roughly two thirds of capacity.
    Normal,
    /// Shed first: admitted only while the gate is under roughly one third
    /// of capacity.
    Low,
}

impl Priority {
    /// Number of priority classes (array-index bound for per-class
    /// counters).
    pub const COUNT: usize = 3;

    /// Every priority class, highest first.
    pub const ALL: [Priority; Priority::COUNT] = [Priority::High, Priority::Normal, Priority::Low];

    /// Class index: 0 = [`Priority::High`] … 2 = [`Priority::Low`].
    pub fn class(self) -> usize {
        self as usize
    }

    /// Inverse of [`Priority::class`] (and of the u8 wire encoding).
    pub fn from_class(class: u8) -> Option<Priority> {
        match class {
            0 => Some(Priority::High),
            1 => Some(Priority::Normal),
            2 => Some(Priority::Low),
            _ => None,
        }
    }

    /// Gate occupancy below which this class is still admitted, for a gate
    /// of `capacity` slots: `High` ⇒ the full capacity, lower classes ⇒
    /// proportionally smaller ceilings (always ≥ 1 so a lone low-priority
    /// request on an idle server is never refused).
    pub fn admission_limit(self, capacity: usize) -> usize {
        let keep = Priority::COUNT - self.class();
        (capacity * keep).div_ceil(Priority::COUNT).max(1)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        })
    }
}

/// Per-request overrides carried on a submission — the runtime-adjustable
/// accuracy/energy trade-off of the paper's Fig. 10, exposed per request so
/// one stream can mix service levels.
///
/// * `delta` replaces the model's confidence threshold δ for this request
///   only (lax δ → earlier exits, less energy; strict δ → deeper cascade,
///   more accuracy).
/// * `max_stage` caps how deep this request may cascade: reaching
///   conditional stage `max_stage` (0-based) terminates there
///   unconditionally — a hard per-request cost bound.
///
/// The worker pool groups each batch by effective override before
/// evaluation, so responses stay **bit-identical** to
/// [`cdl_core::network::CdlNetwork::classify_with_override`] regardless of
/// which batch (and which mix of overrides) a request lands in.
///
/// Beyond the accuracy/energy knobs, a submission can carry service-level
/// metadata for overload control:
///
/// * `deadline` — a per-request latency budget, measured from admission. A
///   request still queued when its budget runs out is settled with
///   [`ServeError::Expired`] at batch formation or dispatch time, spending
///   zero evaluator ops (the queue-level analogue of early exit).
/// * `priority` — the admission class; lower classes are shed first as the
///   gate fills (see [`Priority`]).
/// * `tenant` — an opaque tenant id for per-tenant admission quotas
///   ([`ServerConfig::tenant_quota`]) and per-tenant shed/expired counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubmitOptions {
    /// Replacement δ for this request (`None` = the model's configured
    /// threshold).
    pub delta: Option<f32>,
    /// Deepest conditional stage this request may cascade to (`None` = no
    /// cap).
    pub max_stage: Option<usize>,
    /// Latency budget measured from admission; once it elapses the request
    /// is shed unevaluated with [`ServeError::Expired`] (`None` = never
    /// expires).
    pub deadline: Option<Duration>,
    /// Admission priority class (default [`Priority::High`] — the
    /// pre-priority behavior).
    pub priority: Priority,
    /// Tenant id for quota accounting (`None` = untenanted: exempt from
    /// quotas, counted only in the aggregate counters).
    pub tenant: Option<u32>,
}

impl SubmitOptions {
    /// Overrides only δ.
    pub fn with_delta(delta: f32) -> Self {
        SubmitOptions {
            delta: Some(delta),
            ..SubmitOptions::default()
        }
    }

    /// Caps only the cascade depth.
    pub fn with_max_stage(max_stage: usize) -> Self {
        SubmitOptions {
            max_stage: Some(max_stage),
            ..SubmitOptions::default()
        }
    }

    /// Sets only a per-request deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        SubmitOptions {
            deadline: Some(deadline),
            ..SubmitOptions::default()
        }
    }

    /// Returns these options with `deadline` set (builder-style).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns these options with `priority` set (builder-style).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Returns these options with `tenant` set (builder-style).
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// The [`ExitOverride`] these options apply to the evaluator.
    pub fn exit_override(&self) -> ExitOverride {
        ExitOverride {
            delta: self.delta,
            max_stage: self.max_stage,
        }
    }

    /// Validates the options against the policy they would override.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadOptions`] when the substituted δ is out of
    /// range for the model's policy type.
    pub fn validate_for(&self, policy: ConfidencePolicy) -> ServeResult<()> {
        self.exit_override()
            .validate_for(policy)
            .map_err(|e| ServeError::BadOptions(e.to_string()))
    }
}

/// When does the batcher stop collecting and dispatch a batch?
///
/// A batch is dispatched as soon as **either** bound is hit:
///
/// * `max_batch_size` requests have been collected (size-bound), or
/// * `max_wait` has elapsed since the batch's *first* request arrived
///   (deadline-bound) — the classic dynamic-batching latency cap.
///
/// `max_wait == None` disables the deadline: a batch waits (possibly
/// forever) until it is full, which is only sensible for offline/throughput
/// workloads or together with [`crate::Server::shutdown`], which flushes the
/// partially formed batch. The three useful corners have constructors:
/// [`BatchPolicy::by_size`], [`BatchPolicy::by_deadline`] and
/// [`BatchPolicy::new`] (mixed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are collected.
    pub max_batch_size: usize,
    /// Dispatch this long after the first request of the batch arrived,
    /// full or not. `None` = wait until full.
    pub max_wait: Option<Duration>,
}

impl BatchPolicy {
    /// Mixed policy: dispatch at `max_batch_size` requests **or** after
    /// `max_wait`, whichever comes first.
    pub fn new(max_batch_size: usize, max_wait: Duration) -> Self {
        BatchPolicy {
            max_batch_size,
            max_wait: Some(max_wait),
        }
    }

    /// Pure size-bound policy: dispatch only when full (or at shutdown).
    ///
    /// **Liveness caveat**: without a deadline, a batch larger than the
    /// number of requests that can be in flight never fills. With blocking
    /// [`crate::Server::submit`] producers, keep
    /// [`crate::ServerConfig::queue_capacity`] `>= max_batch_size`, or the
    /// producers and the batcher wait on each other until
    /// [`crate::Server::shutdown`] flushes the batch (`try_submit` callers
    /// just see [`crate::ServeError::Full`] meanwhile — that stalled-open
    /// shape is exactly what the backpressure tests use deterministically).
    pub fn by_size(max_batch_size: usize) -> Self {
        BatchPolicy {
            max_batch_size,
            max_wait: None,
        }
    }

    /// Pure deadline-bound policy: dispatch whatever arrived within
    /// `max_wait` of the first request (batch size limited only by the
    /// submission queue capacity).
    pub fn by_deadline(max_wait: Duration) -> Self {
        BatchPolicy {
            max_batch_size: usize::MAX,
            max_wait: Some(max_wait),
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero batch size or a zero
    /// deadline.
    pub fn validate(&self) -> ServeResult<()> {
        if self.max_batch_size == 0 {
            return Err(ServeError::BadConfig("max_batch_size must be >= 1".into()));
        }
        if self.max_wait == Some(Duration::ZERO) {
            return Err(ServeError::BadConfig(
                "max_wait must be > 0 (use max_batch_size = 1 for unbatched dispatch)".into(),
            ));
        }
        Ok(())
    }
}

impl Default for BatchPolicy {
    /// 32 requests or 2 ms, whichever first.
    fn default() -> Self {
        BatchPolicy::new(32, Duration::from_millis(2))
    }
}

/// Configuration of a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Maximum number of **in-flight** requests: admitted (by `submit` /
    /// `try_submit`) but not yet completed, cancelled or failed. Submitting
    /// beyond this bound blocks (`submit`) or returns
    /// [`ServeError::Full`] (`try_submit`) — the server's backpressure.
    pub queue_capacity: usize,
    /// Worker threads; each owns one persistent
    /// [`cdl_core::batch::BatchEvaluator`] whose im2col/GEMM scratch is
    /// reused across every batch it processes.
    pub workers: usize,
    /// Energy model used for the cumulative energy figure in
    /// [`crate::ServerMetrics`].
    pub energy_model: EnergyModel,
    /// GEMM microkernel every worker's evaluator runs (selected once at
    /// [`crate::Server::start`]). All kernels are bit-identical
    /// (`cdl_tensor::gemm`); the default is [`GemmKernel::detect`] — the
    /// AVX2 `Simd` arm where the host supports it, `Tiled` otherwise —
    /// and [`GemmKernel::Reference`] is the pinned baseline for A/B
    /// comparison. Shards of a [`crate::Router`] may mix kernels freely.
    pub gemm_kernel: GemmKernel,
    /// Runtime tracing switchboard: whether per-request lifecycle spans
    /// are recorded ([`crate::Server::telemetry`] drains them) and at what
    /// sample rate. Off by default — recording calls then cost one branch,
    /// so the instrumentation stays compiled into production paths.
    pub telemetry: TelemetryConfig,
    /// Per-tenant cap on in-flight requests: a submission carrying
    /// [`SubmitOptions::tenant`] is refused with
    /// [`ServeError::QuotaExceeded`] while that tenant already has this
    /// many requests admitted on the replica, no matter how empty the gate
    /// is — one noisy tenant cannot crowd out the rest. `None` (default)
    /// disables quotas; untenanted submissions are always exempt.
    pub tenant_quota: Option<usize>,
    /// Scripted fault injection for chaos testing
    /// ([`crate::fault::FaultPlan`]). Unarmed by default: the hooks then
    /// cost one branch each, the same disabled-path model as telemetry.
    pub fault: FaultPlan,
}

impl ServerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid policy, a zero
    /// queue capacity, an empty worker pool or an out-of-range telemetry
    /// sample rate.
    pub fn validate(&self) -> ServeResult<()> {
        self.policy.validate()?;
        if self.queue_capacity == 0 {
            return Err(ServeError::BadConfig("queue_capacity must be >= 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::BadConfig("workers must be >= 1".into()));
        }
        if self.tenant_quota == Some(0) {
            return Err(ServeError::BadConfig(
                "tenant_quota must be >= 1 when set (use None to disable quotas)".into(),
            ));
        }
        self.telemetry.validate().map_err(ServeError::BadConfig)?;
        Ok(())
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        ServerConfig {
            policy: BatchPolicy::default(),
            queue_capacity: 1024,
            workers,
            energy_model: EnergyModel::cmos_45nm(),
            gemm_kernel: GemmKernel::default(),
            telemetry: TelemetryConfig::default(),
            tenant_quota: None,
            fault: FaultPlan::none(),
        }
    }
}

/// Configuration of the event-loop TCP edge ([`crate::TcpServer`]).
///
/// The edge multiplexes every accepted connection onto a fixed pool of
/// `pollers` reactor threads — connection count never changes the thread
/// count — and its accept loop backs off exponentially between
/// `accept_backoff_initial` and `accept_backoff_max` while `accept()` keeps
/// failing (e.g. under fd exhaustion), instead of busy-spinning a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeConfig {
    /// Poller (reactor) threads multiplexing the connections. Each owns an
    /// epoll/poll instance and the full read/decode/submit/encode/write
    /// state machines of the connections assigned to it (round-robin at
    /// accept). Total edge threads = `pollers` + 1 accept thread,
    /// independent of connection count.
    pub pollers: usize,
    /// First backoff after a failed `accept()`; doubles on every
    /// consecutive failure.
    pub accept_backoff_initial: Duration,
    /// Backoff ceiling for repeated `accept()` failures. A successful
    /// accept resets the backoff to `accept_backoff_initial`.
    pub accept_backoff_max: Duration,
}

impl EdgeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero poller count, a zero
    /// initial backoff, or a ceiling below the initial backoff.
    pub fn validate(&self) -> ServeResult<()> {
        if self.pollers == 0 {
            return Err(ServeError::BadConfig("pollers must be >= 1".into()));
        }
        if self.accept_backoff_initial.is_zero() {
            return Err(ServeError::BadConfig(
                "accept_backoff_initial must be > 0".into(),
            ));
        }
        if self.accept_backoff_max < self.accept_backoff_initial {
            return Err(ServeError::BadConfig(
                "accept_backoff_max must be >= accept_backoff_initial".into(),
            ));
        }
        Ok(())
    }
}

impl Default for EdgeConfig {
    /// One poller per core up to 4 (the same shape as
    /// [`ServerConfig::default`]'s worker pool), 1 ms initial accept
    /// backoff doubling to a 250 ms ceiling.
    fn default() -> Self {
        let pollers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        EdgeConfig {
            pollers,
            accept_backoff_initial: Duration::from_millis(1),
            accept_backoff_max: Duration::from_millis(250),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors() {
        let p = BatchPolicy::by_size(8);
        assert_eq!(p.max_batch_size, 8);
        assert_eq!(p.max_wait, None);
        let p = BatchPolicy::by_deadline(Duration::from_millis(3));
        assert_eq!(p.max_batch_size, usize::MAX);
        assert_eq!(p.max_wait, Some(Duration::from_millis(3)));
        let p = BatchPolicy::new(16, Duration::from_millis(1));
        assert_eq!(p.max_batch_size, 16);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn invalid_policies_rejected() {
        assert!(BatchPolicy::by_size(0).validate().is_err());
        assert!(BatchPolicy::new(4, Duration::ZERO).validate().is_err());
    }

    #[test]
    fn placement_policy_parses_and_displays() {
        for policy in PlacementPolicy::ALL {
            // Display → FromStr round trip
            assert_eq!(
                policy.to_string().parse::<PlacementPolicy>().unwrap(),
                policy
            );
        }
        assert_eq!(
            "rr".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::RoundRobin
        );
        assert_eq!(
            "Least-Loaded".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::LeastLoaded
        );
        assert_eq!(
            "power_of_two_choices".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::PowerOfTwoChoices
        );
        assert!(matches!(
            "weighted".parse::<PlacementPolicy>(),
            Err(ServeError::BadConfig(_))
        ));
    }

    #[test]
    fn replica_spec_parses_and_validates() {
        assert_eq!(ReplicaSpec::default(), ReplicaSpec::single());
        assert_eq!(
            "3xleast_loaded".parse::<ReplicaSpec>().unwrap(),
            ReplicaSpec::new(3, PlacementPolicy::LeastLoaded)
        );
        assert_eq!(
            "4 x p2c".parse::<ReplicaSpec>().unwrap(),
            ReplicaSpec::new(4, PlacementPolicy::PowerOfTwoChoices)
        );
        assert_eq!(
            "2".parse::<ReplicaSpec>().unwrap(),
            ReplicaSpec::new(2, PlacementPolicy::RoundRobin)
        );
        assert_eq!(
            "least_loaded".parse::<ReplicaSpec>().unwrap(),
            ReplicaSpec::new(1, PlacementPolicy::LeastLoaded)
        );
        // Display → FromStr round trip
        let spec = ReplicaSpec::new(3, PlacementPolicy::PowerOfTwoChoices);
        assert_eq!(spec.to_string().parse::<ReplicaSpec>().unwrap(), spec);
        assert!(ReplicaSpec::new(0, PlacementPolicy::RoundRobin)
            .validate()
            .is_err());
        assert!("0xrr".parse::<ReplicaSpec>().is_err());
        assert!("threexrr".parse::<ReplicaSpec>().is_err());
    }

    #[test]
    fn config_round_trips_gemm_kernel() {
        // default config runs the host-detected kernel (never Reference)…
        assert_eq!(ServerConfig::default().gemm_kernel, GemmKernel::detect());
        assert_ne!(ServerConfig::default().gemm_kernel, GemmKernel::Reference);
        // …and an explicit choice survives validation untouched
        for kernel in GemmKernel::ALL {
            let config = ServerConfig {
                gemm_kernel: kernel,
                ..ServerConfig::default()
            };
            assert!(config.validate().is_ok());
            assert_eq!(config.gemm_kernel, kernel);
            assert_eq!(config.clone().gemm_kernel, kernel);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let ok = ServerConfig::default();
        assert!(ok.validate().is_ok());
        assert!(ok.workers >= 1);
        let bad = ServerConfig {
            queue_capacity: 0,
            ..ServerConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ServerConfig {
            telemetry: TelemetryConfig {
                spans: true,
                sample_rate: 2.0,
            },
            ..ServerConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn priority_defaults_high_and_limits_are_monotone() {
        // the default class keeps the pre-priority behavior: full capacity
        assert_eq!(Priority::default(), Priority::High);
        assert_eq!(SubmitOptions::default().priority, Priority::High);
        for capacity in [1, 2, 3, 4, 7, 64, 1000] {
            assert_eq!(Priority::High.admission_limit(capacity), capacity);
            let mut prev = capacity + 1;
            for p in Priority::ALL {
                let limit = p.admission_limit(capacity);
                assert!(limit >= 1, "class {p} starved at capacity {capacity}");
                assert!(limit <= prev, "limits must not grow as class drops");
                prev = limit;
            }
        }
        for p in Priority::ALL {
            assert_eq!(Priority::from_class(p.class() as u8), Some(p));
        }
        assert_eq!(Priority::from_class(3), None);
    }

    #[test]
    fn submit_options_builders_compose() {
        let opts = SubmitOptions::with_delta(0.8)
            .deadline(Duration::from_millis(5))
            .priority(Priority::Low)
            .tenant(7);
        assert_eq!(opts.delta, Some(0.8));
        assert_eq!(opts.deadline, Some(Duration::from_millis(5)));
        assert_eq!(opts.priority, Priority::Low);
        assert_eq!(opts.tenant, Some(7));
        let opts = SubmitOptions::with_deadline(Duration::from_secs(1));
        assert_eq!(opts.deadline, Some(Duration::from_secs(1)));
        assert_eq!(opts.delta, None);
        assert_eq!(opts.priority, Priority::High);
    }

    #[test]
    fn edge_config_defaults_and_validation() {
        let edge = EdgeConfig::default();
        assert!(edge.pollers >= 1);
        assert!(edge.validate().is_ok());
        assert!(EdgeConfig { pollers: 0, ..edge }.validate().is_err());
        assert!(EdgeConfig {
            accept_backoff_initial: Duration::ZERO,
            ..edge
        }
        .validate()
        .is_err());
        assert!(EdgeConfig {
            accept_backoff_initial: Duration::from_millis(10),
            accept_backoff_max: Duration::from_millis(5),
            ..edge
        }
        .validate()
        .is_err());
    }

    #[test]
    fn zero_tenant_quota_rejected() {
        let bad = ServerConfig {
            tenant_quota: Some(0),
            ..ServerConfig::default()
        };
        assert!(bad.validate().is_err());
        let ok = ServerConfig {
            tenant_quota: Some(1),
            ..ServerConfig::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn health_policy_validates_and_codes_round_trip() {
        let ok = HealthPolicy::default();
        assert!(ok.validate().is_ok());
        assert!(HealthPolicy {
            error_threshold: 1.5,
            ..HealthPolicy::default()
        }
        .validate()
        .is_err());
        assert!(HealthPolicy {
            latency_quantile: f64::NAN,
            ..HealthPolicy::default()
        }
        .validate()
        .is_err());
        assert!(HealthPolicy {
            latency_threshold: Some(Duration::ZERO),
            ..HealthPolicy::default()
        }
        .validate()
        .is_err());
        for (field, bad) in [("min_samples", 0u64), ("probe_budget", 0)] {
            let policy = match field {
                "min_samples" => HealthPolicy {
                    min_samples: bad,
                    ..HealthPolicy::default()
                },
                _ => HealthPolicy {
                    probe_budget: bad,
                    ..HealthPolicy::default()
                },
            };
            assert!(policy.validate().is_err(), "{field} = 0 must be rejected");
        }
        assert!(HealthPolicy {
            evict_after: 0,
            ..HealthPolicy::default()
        }
        .validate()
        .is_err());
        // manual-only checks are a valid configuration
        assert!(HealthPolicy {
            check_every: 0,
            ..HealthPolicy::default()
        }
        .validate()
        .is_ok());
        for state in [
            ReplicaHealth::Healthy,
            ReplicaHealth::Degraded,
            ReplicaHealth::Evicted,
            ReplicaHealth::Probing,
        ] {
            assert_eq!(ReplicaHealth::from_code(state.code()), Some(state));
        }
        assert_eq!(ReplicaHealth::from_code(4), None);
        assert!(ReplicaHealth::Healthy.is_live());
        assert!(ReplicaHealth::Degraded.is_live());
        assert!(!ReplicaHealth::Evicted.is_live());
        assert!(!ReplicaHealth::Probing.is_live());
        assert_eq!(ReplicaHealth::default(), ReplicaHealth::Healthy);
        assert_eq!(ReplicaHealth::Evicted.to_string(), "evicted");
    }

    #[test]
    fn retry_policy_validates() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::retries(2).hedged(0.95).validate().is_ok());
        assert!(RetryPolicy::retries(1)
            .hedge_floor(Duration::from_millis(5))
            .validate()
            .is_ok());
        assert!(RetryPolicy::retries(2).hedged(1.5).validate().is_err());
        assert!(RetryPolicy::retries(0).validate().is_err());
        assert!(RetryPolicy::retries(0).hedged(0.5).validate().is_ok());
    }

    #[test]
    fn server_config_defaults_unarmed_fault_plan() {
        let config = ServerConfig::default();
        assert!(!config.fault.is_armed());
        assert!(config.validate().is_ok());
        let chaotic = ServerConfig {
            fault: crate::fault::FaultPlan::builder()
                .at(0, crate::fault::FaultKind::ErrorBurst(1))
                .build(),
            ..ServerConfig::default()
        };
        assert!(chaotic.fault.is_armed());
        assert!(chaotic.validate().is_ok());
    }

    #[test]
    fn telemetry_defaults_off_with_full_sampling() {
        let config = ServerConfig::default();
        assert!(!config.telemetry.spans);
        assert_eq!(config.telemetry.sample_rate, 1.0);
        let traced = ServerConfig {
            telemetry: TelemetryConfig::enabled(),
            ..ServerConfig::default()
        };
        assert!(traced.validate().is_ok());
    }
}
