//! Sharded multi-network serving: one front-end fanning requests out to
//! per-model **replica sets** of shards.
//!
//! A [`Router`] owns one replica set per registered model; every replica is
//! the full single-model pipeline of [`Server`] — bounded admission gate,
//! dynamic batcher, worker pool of persistent
//! [`cdl_core::batch::BatchEvaluator`]s. Requests carry a [`ModelId`]; at
//! admission the model's [`PlacementPolicy`] picks the replica (round-robin,
//! least-loaded, or power-of-two-choices over the replicas' **live queue
//! depths**), and the request is routed synchronously into that replica's
//! admission queue. **Backpressure stays per replica**: a saturated replica
//! blocks (or bounces) only the submitters placed on it, never traffic for
//! its siblings or for other models.
//!
//! Per-request [`SubmitOptions`] compose with routing and placement: one
//! stream can mix models *and* δ/depth service levels, and every response
//! stays bit-identical to
//! [`cdl_core::network::CdlNetwork::classify_with_override`] on the routed
//! model **whichever replica served it** (all replicas of a model evaluate
//! the same network — pinned by `tests/router_equivalence.rs` and
//! `tests/replica_equivalence.rs`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdl_core::network::CdlNetwork;
use cdl_telemetry::{SpanEvent, TelemetrySnapshot, TraceId};
use cdl_tensor::Tensor;

use crate::config::{PlacementPolicy, ReplicaSpec, ServerConfig, SubmitOptions};
use crate::error::{ServeError, ServeResult};
use crate::metrics::{ReplicaMetrics, RouterMetrics, ShardMetrics};
use crate::pending::Pending;
use crate::server::Server;

/// Identifies one model (replica set) registered with a [`Router`].
///
/// Ids are dense indices in registration order: the `i`-th
/// [`ShardSpec`] passed to [`Router::start`] gets id `i`. Look one up by
/// name with [`Router::model_id`], or construct it directly from a known
/// registration index with [`ModelId::from_index`]. Replicas are an
/// implementation detail behind the id — callers never address one
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(usize);

impl ModelId {
    /// The id of the model registered at `index` (0-based registration
    /// order).
    pub fn from_index(index: usize) -> Self {
        ModelId(index)
    }

    /// This id's registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model#{}", self.0)
    }
}

/// One model's slice of a [`Router`]: the network it serves, the serving
/// configuration of each replica, and how it is replicated.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Model name, unique within the router (e.g. `"MNIST_2C"`).
    pub name: String,
    /// The network every replica of this model evaluates.
    pub net: Arc<CdlNetwork>,
    /// The pipeline configuration (batch policy, queue capacity, worker
    /// count, energy model) **each replica** gets — replica sets are
    /// configured independently of each other.
    pub config: ServerConfig,
    /// Replica count + placement policy ([`ReplicaSpec::single`] by
    /// default — the unreplicated PR-3 behaviour).
    pub replicas: ReplicaSpec,
}

impl ShardSpec {
    /// A single-replica spec serving `net` under `name` with `config`.
    pub fn new(name: impl Into<String>, net: Arc<CdlNetwork>, config: ServerConfig) -> Self {
        ShardSpec {
            name: name.into(),
            net,
            config,
            replicas: ReplicaSpec::single(),
        }
    }

    /// The same spec replicated per `replicas` (builder style):
    /// `ShardSpec::new(...).replicated(ReplicaSpec::new(3,
    /// PlacementPolicy::LeastLoaded))`.
    pub fn replicated(mut self, replicas: ReplicaSpec) -> Self {
        self.replicas = replicas;
        self
    }
}

/// One running replica: a [`Server`] plus the router-level placement
/// counter.
#[derive(Debug)]
struct Replica {
    server: Server,
    /// Requests the router placed on this replica — counted at the router
    /// **before** the replica admits (rolled back if admission fails), so
    /// a concurrent snapshot can observe `routed > submitted` (a placement
    /// in flight) but never the reverse; settled snapshots agree exactly.
    /// Counted independently of the replica's own `submitted` counter so
    /// metrics consistency is a checkable invariant, not a tautology.
    routed: AtomicU64,
}

/// One running replica set.
#[derive(Debug)]
struct Shard {
    name: String,
    placement: PlacementPolicy,
    /// Monotonic placement cursor: the round-robin position, and the
    /// deterministic seed stream for power-of-two-choices sampling.
    cursor: AtomicU64,
    replicas: Vec<Replica>,
}

/// SplitMix64 — the cheap stateless mixer turning the placement cursor
/// into the pseudo-random probe pair for power-of-two-choices.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Shard {
    /// Picks the replica index the next admission goes to, per the set's
    /// placement policy over live queue depths.
    fn place(&self) -> usize {
        let n = self.replicas.len();
        if n == 1 {
            return 0;
        }
        let depth = |i: usize| self.replicas[i].server.queue_depth();
        match self.placement {
            PlacementPolicy::RoundRobin => {
                (self.cursor.fetch_add(1, Ordering::Relaxed) % n as u64) as usize
            }
            PlacementPolicy::LeastLoaded => (0..n)
                .min_by_key(|&i| depth(i))
                .expect("replica set is non-empty"),
            PlacementPolicy::PowerOfTwoChoices => {
                let h = splitmix64(self.cursor.fetch_add(1, Ordering::Relaxed));
                let a = (h % n as u64) as usize;
                // pick b from the n-1 non-a indices so the pair is distinct
                let mut b = ((h >> 32) % (n as u64 - 1)) as usize;
                if b >= a {
                    b += 1;
                }
                if depth(b) < depth(a) {
                    b
                } else {
                    a
                }
            }
        }
    }
}

/// The sharded, replicated multi-network serving front-end.
///
/// See the [module docs](self) for the architecture and guarantees.
/// `shutdown` (or `Drop`) drains every replica of every model: all
/// outstanding [`Pending`] handles resolve before the threads exit.
#[derive(Debug)]
pub struct Router {
    shards: Vec<Shard>,
}

impl Router {
    /// Starts every replica of every spec and begins accepting routed
    /// requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] when no shard is given, a model
    /// name repeats, a replica count is zero, or any [`ServerConfig`] is
    /// invalid.
    pub fn start(specs: Vec<ShardSpec>) -> ServeResult<Router> {
        if specs.is_empty() {
            return Err(ServeError::BadConfig(
                "router needs at least one shard".into(),
            ));
        }
        for (i, spec) in specs.iter().enumerate() {
            if specs[..i].iter().any(|s| s.name == spec.name) {
                return Err(ServeError::BadConfig(format!(
                    "duplicate model name {:?}",
                    spec.name
                )));
            }
            spec.replicas.validate()?;
        }
        let shards = specs
            .into_iter()
            .map(|spec| {
                let replicas = (0..spec.replicas.replicas)
                    .map(|_| {
                        Ok(Replica {
                            server: Server::start(Arc::clone(&spec.net), spec.config.clone())?,
                            routed: AtomicU64::new(0),
                        })
                    })
                    .collect::<ServeResult<Vec<Replica>>>()?;
                Ok(Shard {
                    name: spec.name,
                    placement: spec.replicas.placement,
                    cursor: AtomicU64::new(0),
                    replicas,
                })
            })
            .collect::<ServeResult<Vec<Shard>>>()?;
        Ok(Router { shards })
    }

    /// Number of registered models (replica sets, not replicas).
    pub fn model_count(&self) -> usize {
        self.shards.len()
    }

    /// `(id, name)` of every registered model, in registration order.
    pub fn models(&self) -> impl Iterator<Item = (ModelId, &str)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (ModelId(i), s.name.as_str()))
    }

    /// Looks a model up by name.
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.shards.iter().position(|s| s.name == name).map(ModelId)
    }

    /// The name `model` was registered under.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn model_name(&self, model: ModelId) -> ServeResult<&str> {
        Ok(self.shard(model)?.name.as_str())
    }

    /// How many replicas serve `model`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn replica_count(&self, model: ModelId) -> ServeResult<usize> {
        Ok(self.shard(model)?.replicas.len())
    }

    /// The network every replica of `model` evaluates.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn network(&self, model: ModelId) -> ServeResult<&CdlNetwork> {
        Ok(self.shard(model)?.replicas[0].server.network())
    }

    fn shard(&self, model: ModelId) -> ServeResult<&Shard> {
        self.shards
            .get(model.0)
            .ok_or(ServeError::UnknownModel(model))
    }

    /// Routes a request to a replica of `model` (picked by the set's
    /// [`PlacementPolicy`]), **blocking** while that replica's in-flight
    /// queue is at capacity. Sibling replicas and other models are
    /// unaffected — their submitters neither block nor queue behind this
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::ShuttingDown`] if the replica's pipeline is gone.
    pub fn submit(&self, model: ModelId, input: Tensor) -> ServeResult<Pending> {
        self.submit_with(model, input, SubmitOptions::default())
    }

    /// [`Router::submit`] with per-request [`SubmitOptions`] (δ override
    /// and/or cascade-depth cap for this request only).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::BadOptions`] for an out-of-range δ override,
    /// [`ServeError::ShuttingDown`] if the replica's pipeline is gone.
    pub fn submit_with(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
    ) -> ServeResult<Pending> {
        let shard = self.shard(model)?;
        let replica = &shard.replicas[shard.place()];
        // count the placement BEFORE the replica admits and roll back on
        // failure (mirroring the admitted/unadmitted pattern inside the
        // gate): a concurrent metrics() snapshot must never observe
        // `submitted > routed` — that would break the documented
        // cross-check invariant on `ReplicaMetrics::routed`
        replica.routed.fetch_add(1, Ordering::Relaxed);
        match replica.server.submit_with(input, options) {
            Ok(pending) => Ok(pending),
            Err(e) => {
                replica.routed.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// [`Router::submit_with`] continuing a caller-supplied telemetry
    /// trace id — the entry point the TCP edge uses so one trace covers
    /// the wire hop, routing, and the serving replica. The id is recorded
    /// only if the placed replica's [`crate::ServerConfig::telemetry`] has
    /// spans on and the id falls inside its sample.
    ///
    /// # Errors
    ///
    /// Same contract as [`Router::submit_with`].
    pub fn submit_with_trace(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> ServeResult<Pending> {
        let shard = self.shard(model)?;
        let replica = &shard.replicas[shard.place()];
        // same count-then-roll-back discipline as submit_with
        replica.routed.fetch_add(1, Ordering::Relaxed);
        match replica.server.submit_with_trace(input, options, trace) {
            Ok(pending) => Ok(pending),
            Err(e) => {
                replica.routed.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Routes a request to a replica of `model` (picked by the set's
    /// [`PlacementPolicy`]) without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::Full`] when the placed replica's queue is at capacity
    /// (the request is not admitted; sibling replicas and other models
    /// keep accepting), [`ServeError::ShuttingDown`] if the replica's
    /// pipeline is gone.
    pub fn try_submit(&self, model: ModelId, input: Tensor) -> ServeResult<Pending> {
        self.try_submit_with(model, input, SubmitOptions::default())
    }

    /// [`Router::try_submit`] with per-request [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// As [`Router::try_submit`], plus [`ServeError::BadOptions`] for an
    /// out-of-range δ override, [`ServeError::BadInput`] for a
    /// wrong-shaped input, [`ServeError::Shed`] /
    /// [`ServeError::QuotaExceeded`] when the placed replica's overload
    /// control refuses the class or tenant.
    pub fn try_submit_with(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
    ) -> ServeResult<Pending> {
        let shard = self.shard(model)?;
        let replica = &shard.replicas[shard.place()];
        // same count-then-roll-back discipline as submit_with
        replica.routed.fetch_add(1, Ordering::Relaxed);
        match replica.server.try_submit_with(input, options) {
            Ok(pending) => Ok(pending),
            Err(e) => {
                replica.routed.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// [`Router::try_submit_with`] continuing a caller-supplied telemetry
    /// trace id (see [`Router::submit_with_trace`]) — the stop-aware
    /// admission path the TCP edge retries on, so a wedged replica can
    /// never park an edge thread in a blocking acquire.
    ///
    /// # Errors
    ///
    /// Same contract as [`Router::try_submit_with`].
    pub fn try_submit_with_trace(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> ServeResult<Pending> {
        let shard = self.shard(model)?;
        let replica = &shard.replicas[shard.place()];
        // same count-then-roll-back discipline as submit_with
        replica.routed.fetch_add(1, Ordering::Relaxed);
        match replica.server.try_submit_with_trace(input, options, trace) {
            Ok(pending) => Ok(pending),
            Err(e) => {
                replica.routed.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// [`Router::try_submit_with_trace`] that takes the input **by value**
    /// and hands it back on refusal (see [`Server::try_submit_reclaim`]):
    /// the tensor rides along with the typed error instead of forcing the
    /// retrying TCP edge to clone it per admission attempt. Routing keeps
    /// the count-then-roll-back discipline, so the `routed ≥ submitted`
    /// snapshot invariant holds on this path too.
    ///
    /// # Errors
    ///
    /// The same refusals as [`Router::try_submit_with_trace`], paired with
    /// `Some(input)` whenever the tensor survives the bounce
    /// ([`ServeError::UnknownModel`] trivially does; only
    /// [`ServeError::ShuttingDown`] consumes it).
    pub fn try_submit_reclaim(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
        trace: Option<TraceId>,
    ) -> Result<Pending, (ServeError, Option<Tensor>)> {
        let shard = match self.shard(model) {
            Ok(shard) => shard,
            Err(e) => return Err((e, Some(input))),
        };
        let replica = &shard.replicas[shard.place()];
        // same count-then-roll-back discipline as submit_with
        replica.routed.fetch_add(1, Ordering::Relaxed);
        match replica.server.try_submit_reclaim(input, options, trace) {
            Ok(pending) => Ok(pending),
            Err(bounce) => {
                replica.routed.fetch_sub(1, Ordering::Relaxed);
                Err(bounce)
            }
        }
    }

    /// A point-in-time snapshot of one model's replica set: per-replica
    /// [`crate::ServerMetrics`] plus the placement histogram.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn shard_metrics(&self, model: ModelId) -> ServeResult<ShardMetrics> {
        Ok(snapshot_shard(self.shard(model)?))
    }

    /// A point-in-time snapshot across all models and replicas: per-model
    /// breakdowns (routing + placement histograms, exits, energy) plus
    /// aggregate accessors.
    pub fn metrics(&self) -> RouterMetrics {
        RouterMetrics {
            shards: self.shards.iter().map(snapshot_shard).collect(),
        }
    }

    /// A full exportable snapshot across all models and replicas: every
    /// replica's counters and latency histogram labeled with
    /// `model`/`replica`, plus all span events drained from every
    /// replica's telemetry domain. Render it with
    /// [`TelemetrySnapshot::render_prometheus`] or
    /// [`TelemetrySnapshot::render_chrome_trace`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snapshot = TelemetrySnapshot::new();
        for shard in &self.shards {
            for (i, replica) in shard.replicas.iter().enumerate() {
                let index = i.to_string();
                let labels = [("model", shard.name.as_str()), ("replica", index.as_str())];
                replica
                    .server
                    .metrics()
                    .fill_telemetry(&mut snapshot, &labels);
            }
        }
        snapshot.spans = self.drain_spans();
        snapshot
    }

    /// Drains the lifecycle span events of **every** replica of every
    /// model, merged and sorted by timestamp. Each event's `at_ns` is
    /// measured from its own replica's epoch; replicas start together in
    /// [`Router::start`], so the merged ordering is only approximate
    /// *across* traces, while intervals *within* one trace are exact (a
    /// request's whole lifecycle is recorded by the one replica that
    /// served it).
    pub fn drain_spans(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for replica in &shard.replicas {
                out.extend(replica.server.telemetry().drain());
            }
        }
        out.sort_by_key(|e| e.at_ns);
        out
    }

    /// Graceful drain-then-stop across **all** replicas of all models:
    /// every replica stops admissions, flushes its queued and partially
    /// formed batches, and resolves every outstanding [`Pending`] before
    /// its threads join. Returns the final metrics snapshot.
    pub fn shutdown(self) -> RouterMetrics {
        RouterMetrics {
            shards: self
                .shards
                .into_iter()
                .map(|shard| ShardMetrics {
                    model: shard.name,
                    placement: shard.placement,
                    replicas: shard
                        .replicas
                        .into_iter()
                        .map(|replica| {
                            let routed = replica.routed.load(Ordering::Relaxed);
                            ReplicaMetrics {
                                routed,
                                metrics: replica.server.shutdown(),
                            }
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Builds one replica set's live [`ShardMetrics`] snapshot.
fn snapshot_shard(shard: &Shard) -> ShardMetrics {
    ShardMetrics {
        model: shard.name.clone(),
        placement: shard.placement,
        replicas: shard
            .replicas
            .iter()
            .map(|replica| ReplicaMetrics {
                routed: replica.routed.load(Ordering::Relaxed),
                metrics: replica.server.metrics(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchPolicy;
    use cdl_core::arch::{self, CdlArchitecture};
    use cdl_core::confidence::{ConfidencePolicy, ExitOverride};
    use cdl_core::head::LinearClassifier;
    use cdl_nn::network::Network;
    use std::time::Duration;

    fn build_untrained(arch: CdlArchitecture, seed: u64) -> Arc<CdlNetwork> {
        let base = Network::from_spec(&arch.spec, seed).unwrap();
        let feats = arch.tap_features().unwrap();
        let stages = arch
            .taps
            .iter()
            .zip(&feats)
            .map(|(t, &f)| {
                (
                    t.spec_layer,
                    t.name.clone(),
                    LinearClassifier::new(f, 10, 1).unwrap(),
                )
            })
            .collect();
        Arc::new(CdlNetwork::assemble(base, stages, ConfidencePolicy::max_prob(0.6)).unwrap())
    }

    fn two_model_specs(policy: BatchPolicy, queue_capacity: usize) -> Vec<ShardSpec> {
        let config = ServerConfig {
            policy,
            queue_capacity,
            workers: 1,
            ..ServerConfig::default()
        };
        vec![
            ShardSpec::new(
                "MNIST_2C",
                build_untrained(arch::mnist_2c(), 5),
                config.clone(),
            ),
            ShardSpec::new("MNIST_3C", build_untrained(arch::mnist_3c(), 9), config),
        ]
    }

    fn images(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| Tensor::full(&[1, 28, 28], 0.1 + 0.07 * (i as f32 % 11.0)))
            .collect()
    }

    #[test]
    fn routes_to_the_right_model() {
        let router = Router::start(two_model_specs(
            BatchPolicy::by_deadline(Duration::from_millis(2)),
            64,
        ))
        .unwrap();
        assert_eq!(router.model_count(), 2);
        let m2c = router.model_id("MNIST_2C").unwrap();
        let m3c = router.model_id("MNIST_3C").unwrap();
        assert_eq!(router.model_name(m2c).unwrap(), "MNIST_2C");
        assert_eq!(router.replica_count(m2c).unwrap(), 1);
        assert_eq!(
            router
                .models()
                .map(|(_, n)| n.to_string())
                .collect::<Vec<_>>(),
            vec!["MNIST_2C", "MNIST_3C"]
        );
        // 2C has 1 conditional stage, 3C has 2 — structurally different
        assert_eq!(router.network(m2c).unwrap().stage_count(), 1);
        assert_eq!(router.network(m3c).unwrap().stage_count(), 2);

        let inputs = images(12);
        let pendings: Vec<(ModelId, Pending)> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let model = if i % 2 == 0 { m2c } else { m3c };
                (model, router.submit(model, x.clone()).unwrap())
            })
            .collect();
        for ((model, pending), x) in pendings.into_iter().zip(&inputs) {
            let expected = router.network(model).unwrap().classify(x).unwrap();
            assert_eq!(pending.wait().unwrap(), expected);
        }
        let metrics = router.shutdown();
        assert_eq!(metrics.routing_histogram(), vec![6, 6]);
        assert_eq!(metrics.completed(), 12);
        assert_eq!(metrics.failed(), 0);
        for shard in &metrics.shards {
            assert_eq!(shard.routed(), shard.submitted());
            for replica in &shard.replicas {
                assert_eq!(replica.routed, replica.metrics.submitted);
            }
        }
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let router = Router::start(two_model_specs(BatchPolicy::default(), 8)).unwrap();
        let ghost = ModelId::from_index(7);
        let x = images(1).remove(0);
        assert_eq!(
            router.submit(ghost, x.clone()).unwrap_err(),
            ServeError::UnknownModel(ghost)
        );
        assert_eq!(
            router.try_submit(ghost, x).unwrap_err(),
            ServeError::UnknownModel(ghost)
        );
        assert!(matches!(
            router.shard_metrics(ghost),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(router.model_name(ghost).is_err());
        assert!(router.replica_count(ghost).is_err());
        // nothing was admitted anywhere
        let metrics = router.shutdown();
        assert_eq!(metrics.submitted(), 0);
        assert!(ServeError::UnknownModel(ghost)
            .to_string()
            .contains("model#7"));
    }

    #[test]
    fn per_request_overrides_route_with_the_request() {
        let router = Router::start(two_model_specs(
            BatchPolicy::by_deadline(Duration::from_millis(2)),
            64,
        ))
        .unwrap();
        let m3c = router.model_id("MNIST_3C").unwrap();
        let x = images(1).remove(0);
        // δ ≈ 1 never exits by confidence; capping at stage 0 must force it
        let opts = SubmitOptions {
            delta: Some(0.999),
            max_stage: Some(0),
            ..SubmitOptions::default()
        };
        let out = router
            .submit_with(m3c, x.clone(), opts)
            .unwrap()
            .wait()
            .unwrap();
        let expected = router
            .network(m3c)
            .unwrap()
            .classify_with_override(
                &x,
                ExitOverride {
                    delta: Some(0.999),
                    max_stage: Some(0),
                },
            )
            .unwrap();
        assert_eq!(out, expected);
        assert_eq!(out.exit_stage, 0);
        // invalid overrides bounce at admission with a typed error
        assert!(matches!(
            router.submit_with(m3c, x, SubmitOptions::with_delta(7.0)),
            Err(ServeError::BadOptions(_))
        ));
        router.shutdown();
    }

    #[test]
    fn shard_backpressure_is_independent() {
        // shard queues of 2; a size-bound batch that never fills keeps
        // everything admitted to 2C stuck in its batcher
        let router = Router::start(two_model_specs(BatchPolicy::by_size(1 << 20), 2)).unwrap();
        let m2c = router.model_id("MNIST_2C").unwrap();
        let m3c = router.model_id("MNIST_3C").unwrap();
        let inputs = images(2);
        let stuck: Vec<Pending> = inputs
            .iter()
            .map(|x| router.try_submit(m2c, x.clone()).unwrap())
            .collect();
        // 2C is saturated…
        assert_eq!(
            router.try_submit(m2c, inputs[0].clone()).unwrap_err(),
            ServeError::Full
        );
        // …but 3C still accepts (and blocks nothing)
        let other = router.try_submit(m3c, inputs[0].clone()).unwrap();
        let live = router.metrics();
        assert_eq!(live.shards[m2c.index()].rejected(), 1);
        assert_eq!(live.shards[m3c.index()].rejected(), 0);
        assert_eq!(live.rejected(), 1);
        assert_eq!(live.queue_depth(), 3);
        // the bounced request was rolled back out of the routed count, so
        // even this *unsettled* snapshot cross-checks per replica
        for shard in &live.shards {
            for replica in &shard.replicas {
                assert_eq!(replica.routed, replica.metrics.submitted);
            }
        }
        // drain-then-stop resolves handles across ALL shards
        let metrics = router.shutdown();
        assert_eq!(metrics.completed(), 3);
        assert_eq!(metrics.queue_depth(), 0);
        for pending in stuck {
            pending.wait().unwrap();
        }
        other.wait().unwrap();
    }

    #[test]
    fn round_robin_places_evenly() {
        let net = build_untrained(arch::mnist_2c(), 5);
        let config = ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 64,
            workers: 1,
            ..ServerConfig::default()
        };
        let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
            .replicated(ReplicaSpec::new(3, PlacementPolicy::RoundRobin))])
        .unwrap();
        let model = router.model_id("m").unwrap();
        assert_eq!(router.replica_count(model).unwrap(), 3);
        let inputs = images(9);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| router.submit(model, x.clone()).unwrap())
            .collect();
        // bit-identical wherever each request was placed
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = router.shutdown();
        assert_eq!(metrics.shards[0].placement_histogram(), vec![3, 3, 3]);
        assert_eq!(metrics.routing_histogram(), vec![9]);
        assert_eq!(metrics.completed(), 9);
        for replica in &metrics.shards[0].replicas {
            assert_eq!(replica.routed, replica.metrics.submitted);
        }
    }

    #[test]
    fn load_aware_policies_balance_a_stalled_set() {
        // never-dispatching batches freeze queue depths, so placement over
        // depth is fully deterministic: both LeastLoaded and (with 2
        // replicas, where both probes always see the whole set) P2C must
        // alternate and split the stream exactly evenly
        for placement in [
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::PowerOfTwoChoices,
        ] {
            let net = build_untrained(arch::mnist_2c(), 5);
            let config = ServerConfig {
                policy: BatchPolicy::by_size(1 << 20),
                queue_capacity: 64,
                workers: 1,
                ..ServerConfig::default()
            };
            let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
                .replicated(ReplicaSpec::new(2, placement))])
            .unwrap();
            let model = router.model_id("m").unwrap();
            let inputs = images(6);
            let _pendings: Vec<Pending> = inputs
                .iter()
                .map(|x| router.try_submit(model, x.clone()).unwrap())
                .collect();
            let live = router.metrics();
            assert_eq!(
                live.shards[0].placement_histogram(),
                vec![3, 3],
                "{placement} must balance a stalled replica set"
            );
            let metrics = router.shutdown();
            assert_eq!(metrics.completed(), 6);
        }
    }

    #[test]
    fn concurrent_snapshots_never_observe_submitted_over_routed() {
        // regression for the routed-after-admission race: hammer submits
        // from several threads while a sampler takes live snapshots — no
        // snapshot may ever catch a replica with submitted > routed
        use std::sync::atomic::AtomicBool;
        let net = build_untrained(arch::mnist_2c(), 5);
        let config = ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 4096,
            workers: 1,
            ..ServerConfig::default()
        };
        let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
            .replicated(ReplicaSpec::new(2, PlacementPolicy::RoundRobin))])
        .unwrap();
        let model = router.model_id("m").unwrap();
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let router = &router;
            let done = &done;
            let submitters: Vec<_> = (0..3)
                .map(|t| {
                    scope.spawn(move || {
                        let x = Tensor::full(&[1, 28, 28], 0.1 + 0.01 * t as f32);
                        let pendings: Vec<Pending> = (0..80)
                            .map(|_| router.submit(model, x.clone()).unwrap())
                            .collect();
                        for pending in pendings {
                            pending.wait().unwrap();
                        }
                    })
                })
                .collect();
            let sampler = scope.spawn(move || {
                let mut samples = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snapshot = router.metrics();
                    for replica in &snapshot.shards[0].replicas {
                        assert!(
                            replica.metrics.submitted <= replica.routed,
                            "snapshot observed submitted {} > routed {}",
                            replica.metrics.submitted,
                            replica.routed
                        );
                    }
                    samples += 1;
                }
                samples
            });
            for handle in submitters {
                handle.join().unwrap();
            }
            done.store(true, Ordering::Relaxed);
            assert!(sampler.join().unwrap() > 0, "sampler never ran");
        });
        let metrics = router.shutdown();
        assert_eq!(metrics.completed(), 240);
        for replica in &metrics.shards[0].replicas {
            assert_eq!(replica.routed, replica.metrics.submitted);
        }
    }

    #[test]
    fn server_round_trips_gemm_kernel() {
        use cdl_tensor::gemm::GemmKernel;
        let net = build_untrained(arch::mnist_2c(), 5);
        for kernel in GemmKernel::ALL {
            let config = ServerConfig {
                policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
                queue_capacity: 8,
                workers: 1,
                gemm_kernel: kernel,
                ..ServerConfig::default()
            };
            let server = Server::start(Arc::clone(&net), config).unwrap();
            assert_eq!(server.gemm_kernel(), kernel);
            drop(server);
        }
    }

    #[test]
    fn mixed_kernel_shards_stay_isolated_and_identical() {
        use cdl_tensor::gemm::GemmKernel;
        // the SAME network behind two shards that differ only in GEMM
        // kernel: every routed answer must be identical (all kernels are
        // bit-exact) and each shard must run the kernel it was configured
        // with — the choice never leaks across shards
        let net = build_untrained(arch::mnist_3c(), 9);
        let config = |kernel| ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 64,
            workers: 1,
            gemm_kernel: kernel,
            ..ServerConfig::default()
        };
        let router = Router::start(vec![
            ShardSpec::new("tiled", Arc::clone(&net), config(GemmKernel::Tiled)),
            ShardSpec::new("reference", Arc::clone(&net), config(GemmKernel::Reference)),
        ])
        .unwrap();
        let tiled = router.model_id("tiled").unwrap();
        let reference = router.model_id("reference").unwrap();
        let inputs = images(10);
        let pairs: Vec<(Pending, Pending)> = inputs
            .iter()
            .map(|x| {
                (
                    router.submit(tiled, x.clone()).unwrap(),
                    router.submit(reference, x.clone()).unwrap(),
                )
            })
            .collect();
        for ((t, r), x) in pairs.into_iter().zip(&inputs) {
            let expected = net.classify(x).unwrap();
            let t = t.wait().unwrap();
            let r = r.wait().unwrap();
            assert_eq!(t, expected, "tiled shard");
            assert_eq!(r, expected, "reference shard");
            assert_eq!(t, r);
        }
        let metrics = router.shutdown();
        assert_eq!(metrics.routing_histogram(), vec![10, 10]);
        assert_eq!(metrics.completed(), 20);
        assert_eq!(metrics.failed(), 0);
    }

    #[test]
    fn adopted_traces_flow_through_routing() {
        let net = build_untrained(arch::mnist_2c(), 5);
        let config = ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 64,
            workers: 1,
            telemetry: cdl_telemetry::TelemetryConfig::enabled(),
            ..ServerConfig::default()
        };
        let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
            .replicated(ReplicaSpec::new(2, PlacementPolicy::RoundRobin))])
        .unwrap();
        let model = router.model_id("m").unwrap();
        let trace = TraceId::next();
        let x = images(1).remove(0);
        let pending = router
            .submit_with_trace(model, x, SubmitOptions::default(), trace)
            .unwrap();
        assert_eq!(pending.trace(), Some(trace), "replica adopted the id");
        pending.wait().unwrap();
        // Exit is recorded before the result settles, so after wait() the
        // admission-to-exit lifecycle is guaranteed drained (only Reply
        // may still race; tests/telemetry.rs covers it post-shutdown)
        let events = router.drain_spans();
        let mine: Vec<_> = events.iter().filter(|e| e.trace == trace).collect();
        assert!(
            mine.iter()
                .any(|e| e.kind == cdl_telemetry::EventKind::Admit),
            "missing Admit: {mine:?}"
        );
        assert!(
            mine.iter()
                .any(|e| matches!(e.kind, cdl_telemetry::EventKind::Exit(_))),
            "missing Exit: {mine:?}"
        );
        router.shutdown();
    }

    #[test]
    fn telemetry_snapshot_labels_every_replica() {
        let router = Router::start(two_model_specs(
            BatchPolicy::by_deadline(Duration::from_millis(1)),
            64,
        ))
        .unwrap();
        let m2c = router.model_id("MNIST_2C").unwrap();
        let inputs = images(4);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| router.submit(m2c, x.clone()).unwrap())
            .collect();
        for pending in pendings {
            pending.wait().unwrap();
        }
        let snapshot = router.telemetry_snapshot();
        let text = snapshot.render_prometheus();
        assert!(text.contains(r#"model="MNIST_2C""#), "{text}");
        assert!(text.contains(r#"model="MNIST_3C""#), "{text}");
        assert!(text.contains(r#"replica="0""#), "{text}");
        assert!(text.contains("cdl_requests_completed_total"), "{text}");
        assert!(text.contains("cdl_request_latency_ns_bucket"), "{text}");
        router.shutdown();
    }

    #[test]
    fn start_validates_shard_set() {
        assert!(matches!(
            Router::start(vec![]),
            Err(ServeError::BadConfig(_))
        ));
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[1].name = specs[0].name.clone();
        assert!(matches!(
            Router::start(specs),
            Err(ServeError::BadConfig(_))
        ));
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[0].config.workers = 0;
        assert!(Router::start(specs).is_err());
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[0].replicas = ReplicaSpec::new(0, PlacementPolicy::RoundRobin);
        assert!(matches!(
            Router::start(specs),
            Err(ServeError::BadConfig(_))
        ));
    }
}
