//! Sharded multi-network serving: one front-end fanning requests out to
//! per-model **replica sets** of shards.
//!
//! A [`Router`] owns one replica set per registered model; every replica is
//! the full single-model pipeline of [`Server`] — bounded admission gate,
//! dynamic batcher, worker pool of persistent
//! [`cdl_core::batch::BatchEvaluator`]s. Requests carry a [`ModelId`]; at
//! admission the model's [`PlacementPolicy`] picks the replica (round-robin,
//! least-loaded, or power-of-two-choices over the replicas' **live queue
//! depths**), and the request is routed synchronously into that replica's
//! admission queue. **Backpressure stays per replica**: a saturated replica
//! blocks (or bounces) only the submitters placed on it, never traffic for
//! its siblings or for other models.
//!
//! Per-request [`SubmitOptions`] compose with routing and placement: one
//! stream can mix models *and* δ/depth service levels, and every response
//! stays bit-identical to
//! [`cdl_core::network::CdlNetwork::classify_with_override`] on the routed
//! model **whichever replica served it** (all replicas of a model evaluate
//! the same network — pinned by `tests/router_equivalence.rs` and
//! `tests/replica_equivalence.rs`).
//!
//! On top of routing, each shard optionally carries the fault-tolerance
//! stack (see the crate-level *Failure model* essay in [`crate`]):
//!
//! - a [`HealthPolicy`] drives a per-replica health state machine
//!   ([`ReplicaHealth`]) over windowed error-rate and latency-tail
//!   signals — placement skips `Evicted` replicas entirely and readmits
//!   through bounded canary probes;
//! - a [`RetryPolicy`] adds budgeted retries on replica failure and an
//!   optional hedged second attempt, first-completion-wins, with the
//!   losing attempt cancelled at zero evaluator ops;
//! - [`Router::swap_model`] hot-swaps a shard's network replica by
//!   replica without draining the router.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use cdl_core::network::CdlNetwork;
use cdl_telemetry::{EventKind, LogHistogram, SpanEvent, TelemetrySnapshot, TraceId};
use cdl_tensor::Tensor;

use crate::config::{
    HealthPolicy, PlacementPolicy, ReplicaHealth, ReplicaSpec, RetryPolicy, ServerConfig,
    SubmitOptions,
};
use crate::error::{ServeError, ServeResult};
use crate::fault::FaultPlan;
use crate::metrics::{ReplicaMetrics, RouterMetrics, ServerMetrics, ShardMetrics};
use crate::pending::{pending_pair, Fulfiller, Pending};
use crate::server::Server;

/// Identifies one model (replica set) registered with a [`Router`].
///
/// Ids are dense indices in registration order: the `i`-th
/// [`ShardSpec`] passed to [`Router::start`] gets id `i`. Look one up by
/// name with [`Router::model_id`], or construct it directly from a known
/// registration index with [`ModelId::from_index`]. Replicas are an
/// implementation detail behind the id — callers never address one
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(usize);

impl ModelId {
    /// The id of the model registered at `index` (0-based registration
    /// order).
    pub fn from_index(index: usize) -> Self {
        ModelId(index)
    }

    /// This id's registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model#{}", self.0)
    }
}

/// One model's slice of a [`Router`]: the network it serves, the serving
/// configuration of each replica, how it is replicated, and its optional
/// fault-tolerance policies.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Model name, unique within the router (e.g. `"MNIST_2C"`).
    pub name: String,
    /// The network every replica of this model evaluates.
    pub net: Arc<CdlNetwork>,
    /// The pipeline configuration (batch policy, queue capacity, worker
    /// count, energy model) **each replica** gets — replica sets are
    /// configured independently of each other.
    pub config: ServerConfig,
    /// Replica count + placement policy ([`ReplicaSpec::single`] by
    /// default — the unreplicated PR-3 behaviour).
    pub replicas: ReplicaSpec,
    /// Health-based eviction/readmission thresholds; `None` (the default)
    /// disables health tracking and every replica stays
    /// [`ReplicaHealth::Healthy`] forever.
    pub health: Option<HealthPolicy>,
    /// Request-level retry/hedging; `None` (the default) keeps the
    /// single-attempt behaviour.
    pub retry: Option<RetryPolicy>,
    /// Per-replica fault-plan overrides `(replica index, plan)`, replacing
    /// [`ServerConfig::fault`] for those replicas only — how chaos tests
    /// break *one* replica of a set.
    pub replica_faults: Vec<(usize, FaultPlan)>,
}

impl ShardSpec {
    /// A single-replica spec serving `net` under `name` with `config`.
    pub fn new(name: impl Into<String>, net: Arc<CdlNetwork>, config: ServerConfig) -> Self {
        ShardSpec {
            name: name.into(),
            net,
            config,
            replicas: ReplicaSpec::single(),
            health: None,
            retry: None,
            replica_faults: Vec::new(),
        }
    }

    /// The same spec replicated per `replicas` (builder style):
    /// `ShardSpec::new(...).replicated(ReplicaSpec::new(3,
    /// PlacementPolicy::LeastLoaded))`.
    pub fn replicated(mut self, replicas: ReplicaSpec) -> Self {
        self.replicas = replicas;
        self
    }

    /// Attaches a health policy (builder style).
    pub fn health(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// Attaches a retry/hedge policy (builder style).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Arms `plan` on replica `replica` only (builder style), overriding
    /// [`ServerConfig::fault`] for that replica.
    pub fn fault_on(mut self, replica: usize, plan: FaultPlan) -> Self {
        self.replica_faults.push((replica, plan));
        self
    }
}

/// The health-check window baseline of one replica: the counter values and
/// latency histogram at the last *judged* check, so the next check judges
/// only the delta. Inconclusive checks (fewer than the policy's
/// `min_samples` settled outcomes) leave the baseline in place and keep
/// accumulating.
struct HealthWindow {
    completed: u64,
    failed: u64,
    faulted: u64,
    latency: LogHistogram,
    /// Consecutive unhealthy checks (1 on `Healthy → Degraded`).
    bad_streak: u32,
}

impl HealthWindow {
    fn new() -> Self {
        HealthWindow {
            completed: 0,
            failed: 0,
            faulted: 0,
            latency: LogHistogram::new(),
            bad_streak: 0,
        }
    }

    /// Re-baselines the window at `snapshot` (keeps `bad_streak`).
    fn rebase(&mut self, snapshot: &ServerMetrics) {
        self.completed = snapshot.completed;
        self.failed = snapshot.failed;
        self.faulted = snapshot.faults;
        self.latency = snapshot.latency_histogram.clone();
    }
}

/// One running replica: a hot-swappable [`Server`] slot plus the
/// router-level placement counter and health state.
struct Replica {
    /// The live pipeline. Swapped whole by [`Router::swap_model`]; taken
    /// (→ `None`) only by [`Router::shutdown`]. Submission paths clone the
    /// `Arc` out under the read lock and release it before admitting, so a
    /// swap never blocks behind an in-flight request.
    server: RwLock<Option<Arc<Server>>>,
    /// This replica's own pipeline configuration (the shard config plus
    /// any [`ShardSpec::fault_on`] override) — what a swapped-in server is
    /// rebuilt from.
    config: ServerConfig,
    /// Requests the router placed on this replica — counted at the router
    /// **before** the replica admits (rolled back if admission fails), so
    /// a concurrent snapshot can observe `routed > submitted` (a placement
    /// in flight) but never the reverse; settled snapshots agree exactly.
    /// Counted independently of the replica's own `submitted` counter so
    /// metrics consistency is a checkable invariant, not a tautology.
    /// Spans server generations: a swap does not reset it.
    routed: AtomicU64,
    /// Current [`ReplicaHealth`] code.
    health: AtomicU8,
    /// Health state transitions so far.
    transitions: AtomicU64,
    /// Canary placements claimed while `Probing` (capped at the policy's
    /// `probe_budget`; reset on `Evicted → Probing`).
    probes_used: AtomicU64,
    /// Check-window baseline; the mutex also serializes health checks.
    window: Mutex<HealthWindow>,
    /// Final metrics of servers retired by [`Router::swap_model`], folded
    /// into every later snapshot so a swap never loses counters.
    retired: Mutex<Vec<ServerMetrics>>,
}

impl Replica {
    fn health_state(&self) -> ReplicaHealth {
        ReplicaHealth::from_code(self.health.load(Ordering::Relaxed))
            .expect("health slot only ever holds valid codes")
    }

    /// Clones the live server handle out, `None` once shutdown took it.
    fn server(&self) -> Option<Arc<Server>> {
        self.server.read().unwrap().clone()
    }

    fn queue_depth(&self) -> usize {
        self.server().map_or(usize::MAX, |s| s.queue_depth())
    }
}

/// One running replica set.
struct Shard {
    name: String,
    placement: PlacementPolicy,
    /// Monotonic placement cursor: the round-robin position, and the
    /// deterministic seed stream for power-of-two-choices sampling.
    cursor: AtomicU64,
    health: Option<HealthPolicy>,
    retry: Option<RetryPolicy>,
    /// Placements since start — drives the opportunistic health check
    /// every [`HealthPolicy::check_every`] placements.
    checks: AtomicU64,
    /// Retry attempts launched beyond each request's first.
    retries: AtomicU64,
    /// Hedged second attempts launched.
    hedges: AtomicU64,
    /// Cached hedge delay in nanoseconds (recomputed every
    /// `HEDGE_REFRESH` hedged submissions from the merged shard latency
    /// histogram; starts at the policy's `hedge_floor`).
    hedge_delay_ns: AtomicU64,
    hedge_calls: AtomicU64,
    replicas: Vec<Replica>,
}

/// How many hedged submissions share one cached hedge-delay computation
/// (merging every replica's latency histogram is too heavy per request).
const HEDGE_REFRESH: u64 = 128;

/// SplitMix64 — the cheap stateless mixer turning the placement cursor
/// into the pseudo-random probe pair for power-of-two-choices.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Shard {
    /// Picks the replica index the next admission goes to.
    ///
    /// With no [`HealthPolicy`] this is exactly the placement policy over
    /// live queue depths. With one, a `Probing` replica first claims
    /// canary placements up to its probe budget; normal placements then
    /// run over the **live** subset ({`Healthy`, `Degraded`}), falling
    /// back to the full set if nothing is live (an all-evicted shard keeps
    /// serving rather than stranding traffic). `exclude` (used by retries
    /// and hedges) removes one replica from consideration when siblings
    /// remain — a retry should not land on the replica that just failed.
    fn place(&self, exclude: Option<usize>) -> usize {
        let n = self.replicas.len();
        if n == 1 {
            return 0;
        }
        if let Some(policy) = &self.health {
            // canary claims first: readmission needs traffic to judge
            for (i, replica) in self.replicas.iter().enumerate() {
                if Some(i) == exclude || replica.health_state() != ReplicaHealth::Probing {
                    continue;
                }
                if replica.probes_used.fetch_add(1, Ordering::Relaxed) < policy.probe_budget {
                    return i;
                }
                replica.probes_used.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&i| self.replicas[i].health_state().is_live())
            .collect();
        if candidates.len() > 1 {
            if let Some(x) = exclude {
                candidates.retain(|&i| i != x);
            }
        }
        if candidates.is_empty() {
            candidates = (0..n).collect();
        }
        let m = candidates.len();
        if m == 1 {
            return candidates[0];
        }
        let depth = |i: usize| self.replicas[i].queue_depth();
        match self.placement {
            PlacementPolicy::RoundRobin => {
                candidates[(self.cursor.fetch_add(1, Ordering::Relaxed) % m as u64) as usize]
            }
            PlacementPolicy::LeastLoaded => candidates
                .iter()
                .copied()
                .min_by_key(|&i| depth(i))
                .expect("candidate set is non-empty"),
            PlacementPolicy::PowerOfTwoChoices => {
                let h = splitmix64(self.cursor.fetch_add(1, Ordering::Relaxed));
                let a = (h % m as u64) as usize;
                // pick b from the m-1 non-a indices so the pair is distinct
                let mut b = ((h >> 32) % (m as u64 - 1)) as usize;
                if b >= a {
                    b += 1;
                }
                let (a, b) = (candidates[a], candidates[b]);
                if depth(b) < depth(a) {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Counts a placement and runs the opportunistic health check when the
    /// policy's `check_every` divides the count.
    fn auto_check(&self) {
        if let Some(policy) = &self.health {
            if policy.check_every > 0
                && (self.checks.fetch_add(1, Ordering::Relaxed) + 1)
                    .is_multiple_of(policy.check_every)
            {
                self.check_health_now();
            }
        }
    }

    /// Runs one health check over every replica (no-op without a policy).
    fn check_health_now(&self) {
        if let Some(policy) = &self.health {
            for replica in &self.replicas {
                self.check_replica(replica, policy);
            }
        }
    }

    /// Judges one replica's window since its last conclusive check and
    /// advances the state machine (see [`ReplicaHealth`]).
    fn check_replica(&self, replica: &Replica, policy: &HealthPolicy) {
        let Some(server) = replica.server() else {
            return; // shutting down
        };
        // the window mutex serializes checks so two concurrent checks can
        // never double-count one transition
        let mut window = replica.window.lock().unwrap();
        let state = replica.health_state();
        let snapshot = server.metrics();
        if state == ReplicaHealth::Evicted {
            // an evicted replica saw no traffic, so there is nothing to
            // judge — open the canary window instead
            replica.probes_used.store(0, Ordering::Relaxed);
            window.rebase(&snapshot);
            window.bad_streak = 0;
            self.transition(replica, &server, state, ReplicaHealth::Probing);
            return;
        }
        let completed = snapshot.completed.saturating_sub(window.completed);
        let errors = snapshot.failed.saturating_sub(window.failed)
            + snapshot.faults.saturating_sub(window.faulted);
        let samples = completed + errors;
        let needed = if state == ReplicaHealth::Probing {
            policy.min_samples.min(policy.probe_budget)
        } else {
            policy.min_samples
        };
        if samples < needed {
            return; // inconclusive: keep accumulating this window
        }
        let tail = snapshot
            .latency_histogram
            .subtracted(&window.latency)
            .quantile_duration(policy.latency_quantile);
        let latency_bad = match (policy.latency_threshold, tail) {
            (Some(limit), Some(q)) => q > limit,
            _ => false,
        };
        let error_rate = errors as f64 / samples as f64;
        let bad = error_rate > policy.error_threshold || latency_bad;
        window.rebase(&snapshot);
        match (state, bad) {
            (ReplicaHealth::Healthy, true) => {
                window.bad_streak = 1;
                self.transition(replica, &server, state, ReplicaHealth::Degraded);
            }
            (ReplicaHealth::Healthy, false) => window.bad_streak = 0,
            (ReplicaHealth::Degraded, true) => {
                window.bad_streak += 1;
                if window.bad_streak >= policy.evict_after {
                    self.transition(replica, &server, state, ReplicaHealth::Evicted);
                }
            }
            (ReplicaHealth::Degraded, false) => {
                window.bad_streak = 0;
                self.transition(replica, &server, state, ReplicaHealth::Healthy);
            }
            (ReplicaHealth::Probing, true) => {
                self.transition(replica, &server, state, ReplicaHealth::Evicted);
            }
            (ReplicaHealth::Probing, false) => {
                window.bad_streak = 0;
                self.transition(replica, &server, state, ReplicaHealth::Healthy);
            }
            (ReplicaHealth::Evicted, _) => unreachable!("handled above"),
        }
    }

    /// Records one health transition: state slot, counter, span event.
    fn transition(
        &self,
        replica: &Replica,
        server: &Server,
        from: ReplicaHealth,
        to: ReplicaHealth,
    ) {
        replica.health.store(to.code(), Ordering::Relaxed);
        replica.transitions.fetch_add(1, Ordering::Relaxed);
        server.telemetry().record(
            TraceId::next(),
            EventKind::Health {
                from: from.code(),
                to: to.code(),
            },
        );
    }

    /// The delay before a hedged second attempt: the shard's merged
    /// latency histogram at the policy's hedge quantile, floored at
    /// `hedge_floor`, cached across [`HEDGE_REFRESH`] submissions.
    fn hedge_delay(&self, policy: &RetryPolicy) -> Duration {
        let Some(quantile) = policy.hedge_quantile else {
            return policy.hedge_floor;
        };
        if self
            .hedge_calls
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(HEDGE_REFRESH)
        {
            let mut merged = LogHistogram::new();
            for replica in &self.replicas {
                if let Some(server) = replica.server() {
                    merged.merge(&server.metrics().latency_histogram);
                }
            }
            let delay = merged
                .quantile_duration(quantile)
                .unwrap_or(Duration::ZERO)
                .max(policy.hedge_floor);
            self.hedge_delay_ns
                .store(delay.as_nanos() as u64, Ordering::Relaxed);
        }
        Duration::from_nanos(self.hedge_delay_ns.load(Ordering::Relaxed))
    }
}

/// Whether a failed attempt may be relaunched on another replica. Typed
/// refusals (`Full` is the exception below, `Shed`, quota, validation) are
/// backpressure or caller errors — retrying them would amplify overload or
/// just fail again. `Full` *is* retryable: a sibling replica may have
/// queue headroom even when the placed one does not.
fn retryable(error: &ServeError) -> bool {
    matches!(
        error,
        ServeError::Eval(_) | ServeError::Disconnected | ServeError::Fault(_) | ServeError::Full
    )
}

/// One in-flight attempt of a retried/hedged request.
struct Attempt {
    id: u64,
    replica: usize,
    /// Shared so the slot can both be claimed on completion and dropped
    /// (→ cancelled at zero evaluator ops) when a sibling attempt wins.
    pending: Arc<Pending>,
}

/// Mutable half of one retried/hedged request's race.
struct RaceState {
    /// Taken exactly once, by whichever attempt settles the caller.
    fulfiller: Option<Fulfiller>,
    retries_left: u32,
    attempts: Vec<Attempt>,
    next_id: u64,
}

/// One retried/hedged request: the submission parameters plus the race
/// between its attempts. First completion wins the [`Fulfiller`]; losing
/// attempts are dropped, which cancels them before any evaluator ops are
/// spent on them.
struct RaceCtx {
    shard: Arc<Shard>,
    input: Tensor,
    options: SubmitOptions,
    trace: Option<TraceId>,
    state: Mutex<RaceState>,
}

impl RaceCtx {
    /// Launches attempts until one is in flight, spending retry budget on
    /// retryable synchronous refusals. `blocking` only holds for the very
    /// first attempt from the caller's thread — relaunches from completion
    /// callbacks must never block a worker on a full admission gate.
    fn launch_until_inflight(
        ctx: &Arc<RaceCtx>,
        mut exclude: Option<usize>,
        mut blocking: bool,
    ) -> Result<(), ServeError> {
        loop {
            match Self::one_attempt(ctx, exclude, blocking) {
                Ok(()) => return Ok(()),
                Err((error, at)) => {
                    blocking = false;
                    let budgeted = retryable(&error) && {
                        let mut state = ctx.state.lock().unwrap();
                        if state.retries_left > 0 {
                            state.retries_left -= 1;
                            true
                        } else {
                            false
                        }
                    };
                    if !budgeted {
                        return Err(error);
                    }
                    ctx.shard.retries.fetch_add(1, Ordering::Relaxed);
                    exclude = at;
                }
            }
        }
    }

    /// Places and submits one attempt. `Err` carries the refusing replica
    /// so the caller can exclude it from the relaunch.
    fn one_attempt(
        ctx: &Arc<RaceCtx>,
        exclude: Option<usize>,
        blocking: bool,
    ) -> Result<(), (ServeError, Option<usize>)> {
        let index = ctx.shard.place(exclude);
        let replica = &ctx.shard.replicas[index];
        let Some(server) = replica.server() else {
            return Err((ServeError::ShuttingDown, Some(index)));
        };
        replica.routed.fetch_add(1, Ordering::Relaxed);
        let submitted = match (blocking, ctx.trace) {
            (true, Some(t)) => server.submit_with_trace(ctx.input.clone(), ctx.options, t),
            (true, None) => server.submit_with(ctx.input.clone(), ctx.options),
            (false, Some(t)) => server.try_submit_with_trace(ctx.input.clone(), ctx.options, t),
            (false, None) => server.try_submit_with(ctx.input.clone(), ctx.options),
        };
        let pending = match submitted {
            Ok(pending) => Arc::new(pending),
            Err(error) => {
                replica.routed.fetch_sub(1, Ordering::Relaxed);
                return Err((error, Some(index)));
            }
        };
        let id = {
            let mut state = ctx.state.lock().unwrap();
            if state.fulfiller.is_none() {
                // a sibling settled while this attempt was admitting:
                // dropping the handle cancels it at zero evaluator ops
                drop(state);
                return Ok(());
            }
            let id = state.next_id;
            state.next_id += 1;
            state.attempts.push(Attempt {
                id,
                replica: index,
                pending: Arc::clone(&pending),
            });
            id
        };
        // outside the state lock: an already-settled slot fires the waker
        // synchronously, and the waker re-enters the state lock
        let waker_ctx = Arc::clone(ctx);
        pending.set_waker(move || Self::on_ready(&waker_ctx, id));
        Ok(())
    }

    /// Completion callback of one attempt: settle the caller on success,
    /// relaunch (budget permitting) on retryable failure.
    fn on_ready(ctx: &Arc<RaceCtx>, id: u64) {
        let mut state = ctx.state.lock().unwrap();
        let Some(position) = state.attempts.iter().position(|a| a.id == id) else {
            return; // already drained by a winning sibling
        };
        let Some(result) = state.attempts[position].pending.try_claim() else {
            return;
        };
        let attempt = state.attempts.remove(position);
        match result {
            Ok(output) => {
                let Some(fulfiller) = state.fulfiller.take() else {
                    return;
                };
                let losers: Vec<Attempt> = state.attempts.drain(..).collect();
                drop(state);
                fulfiller.settle(Ok(output));
                // dropping the losers' handles cancels them: the batcher
                // and workers skip cancelled slots without evaluating
                drop(losers);
            }
            Err(error) => {
                let budgeted =
                    retryable(&error) && state.fulfiller.is_some() && state.retries_left > 0;
                if budgeted {
                    state.retries_left -= 1;
                    drop(state);
                    ctx.shard.retries.fetch_add(1, Ordering::Relaxed);
                    if let Err(final_error) =
                        Self::launch_until_inflight(ctx, Some(attempt.replica), false)
                    {
                        Self::no_attempt_left(ctx, final_error);
                    }
                } else {
                    drop(state);
                    Self::no_attempt_left(ctx, error);
                }
            }
        }
    }

    /// A launch chain died with `error`: settle the caller with it unless
    /// a sibling attempt is still racing (its own outcome will settle).
    fn no_attempt_left(ctx: &Arc<RaceCtx>, error: ServeError) {
        let mut state = ctx.state.lock().unwrap();
        if state.attempts.is_empty() {
            if let Some(fulfiller) = state.fulfiller.take() {
                drop(state);
                fulfiller.settle(Err(error));
            }
        }
    }

    /// Hedge-timer callback: launch the hedged second attempt if the
    /// primary is still unsettled.
    fn fire_hedge(ctx: &Arc<RaceCtx>) {
        let primary = {
            let state = ctx.state.lock().unwrap();
            if state.fulfiller.is_none() || state.attempts.is_empty() {
                return; // settled, or no primary left to hedge against
            }
            state.attempts[0].replica
        };
        ctx.shard.hedges.fetch_add(1, Ordering::Relaxed);
        if let Err(error) = Self::launch_until_inflight(ctx, Some(primary), false) {
            Self::no_attempt_left(ctx, error);
        }
    }
}

/// A timer queue entry: the instant to fire at and the callback.
type TimerEntry = (Instant, Box<dyn FnOnce() + Send>);

struct TimerQueue {
    entries: Vec<TimerEntry>,
    stopped: bool,
}

struct TimerShared {
    queue: Mutex<TimerQueue>,
    cv: Condvar,
}

/// One shared timer thread firing hedged second attempts — started only
/// when some shard actually hedges, joined on router shutdown/drop.
struct HedgeTimer {
    shared: Arc<TimerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HedgeTimer {
    fn start() -> HedgeTimer {
        let shared = Arc::new(TimerShared {
            queue: Mutex::new(TimerQueue {
                entries: Vec::new(),
                stopped: false,
            }),
            cv: Condvar::new(),
        });
        let run_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("cdl-hedge-timer".into())
            .spawn(move || Self::run(&run_shared))
            .expect("spawn hedge timer thread");
        HedgeTimer {
            shared,
            thread: Some(thread),
        }
    }

    fn schedule(&self, at: Instant, fire: Box<dyn FnOnce() + Send>) {
        let mut queue = self.shared.queue.lock().unwrap();
        if queue.stopped {
            return;
        }
        queue.entries.push((at, fire));
        self.shared.cv.notify_one();
    }

    fn run(shared: &TimerShared) {
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if queue.stopped {
                return;
            }
            let now = Instant::now();
            let mut due = Vec::new();
            let mut i = 0;
            while i < queue.entries.len() {
                if queue.entries[i].0 <= now {
                    due.push(queue.entries.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            if !due.is_empty() {
                // fire outside the lock: callbacks submit requests and may
                // schedule further timers
                drop(queue);
                for fire in due {
                    fire();
                }
                queue = shared.queue.lock().unwrap();
                continue;
            }
            queue = match queue.entries.iter().map(|e| e.0).min() {
                None => shared.cv.wait(queue).unwrap(),
                Some(next) => {
                    let wait = next.saturating_duration_since(now);
                    shared.cv.wait_timeout(queue, wait).unwrap().0
                }
            };
        }
    }
}

impl Drop for HedgeTimer {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.stopped = true;
            queue.entries.clear();
            self.shared.cv.notify_one();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// A gate-vacancy listener retained by the router (so swapped-in servers
/// get re-registered) — see [`Router::on_gate_vacancy`].
type VacancyListener = Arc<dyn Fn() + Send + Sync>;

/// The sharded, replicated multi-network serving front-end.
///
/// See the [module docs](self) for the architecture and guarantees.
/// `shutdown` (or `Drop`) drains every replica of every model: all
/// outstanding [`Pending`] handles resolve before the threads exit.
pub struct Router {
    shards: Vec<Arc<Shard>>,
    hedge: Option<HedgeTimer>,
    vacancy: Mutex<Vec<VacancyListener>>,
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut models = f.debug_map();
        for shard in &self.shards {
            models.entry(&shard.name, &shard.replicas.len());
        }
        models.finish()
    }
}

impl Router {
    /// Starts every replica of every spec and begins accepting routed
    /// requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] when no shard is given, a model
    /// name repeats, a replica count is zero, any [`ServerConfig`],
    /// [`HealthPolicy`], or [`RetryPolicy`] is invalid, or a
    /// [`ShardSpec::fault_on`] index is out of range.
    pub fn start(specs: Vec<ShardSpec>) -> ServeResult<Router> {
        if specs.is_empty() {
            return Err(ServeError::BadConfig(
                "router needs at least one shard".into(),
            ));
        }
        for (i, spec) in specs.iter().enumerate() {
            if specs[..i].iter().any(|s| s.name == spec.name) {
                return Err(ServeError::BadConfig(format!(
                    "duplicate model name {:?}",
                    spec.name
                )));
            }
            spec.replicas.validate()?;
            if let Some(policy) = &spec.health {
                policy.validate()?;
            }
            if let Some(policy) = &spec.retry {
                policy.validate()?;
            }
            for (index, _) in &spec.replica_faults {
                if *index >= spec.replicas.replicas {
                    return Err(ServeError::BadConfig(format!(
                        "fault_on replica {index} out of range for {} replicas",
                        spec.replicas.replicas
                    )));
                }
            }
        }
        let hedges = specs
            .iter()
            .any(|s| s.retry.as_ref().is_some_and(|r| r.hedge_quantile.is_some()));
        let shards = specs
            .into_iter()
            .map(|spec| {
                let replicas = (0..spec.replicas.replicas)
                    .map(|i| {
                        let mut config = spec.config.clone();
                        if let Some((_, plan)) =
                            spec.replica_faults.iter().find(|(index, _)| *index == i)
                        {
                            config.fault = plan.clone();
                        }
                        let server = Server::start(Arc::clone(&spec.net), config.clone())?;
                        Ok(Replica {
                            server: RwLock::new(Some(Arc::new(server))),
                            config,
                            routed: AtomicU64::new(0),
                            health: AtomicU8::new(ReplicaHealth::Healthy.code()),
                            transitions: AtomicU64::new(0),
                            probes_used: AtomicU64::new(0),
                            window: Mutex::new(HealthWindow::new()),
                            retired: Mutex::new(Vec::new()),
                        })
                    })
                    .collect::<ServeResult<Vec<Replica>>>()?;
                let hedge_floor = spec.retry.map_or(Duration::ZERO, |r| r.hedge_floor);
                Ok(Arc::new(Shard {
                    name: spec.name,
                    placement: spec.replicas.placement,
                    cursor: AtomicU64::new(0),
                    health: spec.health,
                    retry: spec.retry,
                    checks: AtomicU64::new(0),
                    retries: AtomicU64::new(0),
                    hedges: AtomicU64::new(0),
                    hedge_delay_ns: AtomicU64::new(hedge_floor.as_nanos() as u64),
                    hedge_calls: AtomicU64::new(0),
                    replicas,
                }))
            })
            .collect::<ServeResult<Vec<Arc<Shard>>>>()?;
        Ok(Router {
            shards,
            hedge: hedges.then(HedgeTimer::start),
            vacancy: Mutex::new(Vec::new()),
        })
    }

    /// Number of registered models (replica sets, not replicas).
    pub fn model_count(&self) -> usize {
        self.shards.len()
    }

    /// `(id, name)` of every registered model, in registration order.
    pub fn models(&self) -> impl Iterator<Item = (ModelId, &str)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (ModelId(i), s.name.as_str()))
    }

    /// Looks a model up by name.
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.shards.iter().position(|s| s.name == name).map(ModelId)
    }

    /// The name `model` was registered under.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn model_name(&self, model: ModelId) -> ServeResult<&str> {
        Ok(self.shard(model)?.name.as_str())
    }

    /// How many replicas serve `model`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn replica_count(&self, model: ModelId) -> ServeResult<usize> {
        Ok(self.shard(model)?.replicas.len())
    }

    /// The network `model`'s replicas currently evaluate (the
    /// most-recently swapped-in one during a [`Router::swap_model`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::ShuttingDown`] once shutdown has begun.
    pub fn network(&self, model: ModelId) -> ServeResult<Arc<CdlNetwork>> {
        self.shard(model)?.replicas[0]
            .server()
            .map(|s| s.network_arc())
            .ok_or(ServeError::ShuttingDown)
    }

    /// Current health state of every replica of `model`, in replica order,
    /// **without** running a check.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn replica_health(&self, model: ModelId) -> ServeResult<Vec<ReplicaHealth>> {
        Ok(self
            .shard(model)?
            .replicas
            .iter()
            .map(|r| r.health_state())
            .collect())
    }

    /// Runs one health check over every replica of `model` right now and
    /// returns the resulting states (what deterministic tests drive
    /// instead of waiting for the every-`check_every`-placements
    /// opportunistic check). A no-op (states stay `Healthy`) without a
    /// [`ShardSpec::health`] policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn check_health(&self, model: ModelId) -> ServeResult<Vec<ReplicaHealth>> {
        let shard = self.shard(model)?;
        shard.check_health_now();
        Ok(shard.replicas.iter().map(|r| r.health_state()).collect())
    }

    fn shard(&self, model: ModelId) -> ServeResult<&Arc<Shard>> {
        self.shards
            .get(model.0)
            .ok_or(ServeError::UnknownModel(model))
    }

    /// The routed submission path shared by the whole submit family.
    /// Without a [`RetryPolicy`] this is one placement into one replica
    /// (count-then-roll-back on refusal, exactly the pre-resilience
    /// behaviour); with one it runs the retry/hedge race of [`RaceCtx`].
    fn submit_routed(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
        trace: Option<TraceId>,
        blocking: bool,
    ) -> ServeResult<Pending> {
        let shard = self.shard(model)?;
        shard.auto_check();
        let Some(policy) = shard.retry else {
            let replica = &shard.replicas[shard.place(None)];
            let Some(server) = replica.server() else {
                return Err(ServeError::ShuttingDown);
            };
            // count the placement BEFORE the replica admits and roll back
            // on failure (mirroring the admitted/unadmitted pattern inside
            // the gate): a concurrent metrics() snapshot must never
            // observe `submitted > routed` — that would break the
            // documented cross-check invariant on `ReplicaMetrics::routed`
            replica.routed.fetch_add(1, Ordering::Relaxed);
            let submitted = match (blocking, trace) {
                (true, Some(t)) => server.submit_with_trace(input, options, t),
                (true, None) => server.submit_with(input, options),
                (false, Some(t)) => server.try_submit_with_trace(input, options, t),
                (false, None) => server.try_submit_with(input, options),
            };
            return match submitted {
                Ok(pending) => Ok(pending),
                Err(e) => {
                    replica.routed.fetch_sub(1, Ordering::Relaxed);
                    Err(e)
                }
            };
        };
        let (pending, fulfiller) = pending_pair(trace);
        let ctx = Arc::new(RaceCtx {
            shard: Arc::clone(shard),
            input,
            options,
            trace,
            state: Mutex::new(RaceState {
                fulfiller: Some(fulfiller),
                retries_left: policy.max_retries,
                attempts: Vec::new(),
                next_id: 0,
            }),
        });
        RaceCtx::launch_until_inflight(&ctx, None, blocking)?;
        if let (Some(_), Some(timer)) = (policy.hedge_quantile, &self.hedge) {
            let delay = shard.hedge_delay(&policy);
            let hedge_ctx = Arc::clone(&ctx);
            timer.schedule(
                Instant::now() + delay,
                Box::new(move || RaceCtx::fire_hedge(&hedge_ctx)),
            );
        }
        Ok(pending)
    }

    /// Routes a request to a replica of `model` (picked by the set's
    /// [`PlacementPolicy`]), **blocking** while that replica's in-flight
    /// queue is at capacity. Sibling replicas and other models are
    /// unaffected — their submitters neither block nor queue behind this
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::ShuttingDown`] if the replica's pipeline is gone.
    pub fn submit(&self, model: ModelId, input: Tensor) -> ServeResult<Pending> {
        self.submit_with(model, input, SubmitOptions::default())
    }

    /// [`Router::submit`] with per-request [`SubmitOptions`] (δ override
    /// and/or cascade-depth cap for this request only).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::BadOptions`] for an out-of-range δ override,
    /// [`ServeError::ShuttingDown`] if the replica's pipeline is gone.
    pub fn submit_with(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
    ) -> ServeResult<Pending> {
        self.submit_routed(model, input, options, None, true)
    }

    /// [`Router::submit_with`] continuing a caller-supplied telemetry
    /// trace id — the entry point the TCP edge uses so one trace covers
    /// the wire hop, routing, and the serving replica. The id is recorded
    /// only if the placed replica's [`crate::ServerConfig::telemetry`] has
    /// spans on and the id falls inside its sample.
    ///
    /// # Errors
    ///
    /// Same contract as [`Router::submit_with`].
    pub fn submit_with_trace(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> ServeResult<Pending> {
        self.submit_routed(model, input, options, Some(trace), true)
    }

    /// Routes a request to a replica of `model` (picked by the set's
    /// [`PlacementPolicy`]) without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id,
    /// [`ServeError::Full`] when the placed replica's queue is at capacity
    /// (the request is not admitted; sibling replicas and other models
    /// keep accepting — with a [`RetryPolicy`], siblings are in fact tried
    /// against the retry budget before `Full` is returned),
    /// [`ServeError::ShuttingDown`] if the replica's pipeline is gone.
    pub fn try_submit(&self, model: ModelId, input: Tensor) -> ServeResult<Pending> {
        self.try_submit_with(model, input, SubmitOptions::default())
    }

    /// [`Router::try_submit`] with per-request [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// As [`Router::try_submit`], plus [`ServeError::BadOptions`] for an
    /// out-of-range δ override, [`ServeError::BadInput`] for a
    /// wrong-shaped input, [`ServeError::Shed`] /
    /// [`ServeError::QuotaExceeded`] when the placed replica's overload
    /// control refuses the class or tenant.
    pub fn try_submit_with(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
    ) -> ServeResult<Pending> {
        self.submit_routed(model, input, options, None, false)
    }

    /// [`Router::try_submit_with`] continuing a caller-supplied telemetry
    /// trace id (see [`Router::submit_with_trace`]) — the stop-aware
    /// admission path the TCP edge retries on, so a wedged replica can
    /// never park an edge thread in a blocking acquire.
    ///
    /// # Errors
    ///
    /// Same contract as [`Router::try_submit_with`].
    pub fn try_submit_with_trace(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> ServeResult<Pending> {
        self.submit_routed(model, input, options, Some(trace), false)
    }

    /// [`Router::try_submit_with_trace`] that takes the input **by value**
    /// and hands it back on refusal (see [`Server::try_submit_reclaim`]):
    /// the tensor rides along with the typed error instead of forcing the
    /// retrying TCP edge to clone it per admission attempt. Routing keeps
    /// the count-then-roll-back discipline, so the `routed ≥ submitted`
    /// snapshot invariant holds on this path too.
    ///
    /// This path is deliberately **single-attempt** even under a
    /// [`RetryPolicy`]: the TCP edge already has its own park-and-retry
    /// admission loop, and reclaim semantics (the tensor must come back on
    /// refusal) are incompatible with a race that clones it per attempt.
    ///
    /// # Errors
    ///
    /// The same refusals as [`Router::try_submit_with_trace`], paired with
    /// `Some(input)` whenever the tensor survives the bounce
    /// ([`ServeError::UnknownModel`] trivially does; only
    /// [`ServeError::ShuttingDown`] consumes it).
    pub fn try_submit_reclaim(
        &self,
        model: ModelId,
        input: Tensor,
        options: SubmitOptions,
        trace: Option<TraceId>,
    ) -> Result<Pending, (ServeError, Option<Tensor>)> {
        let shard = match self.shard(model) {
            Ok(shard) => shard,
            Err(e) => return Err((e, Some(input))),
        };
        shard.auto_check();
        let replica = &shard.replicas[shard.place(None)];
        let Some(server) = replica.server() else {
            return Err((ServeError::ShuttingDown, Some(input)));
        };
        // same count-then-roll-back discipline as submit_with
        replica.routed.fetch_add(1, Ordering::Relaxed);
        match server.try_submit_reclaim(input, options, trace) {
            Ok(pending) => Ok(pending),
            Err(bounce) => {
                replica.routed.fetch_sub(1, Ordering::Relaxed);
                Err(bounce)
            }
        }
    }

    /// Hot-swaps the network `model`'s replicas evaluate, **without
    /// draining the router**: one replica at a time, a fresh pipeline on
    /// `net` is built and published, then the retired pipeline is drained
    /// to completion (every request it admitted still resolves — with its
    /// *old* network, which is the swap's consistency contract: every
    /// response is bit-identical to whichever network's
    /// `classify_with_override` was current when the request was placed).
    /// Requests keep flowing to the other replicas, and to the swapped
    /// replica's new pipeline, throughout. The retired pipeline's final
    /// metrics are folded into all later snapshots, so no counters are
    /// lost.
    ///
    /// Gate-vacancy listeners ([`Router::on_gate_vacancy`]) are
    /// re-registered on each swapped-in pipeline before it is published.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id, any
    /// [`Server::start`] failure for the replacement pipelines (in which
    /// case **no** replica was swapped — all pipelines are built before
    /// the first publish), [`ServeError::ShuttingDown`] once shutdown has
    /// begun.
    pub fn swap_model(&self, model: ModelId, net: Arc<CdlNetwork>) -> ServeResult<()> {
        let shard = self.shard(model)?;
        // build every replacement first so a mid-set start failure can
        // never leave the set half-swapped
        let mut fresh: Vec<Arc<Server>> = Vec::with_capacity(shard.replicas.len());
        {
            let listeners = self.vacancy.lock().unwrap();
            for replica in &shard.replicas {
                let server = Server::start(Arc::clone(&net), replica.config.clone())?;
                for listener in listeners.iter() {
                    server.on_gate_vacancy(Arc::clone(listener));
                }
                fresh.push(Arc::new(server));
            }
        }
        for (replica, next) in shard.replicas.iter().zip(fresh) {
            let old = {
                let mut slot = replica.server.write().unwrap();
                if slot.is_none() {
                    return Err(ServeError::ShuttingDown);
                }
                slot.replace(next)
            };
            let old = wait_unshared(old.expect("checked above"));
            let metrics = old.shutdown();
            replica.retired.lock().unwrap().push(metrics);
            // the retired pipeline's window baseline is meaningless
            // against the fresh pipeline's zeroed counters
            let mut window = replica.window.lock().unwrap();
            *window = HealthWindow::new();
        }
        Ok(())
    }

    /// Registers a callback fired whenever **any** replica's admission
    /// gate frees capacity (a request settles or is dropped). The TCP
    /// edge registers one per poller so parked admissions resume
    /// event-driven instead of polling. Listeners are retained and
    /// re-registered on pipelines swapped in by [`Router::swap_model`].
    pub fn on_gate_vacancy(&self, listener: Arc<dyn Fn() + Send + Sync>) {
        self.vacancy.lock().unwrap().push(Arc::clone(&listener));
        for shard in &self.shards {
            for replica in &shard.replicas {
                if let Some(server) = replica.server() {
                    server.on_gate_vacancy(Arc::clone(&listener));
                }
            }
        }
    }

    /// A point-in-time snapshot of one model's replica set: per-replica
    /// [`crate::ServerMetrics`] plus the placement histogram.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered id.
    pub fn shard_metrics(&self, model: ModelId) -> ServeResult<ShardMetrics> {
        Ok(snapshot_shard(self.shard(model)?))
    }

    /// A point-in-time snapshot across all models and replicas: per-model
    /// breakdowns (routing + placement histograms, exits, energy) plus
    /// aggregate accessors.
    pub fn metrics(&self) -> RouterMetrics {
        RouterMetrics {
            shards: self.shards.iter().map(|s| snapshot_shard(s)).collect(),
        }
    }

    /// A full exportable snapshot across all models and replicas: every
    /// replica's counters, latency histogram, and health state labeled
    /// with `model`/`replica`, per-shard retry/hedge counters, plus all
    /// span events drained from every replica's telemetry domain. Render
    /// it with [`TelemetrySnapshot::render_prometheus`] or
    /// [`TelemetrySnapshot::render_chrome_trace`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snapshot = TelemetrySnapshot::new();
        for shard in &self.shards {
            let shard_labels = [("model", shard.name.as_str())];
            snapshot.push_counter(
                "cdl_shard_retries_total",
                &shard_labels,
                shard.retries.load(Ordering::Relaxed),
            );
            snapshot.push_counter(
                "cdl_shard_hedges_total",
                &shard_labels,
                shard.hedges.load(Ordering::Relaxed),
            );
            for (i, replica) in shard.replicas.iter().enumerate() {
                let index = i.to_string();
                let labels = [("model", shard.name.as_str()), ("replica", index.as_str())];
                snapshot_replica(replica).fill_telemetry(&mut snapshot, &labels);
                snapshot.push_counter(
                    "cdl_replica_health_state",
                    &labels,
                    u64::from(replica.health_state().code()),
                );
                snapshot.push_counter(
                    "cdl_replica_health_transitions_total",
                    &labels,
                    replica.transitions.load(Ordering::Relaxed),
                );
            }
        }
        snapshot.spans = self.drain_spans();
        snapshot
    }

    /// Drains the lifecycle span events of **every** replica of every
    /// model, merged and sorted by timestamp. Each event's `at_ns` is
    /// measured from its own replica's epoch; replicas start together in
    /// [`Router::start`], so the merged ordering is only approximate
    /// *across* traces, while intervals *within* one trace are exact (a
    /// request's whole lifecycle is recorded by the one replica that
    /// served it).
    pub fn drain_spans(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for replica in &shard.replicas {
                if let Some(server) = replica.server() {
                    out.extend(server.telemetry().drain());
                }
            }
        }
        out.sort_by_key(|e| e.at_ns);
        out
    }

    /// Graceful drain-then-stop across **all** replicas of all models:
    /// every replica stops admissions, flushes its queued and partially
    /// formed batches, and resolves every outstanding [`Pending`] before
    /// its threads join. Returns the final metrics snapshot, including the
    /// folded-in metrics of any pipelines retired by
    /// [`Router::swap_model`].
    pub fn shutdown(mut self) -> RouterMetrics {
        // stop the hedge timer first: unfired hedges drop (their attempt
        // contexts release), and no new attempt can launch from a timer
        self.hedge.take();
        let shards = std::mem::take(&mut self.shards);
        let mut out = Vec::new();
        for shard in shards {
            let mut replicas = Vec::new();
            for replica in &shard.replicas {
                let server = replica
                    .server
                    .write()
                    .unwrap()
                    .take()
                    .expect("router shutdown runs once");
                let mut metrics = wait_unshared(server).shutdown();
                for old in replica.retired.lock().unwrap().drain(..) {
                    metrics.absorb(&old);
                }
                replicas.push(ReplicaMetrics {
                    routed: replica.routed.load(Ordering::Relaxed),
                    health: replica.health_state(),
                    transitions: replica.transitions.load(Ordering::Relaxed),
                    metrics,
                });
            }
            out.push(ShardMetrics {
                model: shard.name.clone(),
                placement: shard.placement,
                retries: shard.retries.load(Ordering::Relaxed),
                hedges: shard.hedges.load(Ordering::Relaxed),
                replicas,
            });
        }
        RouterMetrics { shards: out }
    }
}

/// Spins (briefly sleeping) until `server` is the only handle left, then
/// returns it by value so it can be shut down. Submission paths hold their
/// clones only across one admission call, so the wait is bounded by the
/// longest in-flight admission (a *blocking* `submit` against a full gate
/// in the extreme).
fn wait_unshared(mut server: Arc<Server>) -> Server {
    loop {
        match Arc::try_unwrap(server) {
            Ok(inner) => return inner,
            Err(shared) => {
                server = shared;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

/// One replica's live [`ServerMetrics`] with retired-pipeline metrics
/// folded in.
fn snapshot_replica(replica: &Replica) -> ServerMetrics {
    let mut metrics = replica
        .server()
        .expect("replica pipeline live until shutdown")
        .metrics();
    for old in replica.retired.lock().unwrap().iter() {
        metrics.absorb(old);
    }
    metrics
}

/// Builds one replica set's live [`ShardMetrics`] snapshot.
fn snapshot_shard(shard: &Shard) -> ShardMetrics {
    ShardMetrics {
        model: shard.name.clone(),
        placement: shard.placement,
        retries: shard.retries.load(Ordering::Relaxed),
        hedges: shard.hedges.load(Ordering::Relaxed),
        replicas: shard
            .replicas
            .iter()
            .map(|replica| ReplicaMetrics {
                routed: replica.routed.load(Ordering::Relaxed),
                health: replica.health_state(),
                transitions: replica.transitions.load(Ordering::Relaxed),
                metrics: snapshot_replica(replica),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchPolicy;
    use cdl_core::arch::{self, CdlArchitecture};
    use cdl_core::confidence::{ConfidencePolicy, ExitOverride};
    use cdl_core::head::LinearClassifier;
    use cdl_nn::network::Network;
    use std::time::Duration;

    fn build_untrained(arch: CdlArchitecture, seed: u64) -> Arc<CdlNetwork> {
        let base = Network::from_spec(&arch.spec, seed).unwrap();
        let feats = arch.tap_features().unwrap();
        let stages = arch
            .taps
            .iter()
            .zip(&feats)
            .map(|(t, &f)| {
                (
                    t.spec_layer,
                    t.name.clone(),
                    LinearClassifier::new(f, 10, 1).unwrap(),
                )
            })
            .collect();
        Arc::new(CdlNetwork::assemble(base, stages, ConfidencePolicy::max_prob(0.6)).unwrap())
    }

    fn two_model_specs(policy: BatchPolicy, queue_capacity: usize) -> Vec<ShardSpec> {
        let config = ServerConfig {
            policy,
            queue_capacity,
            workers: 1,
            ..ServerConfig::default()
        };
        vec![
            ShardSpec::new(
                "MNIST_2C",
                build_untrained(arch::mnist_2c(), 5),
                config.clone(),
            ),
            ShardSpec::new("MNIST_3C", build_untrained(arch::mnist_3c(), 9), config),
        ]
    }

    fn images(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| Tensor::full(&[1, 28, 28], 0.1 + 0.07 * (i as f32 % 11.0)))
            .collect()
    }

    #[test]
    fn routes_to_the_right_model() {
        let router = Router::start(two_model_specs(
            BatchPolicy::by_deadline(Duration::from_millis(2)),
            64,
        ))
        .unwrap();
        assert_eq!(router.model_count(), 2);
        let m2c = router.model_id("MNIST_2C").unwrap();
        let m3c = router.model_id("MNIST_3C").unwrap();
        assert_eq!(router.model_name(m2c).unwrap(), "MNIST_2C");
        assert_eq!(router.replica_count(m2c).unwrap(), 1);
        assert_eq!(
            router
                .models()
                .map(|(_, n)| n.to_string())
                .collect::<Vec<_>>(),
            vec!["MNIST_2C", "MNIST_3C"]
        );
        // 2C has 1 conditional stage, 3C has 2 — structurally different
        assert_eq!(router.network(m2c).unwrap().stage_count(), 1);
        assert_eq!(router.network(m3c).unwrap().stage_count(), 2);

        let inputs = images(12);
        let pendings: Vec<(ModelId, Pending)> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let model = if i % 2 == 0 { m2c } else { m3c };
                (model, router.submit(model, x.clone()).unwrap())
            })
            .collect();
        for ((model, pending), x) in pendings.into_iter().zip(&inputs) {
            let expected = router.network(model).unwrap().classify(x).unwrap();
            assert_eq!(pending.wait().unwrap(), expected);
        }
        let metrics = router.shutdown();
        assert_eq!(metrics.routing_histogram(), vec![6, 6]);
        assert_eq!(metrics.completed(), 12);
        assert_eq!(metrics.failed(), 0);
        for shard in &metrics.shards {
            assert_eq!(shard.routed(), shard.submitted());
            for replica in &shard.replicas {
                assert_eq!(replica.routed, replica.metrics.submitted);
            }
        }
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let router = Router::start(two_model_specs(BatchPolicy::default(), 8)).unwrap();
        let ghost = ModelId::from_index(7);
        let x = images(1).remove(0);
        assert_eq!(
            router.submit(ghost, x.clone()).unwrap_err(),
            ServeError::UnknownModel(ghost)
        );
        assert_eq!(
            router.try_submit(ghost, x).unwrap_err(),
            ServeError::UnknownModel(ghost)
        );
        assert!(matches!(
            router.shard_metrics(ghost),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(router.model_name(ghost).is_err());
        assert!(router.replica_count(ghost).is_err());
        // nothing was admitted anywhere
        let metrics = router.shutdown();
        assert_eq!(metrics.submitted(), 0);
        assert!(ServeError::UnknownModel(ghost)
            .to_string()
            .contains("model#7"));
    }

    #[test]
    fn per_request_overrides_route_with_the_request() {
        let router = Router::start(two_model_specs(
            BatchPolicy::by_deadline(Duration::from_millis(2)),
            64,
        ))
        .unwrap();
        let m3c = router.model_id("MNIST_3C").unwrap();
        let x = images(1).remove(0);
        // δ ≈ 1 never exits by confidence; capping at stage 0 must force it
        let opts = SubmitOptions {
            delta: Some(0.999),
            max_stage: Some(0),
            ..SubmitOptions::default()
        };
        let out = router
            .submit_with(m3c, x.clone(), opts)
            .unwrap()
            .wait()
            .unwrap();
        let expected = router
            .network(m3c)
            .unwrap()
            .classify_with_override(
                &x,
                ExitOverride {
                    delta: Some(0.999),
                    max_stage: Some(0),
                },
            )
            .unwrap();
        assert_eq!(out, expected);
        assert_eq!(out.exit_stage, 0);
        // invalid overrides bounce at admission with a typed error
        assert!(matches!(
            router.submit_with(m3c, x, SubmitOptions::with_delta(7.0)),
            Err(ServeError::BadOptions(_))
        ));
        router.shutdown();
    }

    #[test]
    fn shard_backpressure_is_independent() {
        // shard queues of 2; a size-bound batch that never fills keeps
        // everything admitted to 2C stuck in its batcher
        let router = Router::start(two_model_specs(BatchPolicy::by_size(1 << 20), 2)).unwrap();
        let m2c = router.model_id("MNIST_2C").unwrap();
        let m3c = router.model_id("MNIST_3C").unwrap();
        let inputs = images(2);
        let stuck: Vec<Pending> = inputs
            .iter()
            .map(|x| router.try_submit(m2c, x.clone()).unwrap())
            .collect();
        // 2C is saturated…
        assert_eq!(
            router.try_submit(m2c, inputs[0].clone()).unwrap_err(),
            ServeError::Full
        );
        // …but 3C still accepts (and blocks nothing)
        let other = router.try_submit(m3c, inputs[0].clone()).unwrap();
        let live = router.metrics();
        assert_eq!(live.shards[m2c.index()].rejected(), 1);
        assert_eq!(live.shards[m3c.index()].rejected(), 0);
        assert_eq!(live.rejected(), 1);
        assert_eq!(live.queue_depth(), 3);
        // the bounced request was rolled back out of the routed count, so
        // even this *unsettled* snapshot cross-checks per replica
        for shard in &live.shards {
            for replica in &shard.replicas {
                assert_eq!(replica.routed, replica.metrics.submitted);
            }
        }
        // drain-then-stop resolves handles across ALL shards
        let metrics = router.shutdown();
        assert_eq!(metrics.completed(), 3);
        assert_eq!(metrics.queue_depth(), 0);
        for pending in stuck {
            pending.wait().unwrap();
        }
        other.wait().unwrap();
    }

    #[test]
    fn round_robin_places_evenly() {
        let net = build_untrained(arch::mnist_2c(), 5);
        let config = ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 64,
            workers: 1,
            ..ServerConfig::default()
        };
        let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
            .replicated(ReplicaSpec::new(3, PlacementPolicy::RoundRobin))])
        .unwrap();
        let model = router.model_id("m").unwrap();
        assert_eq!(router.replica_count(model).unwrap(), 3);
        let inputs = images(9);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| router.submit(model, x.clone()).unwrap())
            .collect();
        // bit-identical wherever each request was placed
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = router.shutdown();
        assert_eq!(metrics.shards[0].placement_histogram(), vec![3, 3, 3]);
        assert_eq!(metrics.routing_histogram(), vec![9]);
        assert_eq!(metrics.completed(), 9);
        for replica in &metrics.shards[0].replicas {
            assert_eq!(replica.routed, replica.metrics.submitted);
        }
    }

    #[test]
    fn load_aware_policies_balance_a_stalled_set() {
        // never-dispatching batches freeze queue depths, so placement over
        // depth is fully deterministic: both LeastLoaded and (with 2
        // replicas, where both probes always see the whole set) P2C must
        // alternate and split the stream exactly evenly
        for placement in [
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::PowerOfTwoChoices,
        ] {
            let net = build_untrained(arch::mnist_2c(), 5);
            let config = ServerConfig {
                policy: BatchPolicy::by_size(1 << 20),
                queue_capacity: 64,
                workers: 1,
                ..ServerConfig::default()
            };
            let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
                .replicated(ReplicaSpec::new(2, placement))])
            .unwrap();
            let model = router.model_id("m").unwrap();
            let inputs = images(6);
            let _pendings: Vec<Pending> = inputs
                .iter()
                .map(|x| router.try_submit(model, x.clone()).unwrap())
                .collect();
            let live = router.metrics();
            assert_eq!(
                live.shards[0].placement_histogram(),
                vec![3, 3],
                "{placement} must balance a stalled replica set"
            );
            let metrics = router.shutdown();
            assert_eq!(metrics.completed(), 6);
        }
    }

    #[test]
    fn concurrent_snapshots_never_observe_submitted_over_routed() {
        // regression for the routed-after-admission race: hammer submits
        // from several threads while a sampler takes live snapshots — no
        // snapshot may ever catch a replica with submitted > routed
        use std::sync::atomic::AtomicBool;
        let net = build_untrained(arch::mnist_2c(), 5);
        let config = ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 4096,
            workers: 1,
            ..ServerConfig::default()
        };
        let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
            .replicated(ReplicaSpec::new(2, PlacementPolicy::RoundRobin))])
        .unwrap();
        let model = router.model_id("m").unwrap();
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let router = &router;
            let done = &done;
            let submitters: Vec<_> = (0..3)
                .map(|t| {
                    scope.spawn(move || {
                        let x = Tensor::full(&[1, 28, 28], 0.1 + 0.01 * t as f32);
                        let pendings: Vec<Pending> = (0..80)
                            .map(|_| router.submit(model, x.clone()).unwrap())
                            .collect();
                        for pending in pendings {
                            pending.wait().unwrap();
                        }
                    })
                })
                .collect();
            let sampler = scope.spawn(move || {
                let mut samples = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snapshot = router.metrics();
                    for replica in &snapshot.shards[0].replicas {
                        assert!(
                            replica.metrics.submitted <= replica.routed,
                            "snapshot observed submitted {} > routed {}",
                            replica.metrics.submitted,
                            replica.routed
                        );
                    }
                    samples += 1;
                }
                samples
            });
            for handle in submitters {
                handle.join().unwrap();
            }
            done.store(true, Ordering::Relaxed);
            assert!(sampler.join().unwrap() > 0, "sampler never ran");
        });
        let metrics = router.shutdown();
        assert_eq!(metrics.completed(), 240);
        for replica in &metrics.shards[0].replicas {
            assert_eq!(replica.routed, replica.metrics.submitted);
        }
    }

    #[test]
    fn server_round_trips_gemm_kernel() {
        use cdl_tensor::gemm::GemmKernel;
        let net = build_untrained(arch::mnist_2c(), 5);
        for kernel in GemmKernel::ALL {
            let config = ServerConfig {
                policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
                queue_capacity: 8,
                workers: 1,
                gemm_kernel: kernel,
                ..ServerConfig::default()
            };
            let server = Server::start(Arc::clone(&net), config).unwrap();
            assert_eq!(server.gemm_kernel(), kernel);
            drop(server);
        }
    }

    #[test]
    fn mixed_kernel_shards_stay_isolated_and_identical() {
        use cdl_tensor::gemm::GemmKernel;
        // the SAME network behind two shards that differ only in GEMM
        // kernel: every routed answer must be identical (all kernels are
        // bit-exact) and each shard must run the kernel it was configured
        // with — the choice never leaks across shards
        let net = build_untrained(arch::mnist_3c(), 9);
        let config = |kernel| ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 64,
            workers: 1,
            gemm_kernel: kernel,
            ..ServerConfig::default()
        };
        let router = Router::start(vec![
            ShardSpec::new("tiled", Arc::clone(&net), config(GemmKernel::Tiled)),
            ShardSpec::new("reference", Arc::clone(&net), config(GemmKernel::Reference)),
        ])
        .unwrap();
        let tiled = router.model_id("tiled").unwrap();
        let reference = router.model_id("reference").unwrap();
        let inputs = images(10);
        let pairs: Vec<(Pending, Pending)> = inputs
            .iter()
            .map(|x| {
                (
                    router.submit(tiled, x.clone()).unwrap(),
                    router.submit(reference, x.clone()).unwrap(),
                )
            })
            .collect();
        for ((t, r), x) in pairs.into_iter().zip(&inputs) {
            let expected = net.classify(x).unwrap();
            let t = t.wait().unwrap();
            let r = r.wait().unwrap();
            assert_eq!(t, expected, "tiled shard");
            assert_eq!(r, expected, "reference shard");
            assert_eq!(t, r);
        }
        let metrics = router.shutdown();
        assert_eq!(metrics.routing_histogram(), vec![10, 10]);
        assert_eq!(metrics.completed(), 20);
        assert_eq!(metrics.failed(), 0);
    }

    #[test]
    fn adopted_traces_flow_through_routing() {
        let net = build_untrained(arch::mnist_2c(), 5);
        let config = ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 64,
            workers: 1,
            telemetry: cdl_telemetry::TelemetryConfig::enabled(),
            ..ServerConfig::default()
        };
        let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net), config)
            .replicated(ReplicaSpec::new(2, PlacementPolicy::RoundRobin))])
        .unwrap();
        let model = router.model_id("m").unwrap();
        let trace = TraceId::next();
        let x = images(1).remove(0);
        let pending = router
            .submit_with_trace(model, x, SubmitOptions::default(), trace)
            .unwrap();
        assert_eq!(pending.trace(), Some(trace), "replica adopted the id");
        pending.wait().unwrap();
        // Exit is recorded before the result settles, so after wait() the
        // admission-to-exit lifecycle is guaranteed drained (only Reply
        // may still race; tests/telemetry.rs covers it post-shutdown)
        let events = router.drain_spans();
        let mine: Vec<_> = events.iter().filter(|e| e.trace == trace).collect();
        assert!(
            mine.iter()
                .any(|e| e.kind == cdl_telemetry::EventKind::Admit),
            "missing Admit: {mine:?}"
        );
        assert!(
            mine.iter()
                .any(|e| matches!(e.kind, cdl_telemetry::EventKind::Exit(_))),
            "missing Exit: {mine:?}"
        );
        router.shutdown();
    }

    #[test]
    fn telemetry_snapshot_labels_every_replica() {
        let router = Router::start(two_model_specs(
            BatchPolicy::by_deadline(Duration::from_millis(1)),
            64,
        ))
        .unwrap();
        let m2c = router.model_id("MNIST_2C").unwrap();
        let inputs = images(4);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| router.submit(m2c, x.clone()).unwrap())
            .collect();
        for pending in pendings {
            pending.wait().unwrap();
        }
        let snapshot = router.telemetry_snapshot();
        let text = snapshot.render_prometheus();
        assert!(text.contains(r#"model="MNIST_2C""#), "{text}");
        assert!(text.contains(r#"model="MNIST_3C""#), "{text}");
        assert!(text.contains(r#"replica="0""#), "{text}");
        assert!(text.contains("cdl_requests_completed_total"), "{text}");
        assert!(text.contains("cdl_request_latency_ns_bucket"), "{text}");
        assert!(text.contains("cdl_replica_health_state"), "{text}");
        assert!(text.contains("cdl_shard_retries_total"), "{text}");
        router.shutdown();
    }

    #[test]
    fn start_validates_shard_set() {
        assert!(matches!(
            Router::start(vec![]),
            Err(ServeError::BadConfig(_))
        ));
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[1].name = specs[0].name.clone();
        assert!(matches!(
            Router::start(specs),
            Err(ServeError::BadConfig(_))
        ));
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[0].config.workers = 0;
        assert!(Router::start(specs).is_err());
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[0].replicas = ReplicaSpec::new(0, PlacementPolicy::RoundRobin);
        assert!(matches!(
            Router::start(specs),
            Err(ServeError::BadConfig(_))
        ));
        // fault-tolerance configs are validated up front too
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[0].health = Some(HealthPolicy {
            min_samples: 0,
            ..HealthPolicy::default()
        });
        assert!(matches!(
            Router::start(specs),
            Err(ServeError::BadConfig(_))
        ));
        let mut specs = two_model_specs(BatchPolicy::default(), 8);
        specs[0].retry = Some(RetryPolicy::retries(0));
        assert!(matches!(
            Router::start(specs),
            Err(ServeError::BadConfig(_))
        ));
        let specs = two_model_specs(BatchPolicy::default(), 8);
        let specs = vec![specs.into_iter().next().unwrap().fault_on(
            3,
            crate::fault::FaultPlan::builder()
                .at(0, crate::fault::FaultKind::ErrorBurst(1))
                .build(),
        )];
        assert!(matches!(
            Router::start(specs),
            Err(ServeError::BadConfig(_))
        ));
    }

    #[test]
    fn swap_model_publishes_the_new_network() {
        let net_a = build_untrained(arch::mnist_2c(), 5);
        let net_b = build_untrained(arch::mnist_2c(), 11);
        let config = ServerConfig {
            policy: BatchPolicy::by_deadline(Duration::from_millis(1)),
            queue_capacity: 64,
            workers: 1,
            ..ServerConfig::default()
        };
        let router = Router::start(vec![ShardSpec::new("m", Arc::clone(&net_a), config)
            .replicated(ReplicaSpec::new(2, PlacementPolicy::RoundRobin))])
        .unwrap();
        let model = router.model_id("m").unwrap();
        let x = images(1).remove(0);
        let before = router.submit(model, x.clone()).unwrap().wait().unwrap();
        assert_eq!(before, net_a.classify(&x).unwrap());
        router.swap_model(model, Arc::clone(&net_b)).unwrap();
        assert!(Arc::ptr_eq(&router.network(model).unwrap(), &net_b));
        let after = router.submit(model, x.clone()).unwrap().wait().unwrap();
        assert_eq!(after, net_b.classify(&x).unwrap());
        // retired-pipeline counters are folded into later snapshots
        let metrics = router.shutdown();
        assert_eq!(metrics.completed(), 2);
        for replica in &metrics.shards[0].replicas {
            assert_eq!(replica.routed, replica.metrics.submitted);
        }
    }
}
