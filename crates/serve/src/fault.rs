//! Deterministic, replica-scoped fault injection for chaos testing.
//!
//! A [`FaultPlan`] scripts failures against one serving pipeline ahead of
//! time, addressed by *sequence numbers* instead of wall-clock time so a
//! chaos test replays identically on any machine: admission faults fire on
//! the N-th admission attempt, worker faults on the N-th dispatched batch.
//! Plans are built explicitly ([`FaultPlan::builder`]) or drawn from a
//! seed ([`FaultPlan::seeded`] — xoshiro256\*\*, the same determinism
//! discipline `cdl-load` uses for arrival schedules).
//!
//! The plan is wired into a server through
//! [`crate::ServerConfig::fault`] (or per replica through
//! [`crate::ShardSpec::fault_on`]) and consulted at two hook points:
//!
//! * **admission** — after option/shape validation, before the gate: an
//!   active [`FaultKind::ErrorBurst`] refuses the request with a typed
//!   [`crate::ServeError::Fault`], the shape of a replica spewing errors.
//! * **worker, before each batch** — [`FaultKind::Stall`] and
//!   [`FaultKind::SlowFactor`] sleep the worker (inflating the latency
//!   tail exactly like a wedged or degraded evaluator would), and
//!   [`FaultKind::PanicOnce`] panics the worker thread (its in-flight
//!   batch settles `Disconnected` through the fulfiller drop path).
//!
//! The default plan is **unarmed**: every hook is then a single branch on
//! an `Option` — the same disabled-path cost model as telemetry — so the
//! hooks stay compiled into production builds.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ServeError;

/// One scripted fault, anchored at a sequence number when installed with
/// [`FaultPlanBuilder::at`] (admission sequence for [`FaultKind::ErrorBurst`],
/// batch sequence for the worker-side kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker sleeps this long, once, before evaluating the anchor
    /// batch — a single long stall that backs up everything queued behind
    /// it.
    Stall(Duration),
    /// The next `n` admissions (starting at the anchor) are refused with
    /// [`ServeError::Fault`] — a replica spewing errors.
    ErrorBurst(u64),
    /// Each of the `batches` batches starting at the anchor is delayed by
    /// `per_batch` before evaluation — a degraded-but-alive replica.
    SlowFactor {
        /// Extra delay injected before each affected batch.
        per_batch: Duration,
        /// Number of consecutive batches affected.
        batches: u64,
    },
    /// The worker thread processing the anchor batch panics, once. Its
    /// batch settles [`ServeError::Disconnected`]; the rest of the worker
    /// pool keeps serving.
    PanicOnce,
}

/// Mutable trigger state behind an armed plan: the two sequence counters
/// plus the scripted windows, shared by every worker of the server the
/// plan is installed on.
#[derive(Debug)]
struct FaultState {
    /// Admission-hook invocations so far.
    admissions: u64,
    /// Worker-hook invocations (dispatched batches) so far.
    batches: u64,
    /// `[start, end)` admission-sequence windows that refuse with `Fault`.
    error_windows: Vec<(u64, u64)>,
    /// One-shot `(batch seq, sleep)` stalls; consumed when fired.
    stalls: Vec<(u64, Duration)>,
    /// `(start, end, per-batch sleep)` batch-sequence slowdown windows.
    slow_windows: Vec<(u64, u64, Duration)>,
    /// One-shot batch sequences that panic the worker; consumed when fired.
    panics: Vec<u64>,
}

#[derive(Debug)]
struct FaultInner {
    state: Mutex<FaultState>,
}

/// What the worker hook asks of the worker before a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Disruption {
    /// Sleep this long before evaluating (stall + slowdown, combined).
    pub(crate) sleep: Option<Duration>,
    /// Panic the worker thread (after any sleep).
    pub(crate) panic: bool,
}

impl Disruption {
    pub(crate) const NONE: Disruption = Disruption {
        sleep: None,
        panic: false,
    };
}

/// A scripted, deterministic set of faults for one serving pipeline. See
/// the [module docs](self) for semantics and hook points.
///
/// Cloning shares the trigger state: every clone (e.g. the one each worker
/// thread sees through the server config) draws from the same sequence
/// counters, so a plan describes one pipeline's failure script, not a
/// per-thread one. The [`Default`] plan is unarmed and free.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<FaultInner>>,
}

impl FaultPlan {
    /// The unarmed plan: injects nothing, costs one branch per hook.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether any fault is scripted at all.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Start building an explicit plan (faults at chosen sequence
    /// numbers).
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// A seeded plan: each fault in `kinds` is anchored at a trigger
    /// sequence drawn uniformly from `[0, horizon)` by xoshiro256\*\*
    /// seeded with `seed`. The same `(seed, horizon, kinds)` always
    /// produces the same plan — the chaos-suite reproducibility contract.
    pub fn seeded(seed: u64, horizon: u64, kinds: &[FaultKind]) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = FaultPlan::builder();
        for &kind in kinds {
            let at = if horizon == 0 {
                0
            } else {
                rng.next_u64() % horizon
            };
            builder = builder.at(at, kind);
        }
        builder.build()
    }

    /// Admission hook: called once per submission after validation,
    /// before the gate. Returns the injected refusal, if this admission
    /// falls in an [`FaultKind::ErrorBurst`] window.
    pub(crate) fn on_admission(&self) -> Option<ServeError> {
        let inner = self.inner.as_ref()?; // unarmed: one branch, done
        let mut state = inner.state.lock().unwrap();
        let seq = state.admissions;
        state.admissions += 1;
        if state
            .error_windows
            .iter()
            .any(|&(start, end)| seq >= start && seq < end)
        {
            return Some(ServeError::Fault(format!(
                "scripted error burst refused admission #{seq}"
            )));
        }
        None
    }

    /// Worker hook: called once per dispatched batch, before evaluation.
    pub(crate) fn before_batch(&self) -> Disruption {
        let Some(inner) = self.inner.as_ref() else {
            return Disruption::NONE; // unarmed: one branch, done
        };
        let mut state = inner.state.lock().unwrap();
        let seq = state.batches;
        state.batches += 1;
        let mut sleep = Duration::ZERO;
        state.stalls.retain(|&(at, d)| {
            if at == seq {
                sleep += d;
                false
            } else {
                true
            }
        });
        for &(start, end, d) in &state.slow_windows {
            if seq >= start && seq < end {
                sleep += d;
            }
        }
        let panic = if let Some(i) = state.panics.iter().position(|&at| at == seq) {
            state.panics.remove(i);
            true
        } else {
            false
        };
        Disruption {
            sleep: (sleep > Duration::ZERO).then_some(sleep),
            panic,
        }
    }
}

/// Builder for an explicit [`FaultPlan`].
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    faults: Vec<(u64, FaultKind)>,
}

impl FaultPlanBuilder {
    /// Script `kind` at sequence number `at` (admission sequence for
    /// [`FaultKind::ErrorBurst`], batch sequence otherwise; both count
    /// from 0).
    pub fn at(mut self, at: u64, kind: FaultKind) -> Self {
        self.faults.push((at, kind));
        self
    }

    /// Finish the plan. With no faults scripted this returns the unarmed
    /// plan.
    pub fn build(self) -> FaultPlan {
        if self.faults.is_empty() {
            return FaultPlan::none();
        }
        let mut state = FaultState {
            admissions: 0,
            batches: 0,
            error_windows: Vec::new(),
            stalls: Vec::new(),
            slow_windows: Vec::new(),
            panics: Vec::new(),
        };
        for (at, kind) in self.faults {
            match kind {
                FaultKind::Stall(d) => state.stalls.push((at, d)),
                FaultKind::ErrorBurst(n) => state.error_windows.push((at, at.saturating_add(n))),
                FaultKind::SlowFactor { per_batch, batches } => {
                    state
                        .slow_windows
                        .push((at, at.saturating_add(batches), per_batch))
                }
                FaultKind::PanicOnce => state.panics.push(at),
            }
        }
        FaultPlan {
            inner: Some(Arc::new(FaultInner {
                state: Mutex::new(state),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_armed());
        for _ in 0..100 {
            assert!(plan.on_admission().is_none());
            assert_eq!(plan.before_batch(), Disruption::NONE);
        }
        assert!(!FaultPlan::builder().build().is_armed());
        assert!(!FaultPlan::default().is_armed());
    }

    #[test]
    fn error_burst_refuses_exactly_its_window() {
        let plan = FaultPlan::builder().at(2, FaultKind::ErrorBurst(3)).build();
        assert!(plan.is_armed());
        let refused: Vec<bool> = (0..8).map(|_| plan.on_admission().is_some()).collect();
        assert_eq!(
            refused,
            [false, false, true, true, true, false, false, false]
        );
    }

    #[test]
    fn worker_faults_fire_on_their_batch_sequence() {
        let plan = FaultPlan::builder()
            .at(1, FaultKind::Stall(Duration::from_millis(50)))
            .at(
                3,
                FaultKind::SlowFactor {
                    per_batch: Duration::from_millis(5),
                    batches: 2,
                },
            )
            .at(6, FaultKind::PanicOnce)
            .build();
        let hits: Vec<Disruption> = (0..8).map(|_| plan.before_batch()).collect();
        assert_eq!(hits[0], Disruption::NONE);
        assert_eq!(hits[1].sleep, Some(Duration::from_millis(50)));
        assert!(!hits[1].panic);
        assert_eq!(hits[2], Disruption::NONE);
        assert_eq!(hits[3].sleep, Some(Duration::from_millis(5)));
        assert_eq!(hits[4].sleep, Some(Duration::from_millis(5)));
        assert_eq!(hits[5], Disruption::NONE);
        assert!(hits[6].panic);
        assert!(hits[6].sleep.is_none());
        assert_eq!(hits[7], Disruption::NONE);
    }

    #[test]
    fn clones_share_one_trigger_sequence() {
        let plan = FaultPlan::builder().at(0, FaultKind::ErrorBurst(2)).build();
        let clone = plan.clone();
        assert!(plan.on_admission().is_some()); // admission #0
        assert!(clone.on_admission().is_some()); // admission #1 — shared counter
        assert!(plan.on_admission().is_none()); // #2: window over
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let kinds = [
            FaultKind::ErrorBurst(2),
            FaultKind::Stall(Duration::from_millis(10)),
        ];
        let outcomes = |plan: &FaultPlan| -> (Vec<bool>, Vec<Disruption>) {
            (
                (0..32).map(|_| plan.on_admission().is_some()).collect(),
                (0..32).map(|_| plan.before_batch()).collect(),
            )
        };
        let a = outcomes(&FaultPlan::seeded(7, 16, &kinds));
        let b = outcomes(&FaultPlan::seeded(7, 16, &kinds));
        assert_eq!(a, b, "same seed must replay the same plan");
        assert!(a.0.iter().filter(|&&hit| hit).count() == 2);
        assert!(a.1.iter().any(|d| d.sleep.is_some()));
        let mut differs = false;
        for seed in 0..64 {
            if outcomes(&FaultPlan::seeded(seed, 16, &kinds)) != a {
                differs = true;
                break;
            }
        }
        assert!(differs, "some seed must draw different trigger points");
    }
}
