//! Error type for the serving layer.

use cdl_core::CdlError;
use std::fmt;

use crate::config::Priority;
use crate::router::ModelId;

/// Result alias used throughout `cdl-serve`.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Error produced by request submission or completion.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue is at capacity (`try_submit` only —
    /// `submit` blocks instead). The request was **not** admitted.
    Full,
    /// The server no longer accepts requests (shutdown has begun).
    ShuttingDown,
    /// The serving pipeline dropped the request without evaluating it
    /// (a worker died, or the server was torn down abnormally). Graceful
    /// [`crate::Server::shutdown`] drains the queue, so waiters only see
    /// this on abnormal termination.
    Disconnected,
    /// The evaluator failed on the batch containing this request.
    Eval(CdlError),
    /// Invalid server configuration (zero-sized queue, empty worker pool,
    /// zero-sized batches, …).
    BadConfig(String),
    /// Invalid per-request [`crate::SubmitOptions`] (e.g. a δ override out
    /// of range for the model's policy). The request was **not** admitted.
    BadOptions(String),
    /// The [`crate::ModelId`] on a routed request matches no shard of the
    /// [`crate::Router`]. The request was **not** admitted.
    UnknownModel(ModelId),
    /// The request's deadline passed before it reached the evaluator. The
    /// serving pipeline settled it at batch formation or dispatch time
    /// without spending any evaluator ops — the queue-level analogue of
    /// early exit.
    Expired,
    /// The admission gate shed the request because its priority class is
    /// not admitted at the current queue depth (lower classes are shed
    /// first as the gate fills). The request was **not** admitted.
    Shed(Priority),
    /// The tenant already has its full quota of requests in flight on this
    /// replica. The request was **not** admitted.
    QuotaExceeded(u32),
    /// The input tensor's shape does not match the model's expected input
    /// shape. Caught at admission so one wrong-shaped tensor can never
    /// poison co-batched neighbors. The request was **not** admitted.
    BadInput(String),
    /// An injected fault ([`crate::fault::FaultPlan`]) refused or broke the
    /// request. Only produced when a fault plan is armed — production
    /// configurations never see it. Treated as retryable by
    /// [`crate::RetryPolicy`], exactly like a real replica failure would
    /// be. The request was **not** admitted.
    Fault(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Full => write!(f, "submission queue full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "request dropped by the serving pipeline"),
            ServeError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ServeError::BadConfig(msg) => write!(f, "bad server configuration: {msg}"),
            ServeError::BadOptions(msg) => write!(f, "bad submit options: {msg}"),
            ServeError::UnknownModel(id) => write!(f, "no shard serves model {id}"),
            ServeError::Expired => write!(f, "deadline expired before evaluation"),
            ServeError::Shed(p) => write!(f, "shed at admission (priority class {p})"),
            ServeError::QuotaExceeded(t) => write!(f, "tenant {t} is at its in-flight quota"),
            ServeError::BadInput(msg) => write!(f, "bad input tensor: {msg}"),
            ServeError::Fault(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CdlError> for ServeError {
    fn from(e: CdlError) -> Self {
        ServeError::Eval(e)
    }
}
