//! The streaming inference server: bounded admission, dynamic batch
//! formation, and a pool of persistent batched evaluators.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use cdl_core::batch::BatchEvaluator;
use cdl_core::confidence::ExitOverride;
use cdl_core::network::CdlNetwork;
use cdl_telemetry::{EventKind, Telemetry, TelemetrySnapshot, TraceId};
use cdl_tensor::gemm::GemmKernel;
use cdl_tensor::Tensor;

use crate::config::{BatchPolicy, ServerConfig, SubmitOptions};
use crate::error::{ServeError, ServeResult};
use crate::metrics::{BatchCause, Recorder, ServerMetrics};
use crate::pending::{pending_pair, Fulfiller, Pending};

/// Counting semaphore bounding the number of in-flight requests — the
/// server's backpressure. A slot is held from admission until the request
/// reaches a terminal state (completed, cancelled-and-skipped, or failed).
#[derive(Debug)]
struct Gate {
    capacity: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(capacity: usize) -> Self {
        Gate {
            capacity,
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Non-blocking: `false` when the queue is at capacity.
    fn try_acquire(&self) -> bool {
        let mut n = self.in_flight.lock().unwrap();
        if *n >= self.capacity {
            return false;
        }
        *n += 1;
        true
    }

    /// Blocks until a slot frees up.
    fn acquire(&self) {
        let mut n = self.in_flight.lock().unwrap();
        while *n >= self.capacity {
            n = self.freed.wait(n).unwrap();
        }
        *n += 1;
    }

    fn release(&self) {
        let mut n = self.in_flight.lock().unwrap();
        *n = n.saturating_sub(1);
        self.freed.notify_one();
    }

    fn depth(&self) -> usize {
        *self.in_flight.lock().unwrap()
    }
}

/// RAII in-flight slot: released when the request leaves the pipeline, on
/// every path (delivered, cancelled, failed, or dropped by teardown).
#[derive(Debug)]
struct Ticket(Arc<Gate>);

impl Drop for Ticket {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// One queued classification request.
#[derive(Debug)]
struct Request {
    input: Tensor,
    /// Per-request δ/depth override (validated at admission).
    overrides: ExitOverride,
    fulfiller: Fulfiller,
    ticket: Ticket,
    submitted_at: Instant,
    /// Sampled telemetry trace, if lifecycle spans are being recorded for
    /// this request.
    trace: Option<TraceId>,
}

/// A streaming inference server over one [`CdlNetwork`].
///
/// See the [crate-level docs](crate) for the architecture. Results are
/// **bit-identical** to [`CdlNetwork::classify`] for every request,
/// regardless of how concurrent submissions are interleaved into batches —
/// the [`BatchEvaluator`] underneath guarantees per-image equivalence for
/// any batch composition.
///
/// `shutdown` (or `Drop`) is graceful: the submission queue is drained,
/// partially formed batches are flushed to the workers, and every
/// outstanding [`Pending`] resolves before the threads exit.
#[derive(Debug)]
pub struct Server {
    net: Arc<CdlNetwork>,
    gemm_kernel: GemmKernel,
    submit_tx: Option<Sender<Request>>,
    gate: Arc<Gate>,
    recorder: Arc<Recorder>,
    telemetry: Telemetry,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the batcher and worker threads and begins accepting requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid configuration.
    pub fn start(net: Arc<CdlNetwork>, config: ServerConfig) -> ServeResult<Server> {
        config.validate()?;
        let gate = Arc::new(Gate::new(config.queue_capacity));
        let recorder = Arc::new(Recorder::new(config.energy_model));
        let telemetry = Telemetry::new(config.telemetry);
        let (submit_tx, submit_rx) = channel::<Request>();
        let (work_tx, work_rx) = channel::<Vec<Request>>();
        let work_rx = Arc::new(Mutex::new(work_rx));

        let batcher = {
            let recorder = Arc::clone(&recorder);
            let telemetry = telemetry.clone();
            let policy = config.policy;
            std::thread::Builder::new()
                .name("cdl-serve-batcher".into())
                .spawn(move || run_batcher(submit_rx, work_tx, policy, &recorder, &telemetry))
                .expect("spawn batcher thread")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let net = Arc::clone(&net);
                let work_rx = Arc::clone(&work_rx);
                let recorder = Arc::clone(&recorder);
                let telemetry = telemetry.clone();
                let kernel = config.gemm_kernel;
                std::thread::Builder::new()
                    .name(format!("cdl-serve-worker-{i}"))
                    .spawn(move || run_worker(&net, kernel, &work_rx, &recorder, &telemetry))
                    .expect("spawn worker thread")
            })
            .collect();

        Ok(Server {
            net,
            gemm_kernel: config.gemm_kernel,
            submit_tx: Some(submit_tx),
            gate,
            recorder,
            telemetry,
            batcher: Some(batcher),
            workers,
        })
    }

    /// The network this server evaluates.
    pub fn network(&self) -> &CdlNetwork {
        &self.net
    }

    /// The GEMM microkernel every worker's evaluator runs (from
    /// [`ServerConfig::gemm_kernel`]).
    pub fn gemm_kernel(&self) -> GemmKernel {
        self.gemm_kernel
    }

    /// Submits a request, **blocking** while the in-flight queue is at
    /// capacity (backpressure propagates to the producer).
    ///
    /// With a pure size-bound [`BatchPolicy`] whose `max_batch_size`
    /// exceeds the queue capacity, the forming batch can never fill and
    /// this call blocks until requests complete some other way — see the
    /// liveness caveat on [`BatchPolicy::by_size`]; give the policy a
    /// deadline or use [`Server::try_submit`] for such configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] if the pipeline is gone.
    pub fn submit(&self, input: Tensor) -> ServeResult<Pending> {
        self.submit_with(input, SubmitOptions::default())
    }

    /// [`Server::submit`] with per-request [`SubmitOptions`]: this request
    /// is gated with the overridden δ and/or capped cascade depth, while
    /// the rest of the stream keeps the model's configured policy. The
    /// response stays bit-identical to
    /// [`CdlNetwork::classify_with_override`] with the same options.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadOptions`] for an out-of-range δ override
    /// (checked before admission), [`ServeError::ShuttingDown`] if the
    /// pipeline is gone.
    pub fn submit_with(&self, input: Tensor, options: SubmitOptions) -> ServeResult<Pending> {
        options.validate_for(self.net.policy())?;
        let trace = self.telemetry.begin_trace();
        self.gate.acquire();
        self.admit(input, options.exit_override(), trace)
    }

    /// [`Server::submit_with`] continuing a caller-supplied trace id
    /// instead of allocating a fresh one — the shape the TCP edge uses so
    /// one trace spans both sides of the wire. The id is recorded only if
    /// this server's own [`cdl_telemetry::TelemetryConfig`] has spans on
    /// and the id falls inside its sample (the sampling decision is a
    /// deterministic function of the id, so client and server agree).
    ///
    /// # Errors
    ///
    /// Same contract as [`Server::submit_with`].
    pub fn submit_with_trace(
        &self,
        input: Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> ServeResult<Pending> {
        options.validate_for(self.net.policy())?;
        let trace = self.telemetry.adopt(trace);
        self.gate.acquire();
        self.admit(input, options.exit_override(), trace)
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Full`] when the in-flight queue is at capacity
    /// (the request is not admitted), [`ServeError::ShuttingDown`] if the
    /// pipeline is gone.
    pub fn try_submit(&self, input: Tensor) -> ServeResult<Pending> {
        self.try_submit_with(input, SubmitOptions::default())
    }

    /// [`Server::try_submit`] with per-request [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadOptions`] for an out-of-range δ override,
    /// [`ServeError::Full`] when the in-flight queue is at capacity (the
    /// request is not admitted), [`ServeError::ShuttingDown`] if the
    /// pipeline is gone.
    pub fn try_submit_with(&self, input: Tensor, options: SubmitOptions) -> ServeResult<Pending> {
        options.validate_for(self.net.policy())?;
        let trace = self.telemetry.begin_trace();
        if !self.gate.try_acquire() {
            self.recorder.rejected();
            return Err(ServeError::Full);
        }
        self.admit(input, options.exit_override(), trace)
    }

    fn admit(
        &self,
        input: Tensor,
        overrides: ExitOverride,
        trace: Option<TraceId>,
    ) -> ServeResult<Pending> {
        if let Some(t) = trace {
            self.telemetry.record(t, EventKind::Admit);
        }
        let (pending, fulfiller) = pending_pair(trace);
        let request = Request {
            input,
            overrides,
            fulfiller,
            ticket: Ticket(Arc::clone(&self.gate)),
            submitted_at: Instant::now(),
            trace,
        };
        let tx = self.submit_tx.as_ref().expect("sender lives until drop");
        // count before sending: a fast worker may complete the request
        // before this thread resumes, and `completed > submitted` must
        // never be observable in a snapshot
        self.recorder.admitted();
        if let Some(t) = trace {
            self.telemetry.record(t, EventKind::Enqueue);
        }
        if tx.send(request).is_err() {
            // batcher died; the dropped request settles the pending with
            // Disconnected and frees its ticket
            self.recorder.unadmitted();
            return Err(ServeError::ShuttingDown);
        }
        Ok(pending)
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        self.recorder.snapshot(self.gate.depth())
    }

    /// The server's telemetry domain: drain lifecycle spans from it, or
    /// check its configuration. Spans are recorded only when
    /// [`crate::ServerConfig::telemetry`] enabled them.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A full exportable snapshot: every counter and the latency histogram
    /// from [`Server::metrics`], plus all span events drained since the
    /// last drain. Render it with
    /// [`TelemetrySnapshot::render_prometheus`] or
    /// [`TelemetrySnapshot::render_chrome_trace`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snapshot = TelemetrySnapshot::new();
        self.metrics().fill_telemetry(&mut snapshot, &[]);
        snapshot.spans = self.telemetry.drain();
        snapshot
    }

    /// The current number of in-flight requests: admitted but not yet
    /// completed, cancelled or failed (the live occupancy of the admission
    /// gate, bounded by [`crate::ServerConfig::queue_capacity`]).
    ///
    /// Much cheaper than a full [`Server::metrics`] snapshot — this is the
    /// load signal the [`crate::Router`]'s placement policies
    /// ([`crate::PlacementPolicy::LeastLoaded`] /
    /// [`crate::PlacementPolicy::PowerOfTwoChoices`]) sample on every
    /// admission.
    pub fn queue_depth(&self) -> usize {
        self.gate.depth()
    }

    /// Graceful drain-then-stop: stops admissions, lets the batcher flush
    /// everything queued (including a partially formed batch), waits for
    /// the workers to evaluate it all, and returns the final metrics.
    /// Every outstanding [`Pending`] is resolved before this returns.
    pub fn shutdown(mut self) -> ServerMetrics {
        self.finish();
        self.recorder.snapshot(self.gate.depth())
    }

    fn finish(&mut self) {
        drop(self.submit_tx.take());
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Batch-formation loop: collect until `max_batch_size` requests **or**
/// `max_wait` past the batch's first **submission**, whichever first; flush
/// the tail on disconnect (shutdown).
fn run_batcher(
    rx: Receiver<Request>,
    work_tx: Sender<Vec<Request>>,
    policy: BatchPolicy,
    recorder: &Recorder,
    telemetry: &Telemetry,
) {
    loop {
        // block for the request that opens the next batch
        let Ok(first) = rx.recv() else {
            return; // drained and disconnected: workers stop when work_tx drops
        };
        // anchor the deadline at the opener's *submission*, not its dequeue:
        // time a request spent queued behind earlier batches already counts
        // against its max_wait budget, so a busy batcher dispatches late
        // openers immediately instead of silently extending their wait
        let deadline = policy.max_wait.map(|w| first.submitted_at + w);
        let mut batch = vec![first];
        let mut cause = BatchCause::Full;
        while batch.len() < policy.max_batch_size {
            let received = match deadline {
                None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    None => Err(RecvTimeoutError::Timeout),
                    Some(remaining) => rx.recv_timeout(remaining),
                },
            };
            match received {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) => {
                    cause = BatchCause::Deadline;
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    cause = BatchCause::Flush;
                    break;
                }
            }
        }
        let disconnected = cause == BatchCause::Flush;
        recorder.dispatched(cause);
        for request in &batch {
            if let Some(t) = request.trace {
                telemetry.record(t, EventKind::BatchSeal);
            }
        }
        if work_tx.send(batch).is_err() {
            return; // all workers died; dropped requests settle as Disconnected
        }
        if disconnected {
            return;
        }
    }
}

/// Worker loop: one persistent [`BatchEvaluator`] per thread, pinned to the
/// configured GEMM microkernel, batches pulled from the shared work queue
/// until it closes.
fn run_worker(
    net: &CdlNetwork,
    kernel: GemmKernel,
    work_rx: &Mutex<Receiver<Vec<Request>>>,
    recorder: &Recorder,
    telemetry: &Telemetry,
) {
    let mut eval = BatchEvaluator::with_kernel(net, kernel);
    loop {
        // holding the lock across recv() serialises *idle waiting*, not
        // work: the receiver hands over one batch, the lock drops, and the
        // next idle worker takes over the wait
        let message = work_rx.lock().unwrap().recv();
        let Ok(batch) = message else {
            return;
        };
        process_batch(&mut eval, batch, recorder, telemetry);
    }
}

fn process_batch(
    eval: &mut BatchEvaluator<'_>,
    batch: Vec<Request>,
    recorder: &Recorder,
    telemetry: &Telemetry,
) {
    // partition the dispatched batch into groups of identical effective
    // override: each group is evaluated as one (sub-)batch, so the policy
    // applied to every image is exactly its request's policy while scratch
    // reuse and bit-exactness are preserved — a request's result does not
    // depend on which overrides its batch neighbours carried
    let mut groups: Vec<(ExitOverride, Vec<Request>)> = Vec::new();
    let mut cancelled = 0u64;
    for request in batch {
        if request.fulfiller.is_cancelled() {
            cancelled += 1; // dropping the request frees its ticket
        } else {
            match groups.iter_mut().find(|(ovr, _)| *ovr == request.overrides) {
                Some((_, members)) => members.push(request),
                None => groups.push((request.overrides, vec![request])),
            }
        }
    }
    recorder.cancelled(cancelled);
    for (overrides, members) in groups {
        let mut inputs: Vec<Tensor> = Vec::with_capacity(members.len());
        let mut live: Vec<(Fulfiller, Ticket, Instant, Option<TraceId>)> =
            Vec::with_capacity(members.len());
        for r in members {
            inputs.push(r.input);
            live.push((r.fulfiller, r.ticket, r.submitted_at, r.trace));
        }
        let traced = live.iter().any(|(_, _, _, t)| t.is_some());
        for (_, _, _, trace) in &live {
            if let Some(t) = trace {
                telemetry.record(*t, EventKind::Dispatch);
            }
        }
        // classify_stream, not classify_batch: a deadline-bound policy or a
        // shutdown flush can hand over a batch as large as the whole queue,
        // and the evaluator's scratch must stay bounded by its streaming
        // chunk. The observed variant runs the *same* arithmetic (results
        // stay bit-identical); the observer only reports, per cascade
        // stage, which members were still active.
        let result = if traced {
            eval.classify_stream_with_override_observed(&inputs, overrides, &mut |stage, active| {
                for &k in active {
                    if let Some(t) = live[k].3 {
                        telemetry.record(t, EventKind::Stage(stage as u32));
                    }
                }
            })
        } else {
            eval.classify_stream_with_override(&inputs, overrides)
        };
        match result {
            Ok(outputs) => {
                let now = Instant::now();
                for ((_, _, _, trace), out) in live.iter().zip(&outputs) {
                    if let Some(t) = trace {
                        telemetry.record(*t, EventKind::Exit(out.exit_stage as u32));
                    }
                }
                recorder.batch_completed(
                    live.iter()
                        .zip(&outputs)
                        .map(|((_, _, submitted_at, _), out)| (now - *submitted_at, out.clone())),
                );
                for ((fulfiller, ticket, _, trace), out) in live.into_iter().zip(outputs) {
                    fulfiller.settle(Ok(out));
                    if let Some(t) = trace {
                        telemetry.record(t, EventKind::Reply);
                    }
                    drop(ticket);
                }
            }
            Err(e) => {
                recorder.batch_failed(live.len() as u64);
                for (fulfiller, ticket, _, _) in live {
                    fulfiller.settle(Err(ServeError::Eval(e.clone())));
                    drop(ticket);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdl_core::arch::mnist_3c;
    use cdl_core::confidence::ConfidencePolicy;
    use cdl_core::head::LinearClassifier;
    use cdl_nn::network::Network;
    use std::time::Duration;

    fn build_untrained() -> Arc<CdlNetwork> {
        let arch = mnist_3c();
        let base = Network::from_spec(&arch.spec, 3).unwrap();
        let feats = arch.tap_features().unwrap();
        let stages = arch
            .taps
            .iter()
            .zip(&feats)
            .map(|(t, &f)| {
                (
                    t.spec_layer,
                    t.name.clone(),
                    LinearClassifier::new(f, 10, 1).unwrap(),
                )
            })
            .collect();
        Arc::new(CdlNetwork::assemble(base, stages, ConfidencePolicy::max_prob(0.6)).unwrap())
    }

    fn images(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| Tensor::full(&[1, 28, 28], 0.1 + 0.07 * (i as f32 % 11.0)))
            .collect()
    }

    fn config(policy: BatchPolicy, queue_capacity: usize, workers: usize) -> ServerConfig {
        ServerConfig {
            policy,
            queue_capacity,
            workers,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serves_bit_identical_results() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_deadline(Duration::from_millis(2)), 64, 2),
        )
        .unwrap();
        let inputs = images(24);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 24);
        assert_eq!(metrics.failed, 0);
        assert!(metrics.total_ops.compute_ops() > 0);
        assert!(metrics.energy_pj > 0.0);
    }

    #[test]
    fn lifecycle_spans_cover_admit_to_reply_and_stay_bit_identical() {
        let net = build_untrained();
        let mut cfg = config(BatchPolicy::by_deadline(Duration::from_millis(2)), 64, 2);
        cfg.telemetry = cdl_telemetry::TelemetryConfig::enabled();
        let server = Server::start(Arc::clone(&net), cfg).unwrap();
        let telemetry = server.telemetry().clone();
        let inputs = images(8);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        let traces: Vec<TraceId> = pendings
            .iter()
            .map(|p| p.trace().expect("sampling at 1.0 records every request"))
            .collect();
        // tracing must not perturb results
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        server.shutdown();
        let events = telemetry.drain();
        for trace in traces {
            let mine: Vec<&cdl_telemetry::SpanEvent> =
                events.iter().filter(|e| e.trace == trace).collect();
            for kind in [
                EventKind::Admit,
                EventKind::Enqueue,
                EventKind::BatchSeal,
                EventKind::Dispatch,
                EventKind::Stage(0),
                EventKind::Reply,
            ] {
                assert!(
                    mine.iter().any(|e| e.kind == kind),
                    "{trace} missing {kind:?}"
                );
            }
            assert!(
                mine.iter().any(|e| matches!(e.kind, EventKind::Exit(_))),
                "{trace} missing Exit"
            );
            // drain() sorts by timestamp; the lifecycle must come back in
            // causal order
            let order: Vec<&EventKind> = mine.iter().map(|e| &e.kind).collect();
            let pos = |k: &EventKind| order.iter().position(|x| *x == k).unwrap();
            assert!(pos(&EventKind::Admit) < pos(&EventKind::BatchSeal));
            assert!(pos(&EventKind::BatchSeal) < pos(&EventKind::Dispatch));
            assert!(pos(&EventKind::Dispatch) < pos(&EventKind::Reply));
        }
        assert_eq!(telemetry.dropped(), 0);
    }

    #[test]
    fn spans_off_means_no_trace_and_no_events() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_deadline(Duration::from_millis(2)), 64, 1),
        )
        .unwrap();
        let pending = server.submit(images(1).pop().unwrap()).unwrap();
        assert!(pending.trace().is_none(), "spans default off");
        pending.wait().unwrap();
        assert!(server.telemetry().drain().is_empty());
        server.shutdown();
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let net = build_untrained();
        // a size-bound batch that never fills: nothing completes, so the
        // 4-slot in-flight gate must fill deterministically
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 4, 1),
        )
        .unwrap();
        let inputs = images(4);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.try_submit(x.clone()).unwrap())
            .collect();
        assert_eq!(
            server.try_submit(inputs[0].clone()).unwrap_err(),
            ServeError::Full
        );
        let live = server.metrics();
        assert_eq!(live.queue_depth, 4);
        assert_eq!(live.rejected, 1);
        assert_eq!(live.completed, 0);
        // graceful shutdown flushes the partial batch and resolves everything
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 4);
        assert_eq!(metrics.batches_flushed, 1);
        assert_eq!(metrics.queue_depth, 0);
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
    }

    #[test]
    fn batcher_deadline_anchors_at_submission_not_dequeue() {
        // drive run_batcher directly with a request whose submission is
        // backdated past max_wait — the shape a busy batcher produces when
        // an opener sat in the submit channel behind earlier batches. It
        // must dispatch (nearly) immediately; a dequeue-anchored deadline
        // would silently grant it a second full max_wait.
        let gate = Arc::new(Gate::new(8));
        let recorder = Arc::new(Recorder::new(cdl_hw::EnergyModel::cmos_45nm()));
        let (tx, rx) = channel::<Request>();
        let (work_tx, work_rx) = channel::<Vec<Request>>();
        let policy = BatchPolicy::new(8, Duration::from_millis(100));
        let make = |submitted_at| {
            let (pending, fulfiller) = pending_pair(None);
            gate.acquire();
            let request = Request {
                input: Tensor::full(&[1, 1, 1], 0.0),
                overrides: ExitOverride {
                    delta: None,
                    max_stage: None,
                },
                fulfiller,
                ticket: Ticket(Arc::clone(&gate)),
                submitted_at,
                trace: None,
            };
            (pending, request)
        };
        let backdated = Instant::now() - Duration::from_millis(250);
        let (_p1, r1) = make(backdated);
        tx.send(r1).unwrap();
        let batcher = {
            let recorder = Arc::clone(&recorder);
            std::thread::spawn(move || {
                run_batcher(rx, work_tx, policy, &recorder, &Telemetry::disabled())
            })
        };
        // budget already spent at dequeue → singleton batch, right away
        let batch = work_rx
            .recv_timeout(Duration::from_millis(50))
            .expect("expired opener must dispatch immediately");
        assert_eq!(batch.len(), 1);
        // a fresh opener still gets its full max_wait, measured from submit
        let (_p2, r2) = make(Instant::now());
        let sent = Instant::now();
        tx.send(r2).unwrap();
        let batch = work_rx
            .recv_timeout(Duration::from_millis(2000))
            .expect("fresh opener dispatches at its deadline");
        assert_eq!(batch.len(), 1);
        assert!(
            sent.elapsed() >= Duration::from_millis(90),
            "fresh opener dispatched before its max_wait elapsed"
        );
        drop(tx);
        batcher.join().unwrap();
    }

    #[test]
    fn deadline_forms_partial_batches() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::new(1000, Duration::from_millis(20)), 64, 1),
        )
        .unwrap();
        let inputs = images(3);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        // no shutdown needed: the deadline alone must dispatch the batch
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 3);
        assert!(metrics.batches_deadline >= 1);
        assert_eq!(metrics.batches_full, 0);
        let total_in_batches: u64 = metrics
            .batch_size_histogram
            .iter()
            .enumerate()
            .map(|(size, &n)| size as u64 * n)
            .sum();
        assert_eq!(total_in_batches, 3);
    }

    #[test]
    fn size_bound_batches_dispatch_exactly_full() {
        let net = build_untrained();
        let server =
            Server::start(Arc::clone(&net), config(BatchPolicy::by_size(4), 64, 2)).unwrap();
        let inputs = images(8);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 8);
        assert_eq!(metrics.batches_full, 2);
        assert_eq!(metrics.batch_size_histogram[4], 2);
        assert!((metrics.mean_batch_size - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_pendings_cancel_without_evaluation() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 8, 1),
        )
        .unwrap();
        for x in images(3) {
            drop(server.submit(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.cancelled, 3);
        assert_eq!(metrics.completed, 0);
        assert_eq!(metrics.batches, 0, "nothing must be evaluated");
        assert_eq!(metrics.total_ops.compute_ops(), 0);
        assert_eq!(metrics.queue_depth, 0, "tickets released on cancel");
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 16, 2),
        )
        .unwrap();
        let inputs = images(10);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        // none dispatched yet (size-bound batch can't fill) — shutdown must
        // still deliver every single one
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 10);
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
    }

    #[test]
    fn blocking_submit_rides_through_backpressure() {
        let net = build_untrained();
        // tiny queue + instant dispatch: submit must repeatedly block on the
        // gate and resume as the workers drain
        let server =
            Server::start(Arc::clone(&net), config(BatchPolicy::by_size(1), 2, 2)).unwrap();
        let inputs = images(20);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 20);
        assert_eq!(metrics.batch_size_histogram[1], 20);
    }

    #[test]
    fn concurrent_clients_interleave_arbitrarily() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::new(8, Duration::from_millis(1)), 128, 3),
        )
        .unwrap();
        let inputs = images(60);
        let outputs: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(20)
                .map(|chunk| {
                    let server = &server;
                    scope.spawn(move || {
                        let pendings: Vec<Pending> = chunk
                            .iter()
                            .map(|x| server.submit(x.clone()).unwrap())
                            .collect();
                        pendings
                            .into_iter()
                            .map(|p| p.wait().unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        for (x, out) in inputs.iter().zip(&outputs) {
            assert_eq!(*out, net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 60);
    }

    #[test]
    fn start_validates_config() {
        let net = build_untrained();
        let bad = config(BatchPolicy::by_size(0), 8, 1);
        assert!(matches!(
            Server::start(Arc::clone(&net), bad),
            Err(ServeError::BadConfig(_))
        ));
        let bad = config(BatchPolicy::default(), 8, 0);
        assert!(Server::start(net, bad).is_err());
    }
}
