//! The streaming inference server: bounded admission, dynamic batch
//! formation, and a pool of persistent batched evaluators.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use cdl_core::batch::{BatchEvaluator, SheddableOutcome};
use cdl_core::confidence::ExitOverride;
use cdl_core::network::CdlNetwork;
use cdl_telemetry::{EventKind, Telemetry, TelemetrySnapshot, TraceId};
use cdl_tensor::gemm::GemmKernel;
use cdl_tensor::Tensor;

use crate::config::{BatchPolicy, Priority, ServerConfig, SubmitOptions};
use crate::error::{ServeError, ServeResult};
use crate::fault::FaultPlan;
use crate::metrics::{BatchCause, Recorder, ServerMetrics};
use crate::pending::{pending_pair, Fulfiller, Pending};

/// Occupancy of the admission gate: total in-flight requests plus the
/// per-tenant split quotas are enforced over.
#[derive(Debug, Default)]
struct GateState {
    total: usize,
    per_tenant: HashMap<u32, usize>,
}

/// Why the gate refused a submission (the non-blocking path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Refusal {
    /// At capacity for the highest class — plain backpressure.
    Full,
    /// A lower priority class above its admission limit — overload
    /// control shedding it in favour of higher classes.
    Shed,
    /// The tenant is at its in-flight quota.
    Quota,
}

/// Callbacks fired whenever an in-flight slot frees up — the event-driven
/// alternative to polling the gate for vacancy. The TCP edge registers one
/// per poller so a parked admission retries the moment capacity appears
/// instead of waiting out a poll interval.
struct VacancyListeners {
    /// Fast-path flag: until the first listener registers, `fire` is a
    /// single relaxed load — no lock, no allocation.
    armed: AtomicBool,
    list: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

impl VacancyListeners {
    fn new() -> Self {
        VacancyListeners {
            armed: AtomicBool::new(false),
            list: Mutex::new(Vec::new()),
        }
    }

    fn add(&self, listener: Arc<dyn Fn() + Send + Sync>) {
        self.list.lock().unwrap().push(listener);
        self.armed.store(true, Ordering::Release);
    }

    /// Invokes every listener. Callers must not hold the gate's state
    /// lock: a listener may re-enter the gate (the edge retries a parked
    /// admission from inside its wakeup).
    fn fire(&self) {
        if !self.armed.load(Ordering::Acquire) {
            return;
        }
        let listeners: Vec<_> = self.list.lock().unwrap().clone();
        for listener in &listeners {
            listener();
        }
    }
}

impl fmt::Debug for VacancyListeners {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VacancyListeners")
            .field("count", &self.list.lock().unwrap().len())
            .finish()
    }
}

/// Counting semaphore bounding the number of in-flight requests — the
/// server's backpressure, extended with overload control: each
/// [`Priority`] class is admitted only up to its
/// [`Priority::admission_limit`], and a tenant never holds more than
/// `tenant_quota` slots at once. A slot is held from admission until the
/// request reaches a terminal state (completed, cancelled-and-skipped,
/// expired, or failed).
#[derive(Debug)]
struct Gate {
    capacity: usize,
    tenant_quota: Option<usize>,
    state: Mutex<GateState>,
    freed: Condvar,
    vacancy: VacancyListeners,
}

impl Gate {
    fn new(capacity: usize, tenant_quota: Option<usize>) -> Self {
        Gate {
            capacity,
            tenant_quota,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            vacancy: VacancyListeners::new(),
        }
    }

    /// Would a submission of this class/tenant be admitted right now?
    fn admittable(
        &self,
        state: &GateState,
        priority: Priority,
        tenant: Option<u32>,
    ) -> Result<(), Refusal> {
        if let (Some(quota), Some(t)) = (self.tenant_quota, tenant) {
            if state.per_tenant.get(&t).copied().unwrap_or(0) >= quota {
                return Err(Refusal::Quota);
            }
        }
        if state.total >= priority.admission_limit(self.capacity) {
            return Err(if priority == Priority::High {
                Refusal::Full
            } else {
                Refusal::Shed
            });
        }
        Ok(())
    }

    fn book(state: &mut GateState, tenant: Option<u32>) {
        state.total += 1;
        if let Some(t) = tenant {
            *state.per_tenant.entry(t).or_insert(0) += 1;
        }
    }

    /// Non-blocking: the reason for refusal when the class or tenant is
    /// not admissible right now.
    fn try_acquire(&self, priority: Priority, tenant: Option<u32>) -> Result<(), Refusal> {
        let mut state = self.state.lock().unwrap();
        self.admittable(&state, priority, tenant)?;
        Gate::book(&mut state, tenant);
        Ok(())
    }

    /// Blocks until this class (and tenant) may be admitted.
    fn acquire(&self, priority: Priority, tenant: Option<u32>) {
        let mut state = self.state.lock().unwrap();
        while self.admittable(&state, priority, tenant).is_err() {
            state = self.freed.wait(state).unwrap();
        }
        Gate::book(&mut state, tenant);
    }

    fn release(&self, tenant: Option<u32>) {
        let mut state = self.state.lock().unwrap();
        state.total = state.total.saturating_sub(1);
        if let Some(t) = tenant {
            if let Some(n) = state.per_tenant.get_mut(&t) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    state.per_tenant.remove(&t);
                }
            }
        }
        // waiters are heterogeneous (classes, tenants): wake them all so a
        // newly-admissible one is never starved behind a still-blocked one
        self.freed.notify_all();
        drop(state);
        // listeners run outside the state lock so they may re-enter the
        // gate (try_acquire) without deadlocking
        self.vacancy.fire();
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap().total
    }
}

/// RAII in-flight slot: released when the request leaves the pipeline, on
/// every path (delivered, cancelled, expired, failed, or dropped by
/// teardown). Remembers the tenant so the quota count is decremented too.
#[derive(Debug)]
struct Ticket {
    gate: Arc<Gate>,
    tenant: Option<u32>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        self.gate.release(self.tenant);
    }
}

/// One queued classification request.
#[derive(Debug)]
struct Request {
    input: Tensor,
    /// Per-request δ/depth override (validated at admission).
    overrides: ExitOverride,
    fulfiller: Fulfiller,
    ticket: Ticket,
    submitted_at: Instant,
    /// When the request's latency budget runs out (admission +
    /// [`SubmitOptions::deadline`]); past this instant the shed points
    /// settle it [`ServeError::Expired`] instead of evaluating it.
    expires_at: Option<Instant>,
    /// Admission class, kept for the per-class expired counters.
    priority: Priority,
    /// Tenant id, kept for the per-tenant expired counters.
    tenant: Option<u32>,
    /// Sampled telemetry trace, if lifecycle spans are being recorded for
    /// this request.
    trace: Option<TraceId>,
}

impl Request {
    /// Shed-eligible: the deadline passed and the client is still waiting
    /// (a cancelled request is accounted `cancelled`, never `expired`).
    fn is_expired(&self, now: Instant) -> bool {
        !self.fulfiller.is_cancelled() && self.expires_at.is_some_and(|at| now >= at)
    }
}

/// Settles an expired request with the typed error, unevaluated — zero
/// evaluator ops, the queue-level analogue of early exit. Dropping the
/// request frees its gate slot.
fn settle_expired(request: Request, recorder: &Recorder) {
    recorder.expired(request.priority, request.tenant);
    request.fulfiller.settle(Err(ServeError::Expired));
}

/// A streaming inference server over one [`CdlNetwork`].
///
/// See the [crate-level docs](crate) for the architecture. Results are
/// **bit-identical** to [`CdlNetwork::classify`] for every request,
/// regardless of how concurrent submissions are interleaved into batches —
/// the [`BatchEvaluator`] underneath guarantees per-image equivalence for
/// any batch composition.
///
/// `shutdown` (or `Drop`) is graceful: the submission queue is drained,
/// partially formed batches are flushed to the workers, and every
/// outstanding [`Pending`] resolves before the threads exit.
#[derive(Debug)]
pub struct Server {
    net: Arc<CdlNetwork>,
    gemm_kernel: GemmKernel,
    submit_tx: Option<Sender<Request>>,
    gate: Arc<Gate>,
    recorder: Arc<Recorder>,
    telemetry: Telemetry,
    fault: FaultPlan,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the batcher and worker threads and begins accepting requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid configuration.
    pub fn start(net: Arc<CdlNetwork>, config: ServerConfig) -> ServeResult<Server> {
        config.validate()?;
        let gate = Arc::new(Gate::new(config.queue_capacity, config.tenant_quota));
        let recorder = Arc::new(Recorder::new(config.energy_model));
        let telemetry = Telemetry::new(config.telemetry);
        let (submit_tx, submit_rx) = channel::<Request>();
        let (work_tx, work_rx) = channel::<Vec<Request>>();
        let work_rx = Arc::new(Mutex::new(work_rx));

        let batcher = {
            let recorder = Arc::clone(&recorder);
            let telemetry = telemetry.clone();
            let policy = config.policy;
            std::thread::Builder::new()
                .name("cdl-serve-batcher".into())
                .spawn(move || run_batcher(submit_rx, work_tx, policy, &recorder, &telemetry))
                .expect("spawn batcher thread")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let net = Arc::clone(&net);
                let work_rx = Arc::clone(&work_rx);
                let recorder = Arc::clone(&recorder);
                let telemetry = telemetry.clone();
                let kernel = config.gemm_kernel;
                // clones share the plan's trigger state: the batch
                // sequence is per pipeline, not per worker thread
                let fault = config.fault.clone();
                std::thread::Builder::new()
                    .name(format!("cdl-serve-worker-{i}"))
                    .spawn(move || {
                        run_worker(&net, kernel, &work_rx, &fault, &recorder, &telemetry)
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        Ok(Server {
            net,
            gemm_kernel: config.gemm_kernel,
            submit_tx: Some(submit_tx),
            gate,
            recorder,
            telemetry,
            fault: config.fault,
            batcher: Some(batcher),
            workers,
        })
    }

    /// The network this server evaluates.
    pub fn network(&self) -> &CdlNetwork {
        &self.net
    }

    /// A shared handle to the network this server evaluates — what the
    /// router's hot-swap path compares and hands out without borrowing
    /// through the replica lock.
    pub(crate) fn network_arc(&self) -> Arc<CdlNetwork> {
        Arc::clone(&self.net)
    }

    /// Registers a callback fired every time an in-flight slot frees up
    /// (completion, cancellation, expiry, or failure — any path that
    /// releases the admission gate). The callback runs on whichever
    /// thread released the slot and must be cheap and non-blocking; it
    /// may re-enter the submit API. The TCP edge uses this to wake a
    /// poller with parked (gate-full) admissions the moment capacity
    /// appears, instead of polling on a timeout.
    pub fn on_gate_vacancy(&self, listener: Arc<dyn Fn() + Send + Sync>) {
        self.gate.vacancy.add(listener);
    }

    /// The GEMM microkernel every worker's evaluator runs (from
    /// [`ServerConfig::gemm_kernel`]).
    pub fn gemm_kernel(&self) -> GemmKernel {
        self.gemm_kernel
    }

    /// Submits a request, **blocking** while the in-flight queue is at
    /// capacity (backpressure propagates to the producer). A submission
    /// carrying a non-default [`Priority`] likewise blocks while its class
    /// is over its admission limit, and a tenanted one while the tenant is
    /// at quota — blocking submitters wait out overload instead of being
    /// shed (typed shed errors are the `try_submit` contract).
    ///
    /// With a pure size-bound [`BatchPolicy`] whose `max_batch_size`
    /// exceeds the queue capacity, the forming batch can never fill and
    /// this call blocks until requests complete some other way — see the
    /// liveness caveat on [`BatchPolicy::by_size`]; give the policy a
    /// deadline or use [`Server::try_submit`] for such configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a wrong-shaped input tensor
    /// (checked before admission), [`ServeError::ShuttingDown`] if the
    /// pipeline is gone.
    pub fn submit(&self, input: Tensor) -> ServeResult<Pending> {
        self.submit_with(input, SubmitOptions::default())
    }

    /// [`Server::submit`] with per-request [`SubmitOptions`]: this request
    /// is gated with the overridden δ and/or capped cascade depth, while
    /// the rest of the stream keeps the model's configured policy. The
    /// response stays bit-identical to
    /// [`CdlNetwork::classify_with_override`] with the same options.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadOptions`] for an out-of-range δ override,
    /// [`ServeError::BadInput`] for a wrong-shaped input tensor (both
    /// checked before admission), [`ServeError::ShuttingDown`] if the
    /// pipeline is gone.
    pub fn submit_with(&self, input: Tensor, options: SubmitOptions) -> ServeResult<Pending> {
        options.validate_for(self.net.policy())?;
        self.validate_input(&input)?;
        self.check_fault()?;
        let trace = self.telemetry.begin_trace();
        self.gate.acquire(options.priority, options.tenant);
        self.admit(input, options, trace)
    }

    /// [`Server::submit_with`] continuing a caller-supplied trace id
    /// instead of allocating a fresh one — the shape the TCP edge uses so
    /// one trace spans both sides of the wire. The id is recorded only if
    /// this server's own [`cdl_telemetry::TelemetryConfig`] has spans on
    /// and the id falls inside its sample (the sampling decision is a
    /// deterministic function of the id, so client and server agree).
    ///
    /// # Errors
    ///
    /// Same contract as [`Server::submit_with`].
    pub fn submit_with_trace(
        &self,
        input: Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> ServeResult<Pending> {
        options.validate_for(self.net.policy())?;
        self.validate_input(&input)?;
        self.check_fault()?;
        let trace = self.telemetry.adopt(trace);
        self.gate.acquire(options.priority, options.tenant);
        self.admit(input, options, trace)
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Full`] when the in-flight queue is at capacity
    /// (the request is not admitted), [`ServeError::BadInput`] for a
    /// wrong-shaped input tensor, [`ServeError::ShuttingDown`] if the
    /// pipeline is gone.
    pub fn try_submit(&self, input: Tensor) -> ServeResult<Pending> {
        self.try_submit_with(input, SubmitOptions::default())
    }

    /// [`Server::try_submit`] with per-request [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadOptions`] for an out-of-range δ override,
    /// [`ServeError::BadInput`] for a wrong-shaped input tensor,
    /// [`ServeError::Full`] when the in-flight queue is at capacity,
    /// [`ServeError::Shed`] when the request's [`Priority`] class is over
    /// its admission limit, [`ServeError::QuotaExceeded`] when the tenant
    /// is at its in-flight quota (in every refusal case the request is
    /// **not** admitted), [`ServeError::ShuttingDown`] if the pipeline is
    /// gone.
    pub fn try_submit_with(&self, input: Tensor, options: SubmitOptions) -> ServeResult<Pending> {
        options.validate_for(self.net.policy())?;
        self.validate_input(&input)?;
        self.check_fault()?;
        let trace = self.telemetry.begin_trace();
        if let Err(refusal) = self.gate.try_acquire(options.priority, options.tenant) {
            return Err(self.refuse(refusal, options));
        }
        self.admit(input, options, trace)
    }

    /// [`Server::try_submit_with`] continuing a caller-supplied trace id
    /// (see [`Server::submit_with_trace`]) — the stop-aware TCP edge
    /// admission path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Server::try_submit_with`].
    pub fn try_submit_with_trace(
        &self,
        input: Tensor,
        options: SubmitOptions,
        trace: TraceId,
    ) -> ServeResult<Pending> {
        options.validate_for(self.net.policy())?;
        self.validate_input(&input)?;
        self.check_fault()?;
        let trace = self.telemetry.adopt(trace);
        if let Err(refusal) = self.gate.try_acquire(options.priority, options.tenant) {
            return Err(self.refuse(refusal, options));
        }
        self.admit(input, options, trace)
    }

    /// [`Server::try_submit_with_trace`] that takes the input **by value**
    /// and hands it back on refusal instead of forcing the caller to clone
    /// per attempt: a refused submission returns `(error, Some(input))`
    /// with the tensor intact, so a retrying edge (the gate-full admission
    /// loop) resubmits the same allocation instead of cloning the tensor
    /// every 50ms as the old reader loop did. Pass `trace: None` to
    /// allocate a fresh trace id, `Some(id)` to continue a wire-carried
    /// one (the [`Server::submit_with_trace`] semantics).
    ///
    /// # Errors
    ///
    /// The same refusals as [`Server::try_submit_with_trace`], paired with
    /// `Some(input)` so the tensor survives the bounce. Only
    /// [`ServeError::ShuttingDown`] loses the tensor (`None`): the request
    /// was consumed by the pipeline before the batcher was found dead, and
    /// there is nothing left to retry against anyway.
    pub fn try_submit_reclaim(
        &self,
        input: Tensor,
        options: SubmitOptions,
        trace: Option<TraceId>,
    ) -> Result<Pending, (ServeError, Option<Tensor>)> {
        if let Err(e) = options.validate_for(self.net.policy()) {
            return Err((e, Some(input)));
        }
        if let Err(e) = self.validate_input(&input) {
            return Err((e, Some(input)));
        }
        if let Err(e) = self.check_fault() {
            return Err((e, Some(input)));
        }
        let trace = match trace {
            Some(id) => self.telemetry.adopt(id),
            None => self.telemetry.begin_trace(),
        };
        if let Err(refusal) = self.gate.try_acquire(options.priority, options.tenant) {
            return Err((self.refuse(refusal, options), Some(input)));
        }
        self.admit(input, options, trace).map_err(|e| (e, None))
    }

    /// Admission fault hook: consults the installed [`FaultPlan`] (one
    /// branch when unarmed). An active error burst refuses the request
    /// with [`ServeError::Fault`] before it touches the gate — the shape
    /// of a replica spewing errors, visible to the router's retry and
    /// health machinery exactly like a real failure.
    fn check_fault(&self) -> ServeResult<()> {
        match self.fault.on_admission() {
            None => Ok(()),
            Some(e) => {
                self.recorder.fault_rejected();
                Err(e)
            }
        }
    }

    /// Rejects a wrong-shaped input before it can reach a batch: one bad
    /// tensor co-batched with innocent neighbours would otherwise fail the
    /// whole group evaluation (see the per-request fallback in
    /// `process_batch` for the defence-in-depth second layer).
    fn validate_input(&self, input: &Tensor) -> ServeResult<()> {
        let expected = &self.net.base().spec().input_shape;
        if input.dims() != expected.as_slice() {
            return Err(ServeError::BadInput(format!(
                "input shape {:?} does not match the model's expected input shape {:?}",
                input.dims(),
                expected
            )));
        }
        Ok(())
    }

    /// Records the refusal and maps it to its typed error.
    fn refuse(&self, refusal: Refusal, options: SubmitOptions) -> ServeError {
        match refusal {
            Refusal::Full => {
                self.recorder.rejected();
                ServeError::Full
            }
            Refusal::Shed => {
                self.recorder.shed(options.priority, options.tenant);
                ServeError::Shed(options.priority)
            }
            Refusal::Quota => {
                self.recorder.shed(options.priority, options.tenant);
                ServeError::QuotaExceeded(
                    options
                        .tenant
                        .expect("quota refusals always carry a tenant"),
                )
            }
        }
    }

    fn admit(
        &self,
        input: Tensor,
        options: SubmitOptions,
        trace: Option<TraceId>,
    ) -> ServeResult<Pending> {
        if let Some(t) = trace {
            self.telemetry.record(t, EventKind::Admit);
        }
        let (pending, fulfiller) = pending_pair(trace);
        let submitted_at = Instant::now();
        let request = Request {
            input,
            overrides: options.exit_override(),
            fulfiller,
            ticket: Ticket {
                gate: Arc::clone(&self.gate),
                tenant: options.tenant,
            },
            submitted_at,
            expires_at: options.deadline.map(|d| submitted_at + d),
            priority: options.priority,
            tenant: options.tenant,
            trace,
        };
        let tx = self.submit_tx.as_ref().expect("sender lives until drop");
        // count before sending: a fast worker may complete the request
        // before this thread resumes, and `completed > submitted` must
        // never be observable in a snapshot
        self.recorder.admitted();
        if let Some(t) = trace {
            self.telemetry.record(t, EventKind::Enqueue);
        }
        if tx.send(request).is_err() {
            // batcher died; the dropped request settles the pending with
            // Disconnected and frees its ticket
            self.recorder.unadmitted();
            return Err(ServeError::ShuttingDown);
        }
        Ok(pending)
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        self.recorder.snapshot(self.gate.depth())
    }

    /// The server's telemetry domain: drain lifecycle spans from it, or
    /// check its configuration. Spans are recorded only when
    /// [`crate::ServerConfig::telemetry`] enabled them.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A full exportable snapshot: every counter and the latency histogram
    /// from [`Server::metrics`], plus all span events drained since the
    /// last drain. Render it with
    /// [`TelemetrySnapshot::render_prometheus`] or
    /// [`TelemetrySnapshot::render_chrome_trace`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snapshot = TelemetrySnapshot::new();
        self.metrics().fill_telemetry(&mut snapshot, &[]);
        snapshot.spans = self.telemetry.drain();
        snapshot
    }

    /// The current number of in-flight requests: admitted but not yet
    /// completed, cancelled or failed (the live occupancy of the admission
    /// gate, bounded by [`crate::ServerConfig::queue_capacity`]).
    ///
    /// Much cheaper than a full [`Server::metrics`] snapshot — this is the
    /// load signal the [`crate::Router`]'s placement policies
    /// ([`crate::PlacementPolicy::LeastLoaded`] /
    /// [`crate::PlacementPolicy::PowerOfTwoChoices`]) sample on every
    /// admission.
    pub fn queue_depth(&self) -> usize {
        self.gate.depth()
    }

    /// Graceful drain-then-stop: stops admissions, lets the batcher flush
    /// everything queued (including a partially formed batch), waits for
    /// the workers to evaluate it all, and returns the final metrics.
    /// Every outstanding [`Pending`] is resolved before this returns.
    pub fn shutdown(mut self) -> ServerMetrics {
        self.finish();
        self.recorder.snapshot(self.gate.depth())
    }

    fn finish(&mut self) {
        drop(self.submit_tx.take());
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Batch-formation loop: collect until `max_batch_size` requests **or**
/// `max_wait` past the batch's first **submission**, whichever first; flush
/// the tail on disconnect (shutdown).
fn run_batcher(
    rx: Receiver<Request>,
    work_tx: Sender<Vec<Request>>,
    policy: BatchPolicy,
    recorder: &Recorder,
    telemetry: &Telemetry,
) {
    loop {
        // block for the request that opens the next batch
        let Ok(first) = rx.recv() else {
            return; // drained and disconnected: workers stop when work_tx drops
        };
        // anchor the deadline at the opener's *submission*, not its dequeue:
        // time a request spent queued behind earlier batches already counts
        // against its max_wait budget, so a busy batcher dispatches late
        // openers immediately instead of silently extending their wait
        let deadline = policy.max_wait.map(|w| first.submitted_at + w);
        let mut batch = vec![first];
        let mut cause = BatchCause::Full;
        while batch.len() < policy.max_batch_size {
            let received = match deadline {
                None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    None => Err(RecvTimeoutError::Timeout),
                    Some(remaining) => rx.recv_timeout(remaining),
                },
            };
            match received {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) => {
                    cause = BatchCause::Deadline;
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    cause = BatchCause::Flush;
                    break;
                }
            }
        }
        let disconnected = cause == BatchCause::Flush;
        recorder.dispatched(cause);
        // batch-formation shed point: a request whose deadline has already
        // passed while the batch was forming is settled Expired here,
        // spending zero evaluator ops and freeing its gate slot early
        let now = Instant::now();
        let (batch, expired): (Vec<Request>, Vec<Request>) =
            batch.into_iter().partition(|r| !r.is_expired(now));
        for request in expired {
            settle_expired(request, recorder);
        }
        if !batch.is_empty() {
            for request in &batch {
                if let Some(t) = request.trace {
                    telemetry.record(t, EventKind::BatchSeal);
                }
            }
            if work_tx.send(batch).is_err() {
                return; // all workers died; dropped requests settle as Disconnected
            }
        }
        if disconnected {
            return;
        }
    }
}

/// Worker loop: one persistent [`BatchEvaluator`] per thread, pinned to the
/// configured GEMM microkernel, batches pulled from the shared work queue
/// until it closes.
fn run_worker(
    net: &CdlNetwork,
    kernel: GemmKernel,
    work_rx: &Mutex<Receiver<Vec<Request>>>,
    fault: &FaultPlan,
    recorder: &Recorder,
    telemetry: &Telemetry,
) {
    let mut eval = BatchEvaluator::with_kernel(net, kernel);
    loop {
        // holding the lock across recv() serialises *idle waiting*, not
        // work: the receiver hands over one batch, the lock drops, and the
        // next idle worker takes over the wait
        let message = work_rx.lock().unwrap().recv();
        let Ok(batch) = message else {
            return;
        };
        // scripted disruption (one branch when unarmed): stalls and
        // slowdowns sleep here, inflating the latency tail exactly like a
        // wedged evaluator; a panic kills this worker thread — its batch
        // settles `Disconnected` through the fulfiller drop path and the
        // rest of the pool keeps serving
        let disruption = fault.before_batch();
        if let Some(pause) = disruption.sleep {
            std::thread::sleep(pause);
        }
        if disruption.panic {
            panic!("scripted fault: PanicOnce");
        }
        process_batch(&mut eval, batch, recorder, telemetry);
    }
}

fn process_batch(
    eval: &mut BatchEvaluator<'_>,
    batch: Vec<Request>,
    recorder: &Recorder,
    telemetry: &Telemetry,
) {
    // partition the dispatched batch into groups of identical effective
    // override: each group is evaluated as one (sub-)batch, so the policy
    // applied to every image is exactly its request's policy while scratch
    // reuse and bit-exactness are preserved — a request's result does not
    // depend on which overrides its batch neighbours carried
    let mut groups: Vec<(ExitOverride, Vec<Request>)> = Vec::new();
    let mut cancelled = 0u64;
    let now = Instant::now();
    for request in batch {
        if request.fulfiller.is_cancelled() {
            cancelled += 1; // dropping the request frees its ticket
        } else if request.is_expired(now) {
            // dispatch-time shed point: the deadline ran out while the
            // batch sat in the work queue — settle unevaluated
            settle_expired(request, recorder);
        } else {
            match groups.iter_mut().find(|(ovr, _)| *ovr == request.overrides) {
                Some((_, members)) => members.push(request),
                None => groups.push((request.overrides, vec![request])),
            }
        }
    }
    recorder.cancelled(cancelled);
    for (overrides, members) in groups {
        evaluate_group(eval, overrides, members, recorder, telemetry);
    }
}

/// One request's serving-side state while its group is in the evaluator
/// (the input tensor has been moved into the group's batch).
struct LiveRequest {
    fulfiller: Fulfiller,
    ticket: Ticket,
    submitted_at: Instant,
    expires_at: Option<Instant>,
    priority: Priority,
    tenant: Option<u32>,
    trace: Option<TraceId>,
}

/// Evaluates one override-uniform group of a dispatched batch, settling
/// every member: completions with their bit-exact output, mid-batch
/// deadline victims with [`ServeError::Expired`], evaluator failures with
/// [`ServeError::Eval`].
fn evaluate_group(
    eval: &mut BatchEvaluator<'_>,
    overrides: ExitOverride,
    members: Vec<Request>,
    recorder: &Recorder,
    telemetry: &Telemetry,
) {
    let mut inputs: Vec<Tensor> = Vec::with_capacity(members.len());
    let mut live: Vec<LiveRequest> = Vec::with_capacity(members.len());
    for r in members {
        inputs.push(r.input);
        live.push(LiveRequest {
            fulfiller: r.fulfiller,
            ticket: r.ticket,
            submitted_at: r.submitted_at,
            expires_at: r.expires_at,
            priority: r.priority,
            tenant: r.tenant,
            trace: r.trace,
        });
    }
    let traced = live.iter().any(|l| l.trace.is_some());
    for l in &live {
        if let Some(t) = l.trace {
            telemetry.record(t, EventKind::Dispatch);
        }
    }
    // classify_stream, not classify_batch: a deadline-bound policy or a
    // shutdown flush can hand over a batch as large as the whole queue,
    // and the evaluator's scratch must stay bounded by its streaming
    // chunk. The observed variant runs the *same* arithmetic (results
    // stay bit-identical); the observer only reports, per cascade
    // stage, which members were still active. The shed hook is the
    // mid-batch deadline check: a member whose deadline passes while the
    // batch is in flight is evicted at the next cascade stage boundary
    // instead of riding the whole cascade to a result nobody will read —
    // survivors stay bit-identical (shedding only removes rows from the
    // batched GEMMs).
    let deadlines: Vec<Option<Instant>> = live.iter().map(|l| l.expires_at).collect();
    let mut shed_hook =
        |_next_stage: usize, k: usize| deadlines[k].is_some_and(|d| Instant::now() >= d);
    let result = if traced {
        eval.classify_stream_with_override_sheddable(
            &inputs,
            overrides,
            &mut |stage, active| {
                for &k in active {
                    if let Some(t) = live[k].trace {
                        telemetry.record(t, EventKind::Stage(stage as u32));
                    }
                }
            },
            &mut shed_hook,
        )
    } else {
        eval.classify_stream_with_override_sheddable(
            &inputs,
            overrides,
            &mut |_, _| {},
            &mut shed_hook,
        )
    };
    match result {
        Ok(outcomes) => {
            let now = Instant::now();
            for (l, outcome) in live.iter().zip(&outcomes) {
                if let (Some(t), SheddableOutcome::Done(out)) = (l.trace, outcome) {
                    telemetry.record(t, EventKind::Exit(out.exit_stage as u32));
                }
            }
            recorder.batch_completed(live.iter().zip(&outcomes).filter_map(|(l, outcome)| {
                match outcome {
                    SheddableOutcome::Done(out) => Some((now - l.submitted_at, out.clone())),
                    SheddableOutcome::Shed(_) => None,
                }
            }));
            for (l, outcome) in live.into_iter().zip(outcomes) {
                match outcome {
                    SheddableOutcome::Done(out) => {
                        l.fulfiller.settle(Ok(out));
                        if let Some(t) = l.trace {
                            telemetry.record(t, EventKind::Reply);
                        }
                    }
                    SheddableOutcome::Shed(partial) => {
                        // honest accounting: the stages this request burned
                        // before eviction are real work — charge them to
                        // the op/energy ledger even though nothing ships
                        recorder.expired_mid_batch(
                            l.priority,
                            l.tenant,
                            partial.ops,
                            partial.stages_activated,
                        );
                        l.fulfiller.settle(Err(ServeError::Expired));
                    }
                }
                drop(l.ticket);
            }
        }
        Err(group_err) if live.len() == 1 => {
            recorder.batch_failed(1);
            let l = live.into_iter().next().expect("one live entry");
            l.fulfiller.settle(Err(ServeError::Eval(group_err)));
            drop(l.ticket);
        }
        Err(_) => {
            // co-batch poisoning defence: one bad input must not fail
            // its innocent neighbours. Re-evaluate each request alone so
            // only the offending one settles with the evaluator error —
            // results of the survivors stay bit-identical (singleton
            // evaluation is the equivalence baseline).
            for (l, input) in live.into_iter().zip(&inputs) {
                match eval.classify_stream_with_override(std::slice::from_ref(input), overrides) {
                    Ok(mut outputs) => {
                        let out = outputs.pop().expect("one output per input");
                        if let Some(t) = l.trace {
                            telemetry.record(t, EventKind::Exit(out.exit_stage as u32));
                        }
                        recorder.batch_completed(
                            [(Instant::now() - l.submitted_at, out.clone())].into_iter(),
                        );
                        l.fulfiller.settle(Ok(out));
                        if let Some(t) = l.trace {
                            telemetry.record(t, EventKind::Reply);
                        }
                    }
                    Err(e) => {
                        recorder.batch_failed(1);
                        l.fulfiller.settle(Err(ServeError::Eval(e)));
                    }
                }
                drop(l.ticket);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdl_core::arch::mnist_3c;
    use cdl_core::confidence::ConfidencePolicy;
    use cdl_core::head::LinearClassifier;
    use cdl_nn::network::Network;
    use std::time::Duration;

    fn build_untrained() -> Arc<CdlNetwork> {
        let arch = mnist_3c();
        let base = Network::from_spec(&arch.spec, 3).unwrap();
        let feats = arch.tap_features().unwrap();
        let stages = arch
            .taps
            .iter()
            .zip(&feats)
            .map(|(t, &f)| {
                (
                    t.spec_layer,
                    t.name.clone(),
                    LinearClassifier::new(f, 10, 1).unwrap(),
                )
            })
            .collect();
        Arc::new(CdlNetwork::assemble(base, stages, ConfidencePolicy::max_prob(0.6)).unwrap())
    }

    fn images(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| Tensor::full(&[1, 28, 28], 0.1 + 0.07 * (i as f32 % 11.0)))
            .collect()
    }

    fn config(policy: BatchPolicy, queue_capacity: usize, workers: usize) -> ServerConfig {
        ServerConfig {
            policy,
            queue_capacity,
            workers,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serves_bit_identical_results() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_deadline(Duration::from_millis(2)), 64, 2),
        )
        .unwrap();
        let inputs = images(24);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 24);
        assert_eq!(metrics.failed, 0);
        assert!(metrics.total_ops.compute_ops() > 0);
        assert!(metrics.energy_pj > 0.0);
    }

    #[test]
    fn lifecycle_spans_cover_admit_to_reply_and_stay_bit_identical() {
        let net = build_untrained();
        let mut cfg = config(BatchPolicy::by_deadline(Duration::from_millis(2)), 64, 2);
        cfg.telemetry = cdl_telemetry::TelemetryConfig::enabled();
        let server = Server::start(Arc::clone(&net), cfg).unwrap();
        let telemetry = server.telemetry().clone();
        let inputs = images(8);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        let traces: Vec<TraceId> = pendings
            .iter()
            .map(|p| p.trace().expect("sampling at 1.0 records every request"))
            .collect();
        // tracing must not perturb results
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        server.shutdown();
        let events = telemetry.drain();
        for trace in traces {
            let mine: Vec<&cdl_telemetry::SpanEvent> =
                events.iter().filter(|e| e.trace == trace).collect();
            for kind in [
                EventKind::Admit,
                EventKind::Enqueue,
                EventKind::BatchSeal,
                EventKind::Dispatch,
                EventKind::Stage(0),
                EventKind::Reply,
            ] {
                assert!(
                    mine.iter().any(|e| e.kind == kind),
                    "{trace} missing {kind:?}"
                );
            }
            assert!(
                mine.iter().any(|e| matches!(e.kind, EventKind::Exit(_))),
                "{trace} missing Exit"
            );
            // drain() sorts by timestamp; the lifecycle must come back in
            // causal order
            let order: Vec<&EventKind> = mine.iter().map(|e| &e.kind).collect();
            let pos = |k: &EventKind| order.iter().position(|x| *x == k).unwrap();
            assert!(pos(&EventKind::Admit) < pos(&EventKind::BatchSeal));
            assert!(pos(&EventKind::BatchSeal) < pos(&EventKind::Dispatch));
            assert!(pos(&EventKind::Dispatch) < pos(&EventKind::Reply));
        }
        assert_eq!(telemetry.dropped(), 0);
    }

    #[test]
    fn spans_off_means_no_trace_and_no_events() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_deadline(Duration::from_millis(2)), 64, 1),
        )
        .unwrap();
        let pending = server.submit(images(1).pop().unwrap()).unwrap();
        assert!(pending.trace().is_none(), "spans default off");
        pending.wait().unwrap();
        assert!(server.telemetry().drain().is_empty());
        server.shutdown();
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let net = build_untrained();
        // a size-bound batch that never fills: nothing completes, so the
        // 4-slot in-flight gate must fill deterministically
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 4, 1),
        )
        .unwrap();
        let inputs = images(4);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.try_submit(x.clone()).unwrap())
            .collect();
        assert_eq!(
            server.try_submit(inputs[0].clone()).unwrap_err(),
            ServeError::Full
        );
        let live = server.metrics();
        assert_eq!(live.queue_depth, 4);
        assert_eq!(live.rejected, 1);
        assert_eq!(live.completed, 0);
        // graceful shutdown flushes the partial batch and resolves everything
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 4);
        assert_eq!(metrics.batches_flushed, 1);
        assert_eq!(metrics.queue_depth, 0);
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
    }

    #[test]
    fn batcher_deadline_anchors_at_submission_not_dequeue() {
        // drive run_batcher directly with a request whose submission is
        // backdated past max_wait — the shape a busy batcher produces when
        // an opener sat in the submit channel behind earlier batches. It
        // must dispatch (nearly) immediately; a dequeue-anchored deadline
        // would silently grant it a second full max_wait.
        let gate = Arc::new(Gate::new(8, None));
        let recorder = Arc::new(Recorder::new(cdl_hw::EnergyModel::cmos_45nm()));
        let (tx, rx) = channel::<Request>();
        let (work_tx, work_rx) = channel::<Vec<Request>>();
        let policy = BatchPolicy::new(8, Duration::from_millis(100));
        let make = |submitted_at| {
            let (pending, fulfiller) = pending_pair(None);
            gate.acquire(Priority::High, None);
            let request = Request {
                input: Tensor::full(&[1, 1, 1], 0.0),
                overrides: ExitOverride {
                    delta: None,
                    max_stage: None,
                },
                fulfiller,
                ticket: Ticket {
                    gate: Arc::clone(&gate),
                    tenant: None,
                },
                submitted_at,
                expires_at: None,
                priority: Priority::High,
                tenant: None,
                trace: None,
            };
            (pending, request)
        };
        let backdated = Instant::now() - Duration::from_millis(250);
        let (_p1, r1) = make(backdated);
        tx.send(r1).unwrap();
        let batcher = {
            let recorder = Arc::clone(&recorder);
            std::thread::spawn(move || {
                run_batcher(rx, work_tx, policy, &recorder, &Telemetry::disabled())
            })
        };
        // budget already spent at dequeue → singleton batch, right away
        let batch = work_rx
            .recv_timeout(Duration::from_millis(50))
            .expect("expired opener must dispatch immediately");
        assert_eq!(batch.len(), 1);
        // a fresh opener still gets its full max_wait, measured from submit
        let (_p2, r2) = make(Instant::now());
        let sent = Instant::now();
        tx.send(r2).unwrap();
        let batch = work_rx
            .recv_timeout(Duration::from_millis(2000))
            .expect("fresh opener dispatches at its deadline");
        assert_eq!(batch.len(), 1);
        assert!(
            sent.elapsed() >= Duration::from_millis(90),
            "fresh opener dispatched before its max_wait elapsed"
        );
        drop(tx);
        batcher.join().unwrap();
    }

    #[test]
    fn deadline_forms_partial_batches() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::new(1000, Duration::from_millis(20)), 64, 1),
        )
        .unwrap();
        let inputs = images(3);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        // no shutdown needed: the deadline alone must dispatch the batch
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 3);
        assert!(metrics.batches_deadline >= 1);
        assert_eq!(metrics.batches_full, 0);
        let total_in_batches: u64 = metrics
            .batch_size_histogram
            .iter()
            .enumerate()
            .map(|(size, &n)| size as u64 * n)
            .sum();
        assert_eq!(total_in_batches, 3);
    }

    #[test]
    fn size_bound_batches_dispatch_exactly_full() {
        let net = build_untrained();
        let server =
            Server::start(Arc::clone(&net), config(BatchPolicy::by_size(4), 64, 2)).unwrap();
        let inputs = images(8);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 8);
        assert_eq!(metrics.batches_full, 2);
        assert_eq!(metrics.batch_size_histogram[4], 2);
        assert!((metrics.mean_batch_size - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_pendings_cancel_without_evaluation() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 8, 1),
        )
        .unwrap();
        for x in images(3) {
            drop(server.submit(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.cancelled, 3);
        assert_eq!(metrics.completed, 0);
        assert_eq!(metrics.batches, 0, "nothing must be evaluated");
        assert_eq!(metrics.total_ops.compute_ops(), 0);
        assert_eq!(metrics.queue_depth, 0, "tickets released on cancel");
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 16, 2),
        )
        .unwrap();
        let inputs = images(10);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        // none dispatched yet (size-bound batch can't fill) — shutdown must
        // still deliver every single one
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 10);
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
    }

    #[test]
    fn blocking_submit_rides_through_backpressure() {
        let net = build_untrained();
        // tiny queue + instant dispatch: submit must repeatedly block on the
        // gate and resume as the workers drain
        let server =
            Server::start(Arc::clone(&net), config(BatchPolicy::by_size(1), 2, 2)).unwrap();
        let inputs = images(20);
        let pendings: Vec<Pending> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (x, pending) in inputs.iter().zip(pendings) {
            assert_eq!(pending.wait().unwrap(), net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 20);
        assert_eq!(metrics.batch_size_histogram[1], 20);
    }

    #[test]
    fn concurrent_clients_interleave_arbitrarily() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::new(8, Duration::from_millis(1)), 128, 3),
        )
        .unwrap();
        let inputs = images(60);
        let outputs: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(20)
                .map(|chunk| {
                    let server = &server;
                    scope.spawn(move || {
                        let pendings: Vec<Pending> = chunk
                            .iter()
                            .map(|x| server.submit(x.clone()).unwrap())
                            .collect();
                        pendings
                            .into_iter()
                            .map(|p| p.wait().unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        for (x, out) in inputs.iter().zip(&outputs) {
            assert_eq!(*out, net.classify(x).unwrap());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 60);
    }

    /// Builds a Request directly (bypassing admission), for driving the
    /// pipeline stages in isolation.
    fn raw_request(
        gate: &Arc<Gate>,
        input: Tensor,
        expires_at: Option<Instant>,
    ) -> (Pending, Request) {
        let (pending, fulfiller) = pending_pair(None);
        gate.acquire(Priority::High, None);
        let request = Request {
            input,
            overrides: ExitOverride {
                delta: None,
                max_stage: None,
            },
            fulfiller,
            ticket: Ticket {
                gate: Arc::clone(gate),
                tenant: None,
            },
            submitted_at: Instant::now(),
            expires_at,
            priority: Priority::High,
            tenant: None,
            trace: None,
        };
        (pending, request)
    }

    #[test]
    fn expired_requests_settle_without_evaluation() {
        let net = build_untrained();
        // stalled batcher: requests sit in the forming batch until the
        // shutdown flush reaches the batch-formation shed point
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 8, 1),
        )
        .unwrap();
        let pendings: Vec<Pending> = images(3)
            .into_iter()
            .map(|x| {
                server
                    .submit_with(x, SubmitOptions::with_deadline(Duration::ZERO))
                    .unwrap()
            })
            .collect();
        let metrics = server.shutdown();
        for pending in pendings {
            assert_eq!(pending.wait().unwrap_err(), ServeError::Expired);
        }
        assert_eq!(metrics.expired, 3);
        assert_eq!(metrics.expired_by_class, [3, 0, 0]);
        assert_eq!(metrics.completed, 0);
        assert_eq!(metrics.failed, 0);
        assert_eq!(metrics.cancelled, 0);
        // the whole point: shedding spends zero evaluator ops
        assert_eq!(metrics.batches, 0, "nothing must be evaluated");
        assert_eq!(metrics.total_ops.compute_ops(), 0);
        assert_eq!(metrics.stages_activated, 0);
        assert!(metrics.latency.is_none(), "expired never enter latency");
        assert_eq!(metrics.queue_depth, 0, "tickets released on expiry");
    }

    #[test]
    fn dispatch_time_expiry_sheds_before_evaluation() {
        // drive process_batch directly: one request expired while the batch
        // sat in the work queue, one still live — only the live one may
        // reach the evaluator, and its result stays bit-identical
        let net = build_untrained();
        let gate = Arc::new(Gate::new(8, None));
        let recorder = Recorder::new(cdl_hw::EnergyModel::cmos_45nm());
        let mut eval = BatchEvaluator::with_kernel(&net, GemmKernel::detect());
        let img = images(2);
        let (p_expired, r_expired) = raw_request(
            &gate,
            img[0].clone(),
            Some(Instant::now() - Duration::from_millis(1)),
        );
        let (p_live, r_live) = raw_request(&gate, img[1].clone(), None);
        process_batch(
            &mut eval,
            vec![r_expired, r_live],
            &recorder,
            &Telemetry::disabled(),
        );
        assert_eq!(p_expired.wait().unwrap_err(), ServeError::Expired);
        let out = p_live.wait().unwrap();
        assert_eq!(out, net.classify(&img[1]).unwrap());
        let snap = recorder.snapshot(gate.depth());
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.completed, 1);
        // exactly one request's ops were spent
        assert_eq!(snap.total_ops, out.ops);
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn mid_batch_expiry_sheds_at_a_stage_boundary_with_partial_accounting() {
        // regression (pre-fix this fails): a request inside a *sealed*
        // batch whose deadline passes mid-flight used to ride the whole
        // cascade to a result nobody reads. Drive evaluate_group directly
        // with an already-expired member — bypassing the dispatch-time
        // check exactly as a deadline that lapses between dispatch and the
        // first stage boundary would — and require it to settle Expired
        // with *partial* (non-zero, sub-full) work on the ledger.
        let net = build_untrained();
        let gate = Arc::new(Gate::new(8, None));
        let recorder = Recorder::new(cdl_hw::EnergyModel::cmos_45nm());
        let mut eval = BatchEvaluator::with_kernel(&net, GemmKernel::detect());
        let img = images(2);
        let (p_doomed, r_doomed) = raw_request(
            &gate,
            img[0].clone(),
            Some(Instant::now() - Duration::from_millis(1)),
        );
        let (p_live, r_live) = raw_request(&gate, img[1].clone(), None);
        // δ → 1.0 keeps untrained images active through every stage, so
        // boundaries after stage 0 actually see the doomed request
        let overrides = ExitOverride::with_delta(0.999);
        evaluate_group(
            &mut eval,
            overrides,
            vec![r_doomed, r_live],
            &recorder,
            &Telemetry::disabled(),
        );
        assert_eq!(p_doomed.wait().unwrap_err(), ServeError::Expired);
        let out = p_live.wait().unwrap();
        assert_eq!(out, net.classify_with_override(&img[1], overrides).unwrap());
        let full_ops = out.ops.compute_ops();
        let snap = recorder.snapshot(gate.depth());
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.completed, 1);
        // the doomed request was shed at the boundary after stage 0: its
        // one stage of work is on the ledger (honest energy), but the
        // remaining cascade was never paid for
        let partial_ops = snap.total_ops.compute_ops() - full_ops;
        assert!(partial_ops > 0, "shed work must be charged");
        assert!(
            partial_ops < full_ops,
            "shed must not pay for the full cascade (partial {partial_ops} vs full {full_ops})"
        );
        assert!(
            snap.stages_activated > out.stages_activated,
            "the doomed request's stages count"
        );
        assert!(snap.latency.is_none() || snap.latency.unwrap().count == 1);
        assert_eq!(snap.queue_depth, 0, "tickets released on mid-batch shed");
    }

    #[test]
    fn reclaim_submit_returns_the_tensor_on_refusal() {
        let net = build_untrained();
        // capacity 1 + stalled batcher: the second submission must bounce
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 1, 1),
        )
        .unwrap();
        let img = images(1).pop().unwrap();
        let _held = server.try_submit(img.clone()).unwrap();
        // a Full refusal hands the exact tensor back — no clone needed to
        // retry (this is what the TCP edge's admission retry loop leans on)
        let (err, reclaimed) = server
            .try_submit_reclaim(img.clone(), SubmitOptions::default(), None)
            .unwrap_err();
        assert_eq!(err, ServeError::Full);
        let reclaimed = reclaimed.expect("refusal must return the tensor");
        assert_eq!(reclaimed.dims(), img.dims());
        assert_eq!(reclaimed.data(), img.data());
        // a bad-input refusal also reclaims
        let bad = Tensor::zeros(&[2, 2]);
        let (err, reclaimed) = server
            .try_submit_reclaim(bad, SubmitOptions::default(), None)
            .unwrap_err();
        assert!(matches!(err, ServeError::BadInput(_)));
        assert_eq!(reclaimed.expect("tensor survives").dims(), &[2, 2]);
        // metrics: exactly one capacity rejection was recorded
        let live = server.metrics();
        assert_eq!(live.rejected, 1);
        assert_eq!(live.submitted, 1);
        drop(_held);
        server.shutdown();
    }

    #[test]
    fn quota_isolates_tenants() {
        let net = build_untrained();
        let mut cfg = config(BatchPolicy::by_size(1 << 20), 8, 1);
        cfg.tenant_quota = Some(2);
        let server = Server::start(Arc::clone(&net), cfg).unwrap();
        let img = images(1).pop().unwrap();
        let opts = |t: u32| SubmitOptions::default().tenant(t);
        // tenant 1 fills its quota; the third submission is refused even
        // though the gate has plenty of room
        let _a = server.try_submit_with(img.clone(), opts(1)).unwrap();
        let _b = server.try_submit_with(img.clone(), opts(1)).unwrap();
        assert_eq!(
            server.try_submit_with(img.clone(), opts(1)).unwrap_err(),
            ServeError::QuotaExceeded(1)
        );
        // tenant 2 and untenanted traffic are unaffected
        let _c = server.try_submit_with(img.clone(), opts(2)).unwrap();
        let _d = server.try_submit_with(img.clone(), opts(2)).unwrap();
        let _e = server.try_submit(img.clone()).unwrap();
        let live = server.metrics();
        assert_eq!(live.submitted, 5);
        assert_eq!(live.shed, 1);
        assert_eq!(live.shed_by_tenant, vec![(1, 1)]);
        assert_eq!(live.rejected, 0);
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 5);
        // completions released the quota slots
        assert_eq!(metrics.queue_depth, 0);
    }

    #[test]
    fn lower_classes_shed_first_under_a_filling_gate() {
        let net = build_untrained();
        // stalled: nothing completes, so occupancy only ever grows.
        // capacity 6 → admission limits: high 6, normal 4, low 2.
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_size(1 << 20), 6, 1),
        )
        .unwrap();
        let img = images(1).pop().unwrap();
        let opts = |p: Priority| SubmitOptions::default().priority(p);
        let mut held = Vec::new();
        held.push(
            server
                .try_submit_with(img.clone(), opts(Priority::Low))
                .unwrap(),
        );
        held.push(
            server
                .try_submit_with(img.clone(), opts(Priority::Low))
                .unwrap(),
        );
        assert_eq!(
            server
                .try_submit_with(img.clone(), opts(Priority::Low))
                .unwrap_err(),
            ServeError::Shed(Priority::Low)
        );
        held.push(
            server
                .try_submit_with(img.clone(), opts(Priority::Normal))
                .unwrap(),
        );
        held.push(
            server
                .try_submit_with(img.clone(), opts(Priority::Normal))
                .unwrap(),
        );
        assert_eq!(
            server
                .try_submit_with(img.clone(), opts(Priority::Normal))
                .unwrap_err(),
            ServeError::Shed(Priority::Normal)
        );
        held.push(
            server
                .try_submit_with(img.clone(), opts(Priority::High))
                .unwrap(),
        );
        held.push(
            server
                .try_submit_with(img.clone(), opts(Priority::High))
                .unwrap(),
        );
        // the highest class sees plain capacity backpressure, never Shed
        assert_eq!(
            server
                .try_submit_with(img.clone(), opts(Priority::High))
                .unwrap_err(),
            ServeError::Full
        );
        let live = server.metrics();
        assert_eq!(live.queue_depth, 6);
        assert_eq!(live.shed, 2);
        assert_eq!(live.shed_by_class, [0, 1, 1]);
        assert_eq!(live.rejected, 1);
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 6);
    }

    #[test]
    fn bad_shape_inputs_rejected_at_admission() {
        let net = build_untrained();
        let server = Server::start(
            Arc::clone(&net),
            config(BatchPolicy::by_deadline(Duration::from_millis(2)), 8, 1),
        )
        .unwrap();
        let bad = Tensor::full(&[2, 2], 0.5);
        assert!(matches!(
            server.submit(bad.clone()).unwrap_err(),
            ServeError::BadInput(_)
        ));
        assert!(matches!(
            server.try_submit(bad).unwrap_err(),
            ServeError::BadInput(_)
        ));
        let metrics = server.shutdown();
        assert_eq!(metrics.submitted, 0, "never admitted");
        assert_eq!(metrics.queue_depth, 0, "no gate slot leaked");
    }

    #[test]
    fn group_eval_error_fails_only_the_offending_request() {
        // defence in depth behind admission validation: force a poisoned
        // group (one wrong-shaped input bypassing admission) through
        // process_batch — the per-request fallback must fail only the bad
        // request and deliver bit-identical results to its neighbours
        let net = build_untrained();
        let gate = Arc::new(Gate::new(8, None));
        let recorder = Recorder::new(cdl_hw::EnergyModel::cmos_45nm());
        let mut eval = BatchEvaluator::with_kernel(&net, GemmKernel::detect());
        let good = images(2);
        let (p_good1, r_good1) = raw_request(&gate, good[0].clone(), None);
        let (p_bad, r_bad) = raw_request(&gate, Tensor::full(&[2, 2], 0.5), None);
        let (p_good2, r_good2) = raw_request(&gate, good[1].clone(), None);
        process_batch(
            &mut eval,
            vec![r_good1, r_bad, r_good2],
            &recorder,
            &Telemetry::disabled(),
        );
        assert_eq!(p_good1.wait().unwrap(), net.classify(&good[0]).unwrap());
        assert_eq!(p_good2.wait().unwrap(), net.classify(&good[1]).unwrap());
        assert!(matches!(p_bad.wait().unwrap_err(), ServeError::Eval(_)));
        let snap = recorder.snapshot(gate.depth());
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn start_validates_config() {
        let net = build_untrained();
        let bad = config(BatchPolicy::by_size(0), 8, 1);
        assert!(matches!(
            Server::start(Arc::clone(&net), bad),
            Err(ServeError::BadConfig(_))
        ));
        let bad = config(BatchPolicy::default(), 8, 0);
        assert!(Server::start(net, bad).is_err());
    }
}
