//! One-shot response handles: the future-like half a caller holds while the
//! server works on its request.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cdl_core::network::CdlOutput;
use cdl_telemetry::TraceId;

use crate::error::{ServeError, ServeResult};

/// Lifecycle of one request's response slot.
#[derive(Debug)]
enum SlotState {
    /// Submitted, not yet evaluated.
    Waiting,
    /// Result available, not yet claimed by the waiter.
    Done(ServeResult<CdlOutput>),
    /// The caller dropped its [`Pending`] before the result arrived; the
    /// pipeline will skip evaluating this request.
    Cancelled,
    /// Result handed to the waiter.
    Claimed,
}

/// The shared slot between one [`Pending`] and one [`Fulfiller`].
#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// Creates a connected response pair: the caller keeps the [`Pending`], the
/// server pipeline carries the [`Fulfiller`] alongside the input tensor.
/// `trace` is the request's sampled telemetry trace id, if any — surfaced
/// on [`Pending::trace`] so callers can correlate their handle with the
/// drained span events.
pub(crate) fn pending_pair(trace: Option<TraceId>) -> (Pending, Fulfiller) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Waiting),
        ready: Condvar::new(),
    });
    (
        Pending {
            slot: Arc::clone(&slot),
            trace,
        },
        Fulfiller {
            slot,
            settled: false,
        },
    )
}

/// A pending classification: a one-shot, future-like handle to the
/// [`cdl_core::network::CdlOutput`] the server will produce.
///
/// Dropping a `Pending` before the result arrives **cancels** the request:
/// the batcher/workers skip it without spending any evaluator operations on
/// it (it is counted in [`crate::ServerMetrics::cancelled`]).
#[derive(Debug)]
pub struct Pending {
    slot: Arc<Slot>,
    trace: Option<TraceId>,
}

impl Pending {
    /// `true` once the result is available ([`Pending::wait`] will not
    /// block).
    pub fn is_ready(&self) -> bool {
        matches!(*self.slot.state.lock().unwrap(), SlotState::Done(_))
    }

    /// The telemetry trace id this request is being recorded under —
    /// `Some` only when the server's [`cdl_telemetry::TelemetryConfig`]
    /// has spans on and this request fell inside the sample. Use it to
    /// pick this request's events out of a [`cdl_telemetry::Telemetry`]
    /// drain.
    pub fn trace(&self) -> Option<TraceId> {
        self.trace
    }

    /// Blocks until the server produced this request's result.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Eval`] when the evaluator failed on the batch
    /// containing this request, [`ServeError::Disconnected`] when the
    /// pipeline dropped it without evaluating.
    pub fn wait(self) -> ServeResult<CdlOutput> {
        let mut state = self.slot.state.lock().unwrap();
        while matches!(*state, SlotState::Waiting) {
            state = self.slot.ready.wait(state).unwrap();
        }
        match std::mem::replace(&mut *state, SlotState::Claimed) {
            SlotState::Done(result) => result,
            other => unreachable!("pending woke in non-terminal state {other:?}"),
        }
    }

    /// Like [`Pending::wait`] with a timeout: `Ok(result)` when the result
    /// arrived in time, `Err(self)` (the handle back, still live) when it
    /// did not.
    ///
    /// # Errors
    ///
    /// Returns the handle itself on timeout so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResult<CdlOutput>, Pending> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.slot.state.lock().unwrap();
        while matches!(*state, SlotState::Waiting) {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                drop(state);
                return Err(self);
            };
            let (guard, timed_out) = self.slot.ready.wait_timeout(state, remaining).unwrap();
            state = guard;
            if timed_out.timed_out() && matches!(*state, SlotState::Waiting) {
                drop(state);
                return Err(self);
            }
        }
        match std::mem::replace(&mut *state, SlotState::Claimed) {
            SlotState::Done(result) => Ok(result),
            other => unreachable!("pending woke in non-terminal state {other:?}"),
        }
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        let mut state = self.slot.state.lock().unwrap();
        if matches!(*state, SlotState::Waiting) {
            *state = SlotState::Cancelled;
        }
    }
}

/// The pipeline's half of a response pair. Settling it exactly once (or
/// dropping it, which settles with [`ServeError::Disconnected`]) guarantees
/// no [`Pending`] waits forever.
#[derive(Debug)]
pub(crate) struct Fulfiller {
    slot: Arc<Slot>,
    settled: bool,
}

impl Fulfiller {
    /// `true` when the caller dropped its handle: skip evaluation.
    pub(crate) fn is_cancelled(&self) -> bool {
        matches!(*self.slot.state.lock().unwrap(), SlotState::Cancelled)
    }

    /// Delivers the result (ignored if the caller cancelled meanwhile) and
    /// wakes the waiter.
    pub(crate) fn settle(mut self, result: ServeResult<CdlOutput>) {
        self.settle_inner(result);
    }

    fn settle_inner(&mut self, result: ServeResult<CdlOutput>) {
        if self.settled {
            return;
        }
        self.settled = true;
        let mut state = self.slot.state.lock().unwrap();
        if matches!(*state, SlotState::Waiting) {
            *state = SlotState::Done(result);
            self.slot.ready.notify_all();
        }
    }
}

impl Drop for Fulfiller {
    fn drop(&mut self) {
        self.settle_inner(Err(ServeError::Disconnected));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdl_hw::OpCount;

    fn output(label: usize) -> CdlOutput {
        CdlOutput {
            label,
            exit_stage: 0,
            confidence: 1.0,
            ops: OpCount::ZERO,
            stages_activated: 1,
            exited_early: true,
        }
    }

    #[test]
    fn settle_then_wait() {
        let (pending, fulfiller) = pending_pair(None);
        assert!(!pending.is_ready());
        fulfiller.settle(Ok(output(3)));
        assert!(pending.is_ready());
        assert_eq!(pending.wait().unwrap().label, 3);
    }

    #[test]
    fn wait_blocks_until_settled_from_another_thread() {
        let (pending, fulfiller) = pending_pair(None);
        let handle = std::thread::spawn(move || pending.wait());
        std::thread::sleep(Duration::from_millis(10));
        fulfiller.settle(Ok(output(7)));
        assert_eq!(handle.join().unwrap().unwrap().label, 7);
    }

    #[test]
    fn wait_timeout_returns_handle_then_result() {
        let (pending, fulfiller) = pending_pair(None);
        let pending = pending
            .wait_timeout(Duration::from_millis(5))
            .expect_err("not settled yet");
        fulfiller.settle(Ok(output(1)));
        let result = pending
            .wait_timeout(Duration::from_millis(5))
            .expect("settled");
        assert_eq!(result.unwrap().label, 1);
    }

    #[test]
    fn dropping_pending_cancels() {
        let (pending, fulfiller) = pending_pair(None);
        assert!(!fulfiller.is_cancelled());
        drop(pending);
        assert!(fulfiller.is_cancelled());
        // settling a cancelled slot is a quiet no-op
        fulfiller.settle(Ok(output(0)));
    }

    #[test]
    fn dropping_fulfiller_disconnects_waiter() {
        let (pending, fulfiller) = pending_pair(None);
        drop(fulfiller);
        assert_eq!(pending.wait(), Err(ServeError::Disconnected));
    }
}
