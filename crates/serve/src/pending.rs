//! One-shot response handles: the future-like half a caller holds while the
//! server works on its request.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use cdl_core::network::CdlOutput;
use cdl_telemetry::TraceId;

use crate::error::{ServeError, ServeResult};

/// Lifecycle of one request's response slot.
#[derive(Debug)]
enum SlotState {
    /// Submitted, not yet evaluated.
    Waiting,
    /// Result available, not yet claimed by the waiter.
    Done(ServeResult<CdlOutput>),
    /// The caller dropped its [`Pending`] before the result arrived; the
    /// pipeline will skip evaluating this request.
    Cancelled,
    /// Result handed to the waiter.
    Claimed,
}

/// One-shot settle notification: registered by a readiness-driven waiter
/// (the TCP edge's pollers), invoked by whichever thread settles the slot.
type WakeFn = Box<dyn FnOnce() + Send>;

/// State guarded by the slot's mutex: the lifecycle plus the optional
/// waker, kept under one lock so a waker registration can never race a
/// settle into a missed wake.
struct SlotInner {
    state: SlotState,
    waker: Option<WakeFn>,
}

impl std::fmt::Debug for SlotInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotInner")
            .field("state", &self.state)
            .field("waker", &self.waker.is_some())
            .finish()
    }
}

/// The shared slot between one [`Pending`] and one [`Fulfiller`].
#[derive(Debug)]
struct Slot {
    inner: Mutex<SlotInner>,
    ready: Condvar,
}

/// Creates a connected response pair: the caller keeps the [`Pending`], the
/// server pipeline carries the [`Fulfiller`] alongside the input tensor.
/// `trace` is the request's sampled telemetry trace id, if any — surfaced
/// on [`Pending::trace`] so callers can correlate their handle with the
/// drained span events.
pub(crate) fn pending_pair(trace: Option<TraceId>) -> (Pending, Fulfiller) {
    let slot = Arc::new(Slot {
        inner: Mutex::new(SlotInner {
            state: SlotState::Waiting,
            waker: None,
        }),
        ready: Condvar::new(),
    });
    (
        Pending {
            slot: Arc::clone(&slot),
            trace,
        },
        Fulfiller {
            slot,
            settled: false,
        },
    )
}

/// A pending classification: a one-shot, future-like handle to the
/// [`cdl_core::network::CdlOutput`] the server will produce.
///
/// Dropping a `Pending` before the result arrives **cancels** the request:
/// the batcher/workers skip it without spending any evaluator operations on
/// it (it is counted in [`crate::ServerMetrics::cancelled`]).
#[derive(Debug)]
pub struct Pending {
    slot: Arc<Slot>,
    trace: Option<TraceId>,
}

impl Pending {
    /// `true` once the result is available ([`Pending::wait`] will not
    /// block).
    pub fn is_ready(&self) -> bool {
        matches!(self.slot.inner.lock().unwrap().state, SlotState::Done(_))
    }

    /// The telemetry trace id this request is being recorded under —
    /// `Some` only when the server's [`cdl_telemetry::TelemetryConfig`]
    /// has spans on and this request fell inside the sample. Use it to
    /// pick this request's events out of a [`cdl_telemetry::Telemetry`]
    /// drain.
    pub fn trace(&self) -> Option<TraceId> {
        self.trace
    }

    /// Registers a one-shot callback fired when the slot settles (result
    /// delivered or the pipeline dropped the request). Fired **at most
    /// once**, from whichever thread settles, outside the slot's lock; if
    /// the slot is already settled it fires immediately on this thread.
    /// A later registration replaces an unfired earlier one.
    ///
    /// This is the readiness hook the event-loop edge uses: the callback
    /// enqueues a completion and wakes the owning poller, replacing the
    /// old model of a writer thread parked in [`Pending::wait_timeout`].
    pub(crate) fn set_waker(&self, wake: impl FnOnce() + Send + 'static) {
        let mut inner = self.slot.inner.lock().unwrap();
        match inner.state {
            SlotState::Waiting => inner.waker = Some(Box::new(wake)),
            SlotState::Done(_) => {
                inner.waker = None;
                drop(inner);
                wake();
            }
            // cancelled or claimed: no result will arrive / it was already
            // taken — nothing to wake for
            SlotState::Cancelled | SlotState::Claimed => {}
        }
    }

    /// Non-blocking claim: takes the result if the slot has settled,
    /// `None` if it is still pending. After a `Some`, the handle is spent
    /// (drop it; [`Pending::wait`] may no longer be called).
    pub(crate) fn try_claim(&self) -> Option<ServeResult<CdlOutput>> {
        let mut inner = self.slot.inner.lock().unwrap();
        if matches!(inner.state, SlotState::Done(_)) {
            match std::mem::replace(&mut inner.state, SlotState::Claimed) {
                SlotState::Done(result) => Some(result),
                _ => unreachable!("state checked Done under the same lock"),
            }
        } else {
            None
        }
    }

    /// Blocks until the server produced this request's result.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Eval`] when the evaluator failed on the batch
    /// containing this request, [`ServeError::Disconnected`] when the
    /// pipeline dropped it without evaluating.
    pub fn wait(self) -> ServeResult<CdlOutput> {
        let mut inner = self.slot.inner.lock().unwrap();
        while matches!(inner.state, SlotState::Waiting) {
            inner = self.slot.ready.wait(inner).unwrap();
        }
        match std::mem::replace(&mut inner.state, SlotState::Claimed) {
            SlotState::Done(result) => result,
            other => unreachable!("pending woke in non-terminal state {other:?}"),
        }
    }

    /// Like [`Pending::wait`] with a timeout: `Ok(result)` when the result
    /// arrived in time, `Err(self)` (the handle back, still live) when it
    /// did not.
    ///
    /// # Errors
    ///
    /// Returns the handle itself on timeout so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResult<CdlOutput>, Pending> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.slot.inner.lock().unwrap();
        while matches!(inner.state, SlotState::Waiting) {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                drop(inner);
                return Err(self);
            };
            let (guard, timed_out) = self.slot.ready.wait_timeout(inner, remaining).unwrap();
            inner = guard;
            if timed_out.timed_out() && matches!(inner.state, SlotState::Waiting) {
                drop(inner);
                return Err(self);
            }
        }
        match std::mem::replace(&mut inner.state, SlotState::Claimed) {
            SlotState::Done(result) => Ok(result),
            other => unreachable!("pending woke in non-terminal state {other:?}"),
        }
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        let mut inner = self.slot.inner.lock().unwrap();
        if matches!(inner.state, SlotState::Waiting) {
            inner.state = SlotState::Cancelled;
        }
        // a registered waker can never fire after the handle is gone;
        // take it under the lock and drop its captures outside
        let waker = inner.waker.take();
        drop(inner);
        drop(waker);
    }
}

/// The pipeline's half of a response pair. Settling it exactly once (or
/// dropping it, which settles with [`ServeError::Disconnected`]) guarantees
/// no [`Pending`] waits forever.
#[derive(Debug)]
pub(crate) struct Fulfiller {
    slot: Arc<Slot>,
    settled: bool,
}

impl Fulfiller {
    /// `true` when the caller dropped its handle: skip evaluation.
    pub(crate) fn is_cancelled(&self) -> bool {
        matches!(self.slot.inner.lock().unwrap().state, SlotState::Cancelled)
    }

    /// Delivers the result (ignored if the caller cancelled meanwhile) and
    /// wakes the waiter.
    pub(crate) fn settle(mut self, result: ServeResult<CdlOutput>) {
        self.settle_inner(result);
    }

    fn settle_inner(&mut self, result: ServeResult<CdlOutput>) {
        if self.settled {
            return;
        }
        self.settled = true;
        let mut inner = self.slot.inner.lock().unwrap();
        let waker = if matches!(inner.state, SlotState::Waiting) {
            inner.state = SlotState::Done(result);
            self.slot.ready.notify_all();
            inner.waker.take()
        } else {
            None
        };
        drop(inner);
        // fire outside the lock: the waker may grab poller-side locks of
        // its own, and must never deadlock against a concurrent wait()
        if let Some(wake) = waker {
            wake();
        }
    }
}

impl Drop for Fulfiller {
    fn drop(&mut self) {
        self.settle_inner(Err(ServeError::Disconnected));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdl_hw::OpCount;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn output(label: usize) -> CdlOutput {
        CdlOutput {
            label,
            exit_stage: 0,
            confidence: 1.0,
            ops: OpCount::ZERO,
            stages_activated: 1,
            exited_early: true,
        }
    }

    #[test]
    fn settle_then_wait() {
        let (pending, fulfiller) = pending_pair(None);
        assert!(!pending.is_ready());
        fulfiller.settle(Ok(output(3)));
        assert!(pending.is_ready());
        assert_eq!(pending.wait().unwrap().label, 3);
    }

    #[test]
    fn wait_blocks_until_settled_from_another_thread() {
        let (pending, fulfiller) = pending_pair(None);
        let handle = std::thread::spawn(move || pending.wait());
        std::thread::sleep(Duration::from_millis(10));
        fulfiller.settle(Ok(output(7)));
        assert_eq!(handle.join().unwrap().unwrap().label, 7);
    }

    #[test]
    fn wait_timeout_returns_handle_then_result() {
        let (pending, fulfiller) = pending_pair(None);
        let pending = pending
            .wait_timeout(Duration::from_millis(5))
            .expect_err("not settled yet");
        fulfiller.settle(Ok(output(1)));
        let result = pending
            .wait_timeout(Duration::from_millis(5))
            .expect("settled");
        assert_eq!(result.unwrap().label, 1);
    }

    #[test]
    fn dropping_pending_cancels() {
        let (pending, fulfiller) = pending_pair(None);
        assert!(!fulfiller.is_cancelled());
        drop(pending);
        assert!(fulfiller.is_cancelled());
        // settling a cancelled slot is a quiet no-op
        fulfiller.settle(Ok(output(0)));
    }

    #[test]
    fn dropping_fulfiller_disconnects_waiter() {
        let (pending, fulfiller) = pending_pair(None);
        drop(fulfiller);
        assert_eq!(pending.wait(), Err(ServeError::Disconnected));
    }

    #[test]
    fn waker_fires_once_on_settle_and_result_is_claimable() {
        let fired = Arc::new(AtomicUsize::new(0));
        let (pending, fulfiller) = pending_pair(None);
        let f = Arc::clone(&fired);
        pending.set_waker(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert!(pending.try_claim().is_none(), "nothing to claim yet");
        fulfiller.settle(Ok(output(5)));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(pending.try_claim().unwrap().unwrap().label, 5);
        assert!(pending.try_claim().is_none(), "one-shot claim");
    }

    #[test]
    fn waker_set_after_settle_fires_immediately() {
        let fired = Arc::new(AtomicUsize::new(0));
        let (pending, fulfiller) = pending_pair(None);
        fulfiller.settle(Ok(output(2)));
        let f = Arc::clone(&fired);
        pending.set_waker(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(pending.try_claim().unwrap().unwrap().label, 2);
    }

    #[test]
    fn waker_fires_when_fulfiller_is_dropped() {
        let fired = Arc::new(AtomicUsize::new(0));
        let (pending, fulfiller) = pending_pair(None);
        let f = Arc::clone(&fired);
        pending.set_waker(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        drop(fulfiller);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(pending.try_claim().unwrap(), Err(ServeError::Disconnected));
    }

    #[test]
    fn cancelling_discards_the_waker_silently() {
        let fired = Arc::new(AtomicUsize::new(0));
        let (pending, fulfiller) = pending_pair(None);
        let f = Arc::clone(&fired);
        pending.set_waker(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        drop(pending); // cancel: discards the waker without firing
        fulfiller.settle(Ok(output(9)));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }
}
