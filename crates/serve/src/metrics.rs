//! Server observability: counters, batch-size/exit histograms, latency
//! percentiles and cumulative op/energy accounting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cdl_hw::{EnergyModel, OpCount};

use crate::config::PlacementPolicy;

/// Completed-request latencies retained for percentile estimation:
/// **exactly the most recent 65 536 completions** (a fixed-size ring
/// buffer), so a long-running server stays at O(1) memory and snapshot
/// cost. Once the ring is full, every new completion **evicts the oldest
/// retained sample**, so [`LatencyStats::p50`]/[`LatencyStats::p99`]
/// describe only the trailing window; `min`/`mean`/`max`/`count` are exact
/// lifetime accumulators regardless of the window.
pub const LATENCY_WINDOW: usize = 65_536;

/// Latency distribution over completed requests (submit → result).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Completed requests over the server's lifetime.
    pub count: u64,
    /// Fastest request (lifetime).
    pub min: Duration,
    /// Arithmetic mean (lifetime).
    pub mean: Duration,
    /// Median over the most recent [`LATENCY_WINDOW`] completions.
    pub p50: Duration,
    /// 99th percentile over the most recent [`LATENCY_WINDOW`] completions.
    pub p99: Duration,
    /// Slowest request (lifetime).
    pub max: Duration,
}

/// Why the batcher dispatched a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchCause {
    /// `max_batch_size` reached.
    Full,
    /// `max_wait` elapsed since the batch's first request.
    Deadline,
    /// Shutdown flushed a partially formed batch.
    Flush,
}

/// A point-in-time snapshot of a [`crate::Server`]'s counters.
///
/// Obtained from [`crate::Server::metrics`] (live) or returned by
/// [`crate::Server::shutdown`] (final). `Display` renders a compact
/// multi-line report.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Wall-clock since the server started.
    pub elapsed: Duration,
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// `try_submit` calls bounced with [`crate::ServeError::Full`].
    pub rejected: u64,
    /// Requests evaluated and delivered.
    pub completed: u64,
    /// Requests whose [`crate::Pending`] was dropped before evaluation.
    pub cancelled: u64,
    /// Requests that failed (evaluator error / pipeline teardown).
    pub failed: u64,
    /// Admitted requests not yet completed/cancelled/failed.
    pub queue_depth: usize,
    /// Batches evaluated (batches whose live requests were all cancelled
    /// are not counted — nothing was evaluated). A dispatched batch whose
    /// requests carry `k` distinct [`crate::SubmitOptions`] overrides is
    /// evaluated as `k` policy-uniform sub-batches and counted `k` times
    /// here (the `batches_full`/`batches_deadline`/`batches_flushed`
    /// dispatch counters still count it once).
    pub batches: u64,
    /// Batches dispatched because they were full.
    pub batches_full: u64,
    /// Batches dispatched by the `max_wait` deadline.
    pub batches_deadline: u64,
    /// Partial batches flushed by shutdown.
    pub batches_flushed: u64,
    /// `batch_size_histogram[s]` = evaluated batches of size `s` (after
    /// cancellation pruning and override grouping — see
    /// [`ServerMetrics::batches`]).
    pub batch_size_histogram: Vec<u64>,
    /// Mean evaluated batch size.
    pub mean_batch_size: f64,
    /// Completed requests per second over the server's **active span** —
    /// the wall-clock between its first and its last completion — so a
    /// server that sat idle before its first request or after its last one
    /// (e.g. a long pre-drain tail) is not understated. When the span is
    /// degenerate (zero completions, or every completion at one instant,
    /// as with a single completed request) the rate falls back to
    /// completions per second of total uptime.
    pub throughput_rps: f64,
    /// Submit→result latency distribution (`None` until something
    /// completed).
    pub latency: Option<LatencyStats>,
    /// `exit_histogram[i]` = completed requests that exited at stage `i`
    /// (last slot = final output layer).
    pub exit_histogram: Vec<u64>,
    /// Cumulative operations of every completed request.
    pub total_ops: OpCount,
    /// Cumulative hardware stages activated by completed requests.
    pub stages_activated: u64,
    /// Cumulative energy of completed requests under the server's
    /// [`EnergyModel`], picojoules.
    pub energy_pj: f64,
}

impl fmt::Display for ServerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "uptime {:.3}s — {} submitted, {} completed ({:.0} req/s), \
             {} cancelled, {} failed, {} rejected, queue depth {}",
            self.elapsed.as_secs_f64(),
            self.submitted,
            self.completed,
            self.throughput_rps,
            self.cancelled,
            self.failed,
            self.rejected,
            self.queue_depth,
        )?;
        writeln!(
            f,
            "batches: {} evaluated (mean size {:.1}; dispatched {} full / {} deadline / {} flush)",
            self.batches,
            self.mean_batch_size,
            self.batches_full,
            self.batches_deadline,
            self.batches_flushed,
        )?;
        let hist: Vec<String> = self
            .batch_size_histogram
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(size, n)| format!("{size}x{n}"))
            .collect();
        writeln!(f, "batch sizes (size x count): {}", hist.join(" "))?;
        if let Some(lat) = &self.latency {
            writeln!(
                f,
                "latency: min {:?} / mean {:?} / p50 {:?} / p99 {:?} / max {:?}",
                lat.min, lat.mean, lat.p50, lat.p99, lat.max,
            )?;
        }
        let exits: Vec<String> = self
            .exit_histogram
            .iter()
            .enumerate()
            .map(|(stage, &n)| format!("stage{stage}:{n}"))
            .collect();
        writeln!(f, "exits: {}", exits.join(" "))?;
        write!(
            f,
            "work: {} compute ops, {} stages activated, {:.2} µJ total ({:.1} nJ/request)",
            self.total_ops.compute_ops(),
            self.stages_activated,
            self.energy_pj / 1e6,
            if self.completed > 0 {
                self.energy_pj / 1e3 / self.completed as f64
            } else {
                0.0
            },
        )
    }
}

/// One replica's slice of a [`ShardMetrics`] snapshot.
#[derive(Debug, Clone)]
pub struct ReplicaMetrics {
    /// Requests the router placed on this replica — counted at the router
    /// front-end *before* the replica's own admission (and rolled back if
    /// admission fails), independently of the replica's `submitted`
    /// counter. A concurrent snapshot may therefore transiently observe
    /// `routed > metrics.submitted` (a placement in flight), but **never**
    /// `metrics.submitted > routed`; in any settled snapshot the two are
    /// equal — a cross-check that nothing was mis-placed or dropped.
    pub routed: u64,
    /// The replica's own [`ServerMetrics`] snapshot.
    pub metrics: ServerMetrics,
}

/// One model's slice of a [`RouterMetrics`] snapshot: the placement policy
/// plus every replica's [`ReplicaMetrics`], with rollup accessors summing
/// over the replica set.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// The model name the replica set was registered under.
    pub model: String,
    /// The admission-time placement policy choosing among the replicas.
    pub placement: PlacementPolicy,
    /// Per-replica metrics, in replica-index order.
    pub replicas: Vec<ReplicaMetrics>,
}

impl ShardMetrics {
    /// Total requests the router routed to this model (sum over replicas).
    pub fn routed(&self) -> u64 {
        self.replicas.iter().map(|r| r.routed).sum()
    }

    /// Requests placed per replica, in replica-index order — the placement
    /// histogram showing how the policy spread this model's admissions.
    pub fn placement_histogram(&self) -> Vec<u64> {
        self.replicas.iter().map(|r| r.routed).collect()
    }

    /// Total requests admitted across this model's replicas.
    pub fn submitted(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.submitted).sum()
    }

    /// Total `try_submit` rejections across this model's replicas.
    pub fn rejected(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.rejected).sum()
    }

    /// Total requests evaluated and delivered across this model's replicas.
    pub fn completed(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.completed).sum()
    }

    /// Total requests cancelled across this model's replicas.
    pub fn cancelled(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.cancelled).sum()
    }

    /// Total requests failed across this model's replicas.
    pub fn failed(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.failed).sum()
    }

    /// Total in-flight requests across this model's replicas — the live
    /// queue depth the `LeastLoaded`/`PowerOfTwoChoices` policies balance.
    pub fn queue_depth(&self) -> usize {
        self.replicas.iter().map(|r| r.metrics.queue_depth).sum()
    }

    /// Total batches evaluated across this model's replicas.
    pub fn batches(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.batches).sum()
    }

    /// Element-wise sum of the replicas' exit histograms.
    pub fn exit_histogram(&self) -> Vec<u64> {
        sum_exit_histograms(self.replicas.iter().map(|r| &r.metrics.exit_histogram))
    }

    /// Cumulative operations of every completed request across replicas.
    pub fn total_ops(&self) -> OpCount {
        self.replicas.iter().map(|r| r.metrics.total_ops).sum()
    }

    /// Cumulative hardware stages activated across replicas.
    pub fn stages_activated(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.metrics.stages_activated)
            .sum()
    }

    /// Cumulative energy across replicas, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.replicas.iter().map(|r| r.metrics.energy_pj).sum()
    }
}

/// Element-wise sum of exit histograms of possibly different depths.
fn sum_exit_histograms<'a>(histograms: impl Iterator<Item = &'a Vec<u64>> + Clone) -> Vec<u64> {
    let len = histograms.clone().map(|h| h.len()).max().unwrap_or(0);
    let mut total = vec![0u64; len];
    for histogram in histograms {
        for (slot, &n) in histogram.iter().enumerate() {
            total[slot] += n;
        }
    }
    total
}

/// A point-in-time snapshot across every shard of a [`crate::Router`]:
/// per-model breakdowns plus aggregate accessors (sums over shards).
///
/// Obtained from [`crate::Router::metrics`] (live) or returned by
/// [`crate::Router::shutdown`] (final). `Display` renders the aggregate
/// line followed by each shard's full report.
#[derive(Debug, Clone)]
pub struct RouterMetrics {
    /// Per-shard metrics, in model registration order ([`crate::ModelId`]
    /// index order).
    pub shards: Vec<ShardMetrics>,
}

impl RouterMetrics {
    /// Requests routed per model, in registration order — the routing
    /// histogram (each entry summed over that model's replicas; see
    /// [`ShardMetrics::placement_histogram`] for the per-replica split).
    pub fn routing_histogram(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.routed()).collect()
    }

    /// Per-model placement histograms, in registration order: entry `m` is
    /// [`ShardMetrics::placement_histogram`] of model `m` — how each
    /// model's placement policy spread its admissions across replicas.
    pub fn placement_histograms(&self) -> Vec<Vec<u64>> {
        self.shards
            .iter()
            .map(|s| s.placement_histogram())
            .collect()
    }

    /// Total requests admitted across all models and replicas.
    pub fn submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.submitted()).sum()
    }

    /// Total `try_submit` rejections across all models and replicas.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected()).sum()
    }

    /// Total requests evaluated and delivered across all models and
    /// replicas.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed()).sum()
    }

    /// Total requests cancelled across all models and replicas.
    pub fn cancelled(&self) -> u64 {
        self.shards.iter().map(|s| s.cancelled()).sum()
    }

    /// Total requests failed across all models and replicas.
    pub fn failed(&self) -> u64 {
        self.shards.iter().map(|s| s.failed()).sum()
    }

    /// Total in-flight requests across all models and replicas.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth()).sum()
    }

    /// Total batches evaluated across all models and replicas.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches()).sum()
    }

    /// Element-wise sum of the shards' exit histograms (index `i` =
    /// completed requests that exited at stage `i` on *any* model; models
    /// with fewer stages simply contribute nothing to the deeper slots).
    pub fn exit_histogram(&self) -> Vec<u64> {
        let per_shard: Vec<Vec<u64>> = self.shards.iter().map(|s| s.exit_histogram()).collect();
        sum_exit_histograms(per_shard.iter())
    }

    /// Cumulative operations of every completed request across all models
    /// and replicas.
    pub fn total_ops(&self) -> OpCount {
        self.shards.iter().map(|s| s.total_ops()).sum()
    }

    /// Cumulative hardware stages activated across all models and replicas.
    pub fn stages_activated(&self) -> u64 {
        self.shards.iter().map(|s| s.stages_activated()).sum()
    }

    /// Cumulative energy across all models and replicas, picojoules (each
    /// replica priced under its own [`EnergyModel`]).
    pub fn energy_pj(&self) -> f64 {
        self.shards.iter().map(|s| s.energy_pj()).sum()
    }
}

impl fmt::Display for RouterMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let histogram: Vec<String> = self
            .shards
            .iter()
            .map(|s| format!("{}:{}", s.model, s.routed()))
            .collect();
        writeln!(
            f,
            "router: {} models — {} routed ({}), {} completed, {} cancelled, \
             {} failed, {} rejected, {:.2} µJ total",
            self.shards.len(),
            self.submitted(),
            histogram.join(" "),
            self.completed(),
            self.cancelled(),
            self.failed(),
            self.rejected(),
            self.energy_pj() / 1e6,
        )?;
        for (i, shard) in self.shards.iter().enumerate() {
            let placement: Vec<String> = shard
                .placement_histogram()
                .iter()
                .map(|n| n.to_string())
                .collect();
            writeln!(
                f,
                "── shard {} · {} — {} replica(s), {} placement [{}] ──",
                i,
                shard.model,
                shard.replicas.len(),
                shard.placement,
                placement.join(" "),
            )?;
            for (r, replica) in shard.replicas.iter().enumerate() {
                writeln!(f, "· replica {} — routed {}", r, replica.routed)?;
                let last = i + 1 == self.shards.len() && r + 1 == shard.replicas.len();
                if last {
                    write!(f, "{}", replica.metrics)?;
                } else {
                    writeln!(f, "{}", replica.metrics)?;
                }
            }
        }
        Ok(())
    }
}

/// Mutable counters behind one mutex (updated per batch, so contention is
/// amortised over the batch size).
#[derive(Debug, Default)]
struct Counters {
    completed: u64,
    cancelled: u64,
    failed: u64,
    batches_full: u64,
    batches_deadline: u64,
    batches_flushed: u64,
    batch_sizes: Vec<u64>,
    latency_ring: Vec<u64>,
    latency_next: usize,
    latency_count: u64,
    latency_sum_ns: u64,
    latency_min_ns: u64,
    latency_max_ns: u64,
    exit_histogram: Vec<u64>,
    total_ops: OpCount,
    stages_activated: u64,
    /// When the first request completed — the start of the active span
    /// `throughput_rps` is computed over.
    first_completion: Option<Instant>,
    /// When the most recent request completed — the end of the active span.
    last_completion: Option<Instant>,
}

impl Counters {
    fn record_latency(&mut self, ns: u64) {
        self.latency_count += 1;
        self.latency_sum_ns += ns;
        self.latency_max_ns = self.latency_max_ns.max(ns);
        self.latency_min_ns = if self.latency_count == 1 {
            ns
        } else {
            self.latency_min_ns.min(ns)
        };
        if self.latency_ring.len() < LATENCY_WINDOW {
            self.latency_ring.push(ns);
        } else {
            self.latency_ring[self.latency_next] = ns;
            self.latency_next = (self.latency_next + 1) % LATENCY_WINDOW;
        }
    }

    fn latency_stats(&self) -> Option<LatencyStats> {
        if self.latency_count == 0 {
            return None;
        }
        let (p50, p99) = window_percentiles(&self.latency_ring);
        Some(LatencyStats {
            count: self.latency_count,
            min: Duration::from_nanos(self.latency_min_ns),
            mean: Duration::from_nanos(self.latency_sum_ns / self.latency_count),
            p50,
            p99,
            max: Duration::from_nanos(self.latency_max_ns),
        })
    }
}

/// Shared metrics sink for the submit path, the batcher and the workers.
#[derive(Debug)]
pub(crate) struct Recorder {
    started: Instant,
    energy_model: EnergyModel,
    submitted: AtomicU64,
    rejected: AtomicU64,
    counters: Mutex<Counters>,
}

impl Recorder {
    pub(crate) fn new(energy_model: EnergyModel) -> Self {
        Recorder {
            started: Instant::now(),
            energy_model,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            counters: Mutex::new(Counters::default()),
        }
    }

    pub(crate) fn admitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls back an [`Recorder::admitted`] whose send never reached the
    /// pipeline (the request cannot complete, so counting it would leave
    /// `submitted` permanently short of reality the other way).
    pub(crate) fn unadmitted(&self) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dispatched(&self, cause: BatchCause) {
        let mut c = self.counters.lock().unwrap();
        match cause {
            BatchCause::Full => c.batches_full += 1,
            BatchCause::Deadline => c.batches_deadline += 1,
            BatchCause::Flush => c.batches_flushed += 1,
        }
    }

    pub(crate) fn cancelled(&self, n: u64) {
        if n > 0 {
            self.counters.lock().unwrap().cancelled += n;
        }
    }

    pub(crate) fn batch_failed(&self, n: u64) {
        self.counters.lock().unwrap().failed += n;
    }

    /// Records one evaluated batch: per-request latencies, exits and op
    /// accounting.
    pub(crate) fn batch_completed(
        &self,
        outputs: impl Iterator<Item = (Duration, cdl_core::network::CdlOutput)>,
    ) {
        let mut c = self.counters.lock().unwrap();
        let mut size = 0usize;
        for (latency, out) in outputs {
            size += 1;
            c.completed += 1;
            c.record_latency(latency.as_nanos() as u64);
            if c.exit_histogram.len() <= out.exit_stage {
                c.exit_histogram.resize(out.exit_stage + 1, 0);
            }
            c.exit_histogram[out.exit_stage] += 1;
            c.total_ops += out.ops;
            c.stages_activated += out.stages_activated;
        }
        if size > 0 {
            if c.batch_sizes.len() <= size {
                c.batch_sizes.resize(size + 1, 0);
            }
            c.batch_sizes[size] += 1;
            let now = Instant::now();
            c.first_completion.get_or_insert(now);
            c.last_completion = Some(now);
        }
    }

    /// Takes a consistent snapshot. `queue_depth` is sampled by the caller
    /// (it lives in the admission gate, not here).
    pub(crate) fn snapshot(&self, queue_depth: usize) -> ServerMetrics {
        let c = self.counters.lock().unwrap();
        let elapsed = self.started.elapsed();
        let batches: u64 = c.batch_sizes.iter().sum();
        let batched_requests: u64 = c
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(size, &n)| size as u64 * n)
            .sum();
        let latency = c.latency_stats();
        ServerMetrics {
            elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: c.completed,
            cancelled: c.cancelled,
            failed: c.failed,
            queue_depth,
            batches,
            batches_full: c.batches_full,
            batches_deadline: c.batches_deadline,
            batches_flushed: c.batches_flushed,
            batch_size_histogram: c.batch_sizes.clone(),
            mean_batch_size: if batches > 0 {
                batched_requests as f64 / batches as f64
            } else {
                0.0
            },
            throughput_rps: {
                // rate over the active span (first → last completion); a
                // degenerate span (nothing completed, or one instant) falls
                // back to total uptime — see the field docs
                let active = match (c.first_completion, c.last_completion) {
                    (Some(first), Some(last)) => last.saturating_duration_since(first),
                    _ => Duration::ZERO,
                };
                let span = if active > Duration::ZERO {
                    active
                } else {
                    elapsed
                };
                if c.completed > 0 && span > Duration::ZERO {
                    c.completed as f64 / span.as_secs_f64()
                } else {
                    0.0
                }
            },
            latency,
            exit_histogram: c.exit_histogram.clone(),
            total_ops: c.total_ops,
            stages_activated: c.stages_activated,
            energy_pj: self.energy_model.total_pj(&c.total_ops, c.stages_activated),
        }
    }
}

/// p50/p99 of a (non-empty) latency window; sorts a copy, which is bounded
/// by [`LATENCY_WINDOW`] entries.
fn window_percentiles(window: &[u64]) -> (Duration, Duration) {
    let mut sorted = window.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let pct = |q: f64| {
        let idx = ((n - 1) as f64 * q).round() as usize;
        Duration::from_nanos(sorted[idx])
    };
    (pct(0.5), pct(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdl_core::network::CdlOutput;

    fn out(exit_stage: usize, macs: u64) -> CdlOutput {
        CdlOutput {
            label: 0,
            exit_stage,
            confidence: 1.0,
            ops: OpCount {
                macs,
                ..OpCount::ZERO
            },
            stages_activated: exit_stage as u64 + 1,
            exited_early: exit_stage == 0,
        }
    }

    #[test]
    fn latency_percentiles() {
        let mut c = Counters::default();
        assert!(c.latency_stats().is_none());
        for i in 1..=100u64 {
            c.record_latency(i * 1000);
        }
        let stats = c.latency_stats().unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.min, Duration::from_nanos(1000));
        assert_eq!(stats.max, Duration::from_nanos(100_000));
        assert_eq!(stats.mean, Duration::from_nanos(50_500));
        assert_eq!(stats.p50, Duration::from_nanos(51_000));
        assert_eq!(stats.p99, Duration::from_nanos(99_000));
    }

    #[test]
    fn latency_window_slides_but_lifetime_stats_persist() {
        let mut c = Counters::default();
        let extra = 10u64;
        // one early outlier, then a window-and-a-bit of larger values
        c.record_latency(5);
        for i in 0..(LATENCY_WINDOW as u64 + extra) {
            c.record_latency(1_000_000 + i);
        }
        let stats = c.latency_stats().unwrap();
        assert_eq!(stats.count, LATENCY_WINDOW as u64 + extra + 1);
        // lifetime min survives even though the outlier left the window
        assert_eq!(stats.min, Duration::from_nanos(5));
        assert_eq!(
            stats.max,
            Duration::from_nanos(1_000_000 + LATENCY_WINDOW as u64 + extra - 1)
        );
        // percentiles see only the most recent LATENCY_WINDOW entries
        assert!(stats.p50 >= Duration::from_nanos(1_000_000));
        // memory stays bounded
        assert_eq!(c.latency_ring.len(), LATENCY_WINDOW);
    }

    #[test]
    fn latency_window_evicts_oldest_samples() {
        let mut c = Counters::default();
        // fill the ring with old samples…
        for _ in 0..LATENCY_WINDOW {
            c.record_latency(1_000);
        }
        // …then exactly LATENCY_WINDOW newer ones: every old sample must
        // have been evicted, so the ring holds only the new value
        for _ in 0..LATENCY_WINDOW {
            c.record_latency(5_000);
        }
        assert_eq!(c.latency_ring.len(), LATENCY_WINDOW);
        assert!(c.latency_ring.iter().all(|&ns| ns == 5_000));
        let stats = c.latency_stats().unwrap();
        assert_eq!(stats.p50, Duration::from_nanos(5_000));
        assert_eq!(stats.p99, Duration::from_nanos(5_000));
        // lifetime accumulators still remember the evicted era
        assert_eq!(stats.min, Duration::from_nanos(1_000));
        assert_eq!(stats.count, 2 * LATENCY_WINDOW as u64);
    }

    fn shard_snapshot(n_requests: u64, exits: Vec<u64>) -> ServerMetrics {
        let rec = Recorder::new(EnergyModel::cmos_45nm());
        let ms = Duration::from_millis(1);
        for _ in 0..n_requests {
            rec.admitted();
            rec.dispatched(BatchCause::Full);
        }
        for (stage, &count) in exits.iter().enumerate() {
            for _ in 0..count {
                rec.batch_completed([(ms, out(stage, 50))].into_iter());
            }
        }
        rec.snapshot(1)
    }

    #[test]
    fn router_metrics_aggregate_replica_sums() {
        let metrics = RouterMetrics {
            shards: vec![
                ShardMetrics {
                    model: "A".into(),
                    placement: PlacementPolicy::RoundRobin,
                    replicas: vec![ReplicaMetrics {
                        routed: 3,
                        metrics: shard_snapshot(3, vec![2, 1]),
                    }],
                },
                ShardMetrics {
                    model: "B".into(),
                    placement: PlacementPolicy::LeastLoaded,
                    replicas: vec![
                        ReplicaMetrics {
                            routed: 2,
                            metrics: shard_snapshot(2, vec![1, 0, 1]),
                        },
                        ReplicaMetrics {
                            routed: 2,
                            metrics: shard_snapshot(2, vec![0, 0, 2]),
                        },
                    ],
                },
            ],
        };
        assert_eq!(metrics.routing_histogram(), vec![3, 4]);
        assert_eq!(metrics.placement_histograms(), vec![vec![3], vec![2, 2]]);
        assert_eq!(metrics.shards[1].routed(), 4);
        assert_eq!(metrics.shards[1].placement_histogram(), vec![2, 2]);
        assert_eq!(metrics.shards[1].submitted(), 4);
        assert_eq!(metrics.shards[1].completed(), 4);
        assert_eq!(metrics.shards[1].exit_histogram(), vec![1, 0, 3]);
        assert_eq!(metrics.submitted(), 7);
        assert_eq!(metrics.completed(), 7);
        assert_eq!(metrics.batches(), 7);
        assert_eq!(metrics.queue_depth(), 3);
        assert_eq!(metrics.exit_histogram(), vec![3, 1, 3]);
        assert_eq!(metrics.total_ops().macs, 7 * 50);
        assert!(metrics.energy_pj() > 0.0);
        let text = metrics.to_string();
        assert!(text.contains("router: 2 models"));
        assert!(text.contains("shard 0 · A"));
        assert!(text.contains("shard 1 · B"));
        assert!(text.contains("least_loaded"));
        assert!(text.contains("replica 1"));
    }

    #[test]
    fn throughput_is_computed_over_the_active_span() {
        let rec = Recorder::new(EnergyModel::cmos_45nm());
        let ms = Duration::from_millis(1);
        // two completion bursts a little apart, then a long idle tail
        for _ in 0..10 {
            rec.admitted();
        }
        rec.dispatched(BatchCause::Full);
        rec.batch_completed((0..5).map(|_| (ms, out(0, 10))));
        std::thread::sleep(Duration::from_millis(20));
        rec.dispatched(BatchCause::Full);
        rec.batch_completed((0..5).map(|_| (ms, out(0, 10))));
        std::thread::sleep(Duration::from_millis(200));
        let snap = rec.snapshot(0);
        // the active span is ~20ms; lifetime uptime is ~220ms. A
        // lifetime-based rate would report ≤ 50 rps here; the span-based
        // rate must be an order of magnitude above it.
        let lifetime_rate = snap.completed as f64 / snap.elapsed.as_secs_f64();
        assert!(
            snap.throughput_rps > 2.0 * lifetime_rate,
            "active-span rate {} should beat lifetime rate {} (idle tail excluded)",
            snap.throughput_rps,
            lifetime_rate
        );
        // and it can never exceed what the span supports: span >= 20ms
        // (two sleeps bound it below), so the rate is bounded above too
        assert!(snap.throughput_rps <= 10.0 / 0.02 + 1.0);
    }

    #[test]
    fn throughput_falls_back_to_uptime_on_degenerate_spans() {
        // nothing completed → 0
        let rec = Recorder::new(EnergyModel::cmos_45nm());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rec.snapshot(0).throughput_rps, 0.0);
        // a single completion instant → completed / uptime (never inf/NaN)
        let rec = Recorder::new(EnergyModel::cmos_45nm());
        rec.admitted();
        rec.batch_completed([(Duration::from_millis(1), out(0, 10))].into_iter());
        std::thread::sleep(Duration::from_millis(5));
        let snap = rec.snapshot(0);
        assert!(snap.throughput_rps.is_finite());
        assert!(snap.throughput_rps > 0.0);
        let uptime_rate = snap.completed as f64 / snap.elapsed.as_secs_f64();
        assert!((snap.throughput_rps - uptime_rate).abs() <= uptime_rate * 0.5);
    }

    #[test]
    fn recorder_aggregates_batches() {
        let rec = Recorder::new(EnergyModel::cmos_45nm());
        rec.admitted();
        rec.admitted();
        rec.admitted();
        rec.rejected();
        rec.dispatched(BatchCause::Full);
        rec.dispatched(BatchCause::Deadline);
        rec.cancelled(1);
        let ms = Duration::from_millis(1);
        rec.batch_completed([(ms, out(0, 100)), (ms, out(2, 300))].into_iter());
        rec.batch_completed([(ms, out(0, 100))].into_iter());
        let snap = rec.snapshot(7);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batches_full, 1);
        assert_eq!(snap.batches_deadline, 1);
        assert_eq!(snap.batch_size_histogram[1], 1);
        assert_eq!(snap.batch_size_histogram[2], 1);
        assert!((snap.mean_batch_size - 1.5).abs() < 1e-12);
        assert_eq!(snap.exit_histogram, vec![2, 0, 1]);
        assert_eq!(snap.total_ops.macs, 500);
        assert_eq!(snap.stages_activated, 1 + 3 + 1);
        assert!(snap.energy_pj > 0.0);
        assert!(snap.latency.is_some());
        // the report renders
        let text = snap.to_string();
        assert!(text.contains("batches"));
        assert!(text.contains("latency"));
    }
}
