//! Server observability: counters, batch-size/exit histograms, latency
//! percentiles and cumulative op/energy accounting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cdl_hw::{EnergyModel, OpCount};

/// Completed-request latencies retained for percentile estimation:
/// **exactly the most recent 65 536 completions** (a fixed-size ring
/// buffer), so a long-running server stays at O(1) memory and snapshot
/// cost. Once the ring is full, every new completion **evicts the oldest
/// retained sample**, so [`LatencyStats::p50`]/[`LatencyStats::p99`]
/// describe only the trailing window; `min`/`mean`/`max`/`count` are exact
/// lifetime accumulators regardless of the window.
pub const LATENCY_WINDOW: usize = 65_536;

/// Latency distribution over completed requests (submit → result).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Completed requests over the server's lifetime.
    pub count: u64,
    /// Fastest request (lifetime).
    pub min: Duration,
    /// Arithmetic mean (lifetime).
    pub mean: Duration,
    /// Median over the most recent [`LATENCY_WINDOW`] completions.
    pub p50: Duration,
    /// 99th percentile over the most recent [`LATENCY_WINDOW`] completions.
    pub p99: Duration,
    /// Slowest request (lifetime).
    pub max: Duration,
}

/// Why the batcher dispatched a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchCause {
    /// `max_batch_size` reached.
    Full,
    /// `max_wait` elapsed since the batch's first request.
    Deadline,
    /// Shutdown flushed a partially formed batch.
    Flush,
}

/// A point-in-time snapshot of a [`crate::Server`]'s counters.
///
/// Obtained from [`crate::Server::metrics`] (live) or returned by
/// [`crate::Server::shutdown`] (final). `Display` renders a compact
/// multi-line report.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Wall-clock since the server started.
    pub elapsed: Duration,
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// `try_submit` calls bounced with [`crate::ServeError::Full`].
    pub rejected: u64,
    /// Requests evaluated and delivered.
    pub completed: u64,
    /// Requests whose [`crate::Pending`] was dropped before evaluation.
    pub cancelled: u64,
    /// Requests that failed (evaluator error / pipeline teardown).
    pub failed: u64,
    /// Admitted requests not yet completed/cancelled/failed.
    pub queue_depth: usize,
    /// Batches evaluated (batches whose live requests were all cancelled
    /// are not counted — nothing was evaluated). A dispatched batch whose
    /// requests carry `k` distinct [`crate::SubmitOptions`] overrides is
    /// evaluated as `k` policy-uniform sub-batches and counted `k` times
    /// here (the `batches_full`/`batches_deadline`/`batches_flushed`
    /// dispatch counters still count it once).
    pub batches: u64,
    /// Batches dispatched because they were full.
    pub batches_full: u64,
    /// Batches dispatched by the `max_wait` deadline.
    pub batches_deadline: u64,
    /// Partial batches flushed by shutdown.
    pub batches_flushed: u64,
    /// `batch_size_histogram[s]` = evaluated batches of size `s` (after
    /// cancellation pruning and override grouping — see
    /// [`ServerMetrics::batches`]).
    pub batch_size_histogram: Vec<u64>,
    /// Mean evaluated batch size.
    pub mean_batch_size: f64,
    /// Completed requests per second of server uptime.
    pub throughput_rps: f64,
    /// Submit→result latency distribution (`None` until something
    /// completed).
    pub latency: Option<LatencyStats>,
    /// `exit_histogram[i]` = completed requests that exited at stage `i`
    /// (last slot = final output layer).
    pub exit_histogram: Vec<u64>,
    /// Cumulative operations of every completed request.
    pub total_ops: OpCount,
    /// Cumulative hardware stages activated by completed requests.
    pub stages_activated: u64,
    /// Cumulative energy of completed requests under the server's
    /// [`EnergyModel`], picojoules.
    pub energy_pj: f64,
}

impl fmt::Display for ServerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "uptime {:.3}s — {} submitted, {} completed ({:.0} req/s), \
             {} cancelled, {} failed, {} rejected, queue depth {}",
            self.elapsed.as_secs_f64(),
            self.submitted,
            self.completed,
            self.throughput_rps,
            self.cancelled,
            self.failed,
            self.rejected,
            self.queue_depth,
        )?;
        writeln!(
            f,
            "batches: {} evaluated (mean size {:.1}; dispatched {} full / {} deadline / {} flush)",
            self.batches,
            self.mean_batch_size,
            self.batches_full,
            self.batches_deadline,
            self.batches_flushed,
        )?;
        let hist: Vec<String> = self
            .batch_size_histogram
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(size, n)| format!("{size}x{n}"))
            .collect();
        writeln!(f, "batch sizes (size x count): {}", hist.join(" "))?;
        if let Some(lat) = &self.latency {
            writeln!(
                f,
                "latency: min {:?} / mean {:?} / p50 {:?} / p99 {:?} / max {:?}",
                lat.min, lat.mean, lat.p50, lat.p99, lat.max,
            )?;
        }
        let exits: Vec<String> = self
            .exit_histogram
            .iter()
            .enumerate()
            .map(|(stage, &n)| format!("stage{stage}:{n}"))
            .collect();
        writeln!(f, "exits: {}", exits.join(" "))?;
        write!(
            f,
            "work: {} compute ops, {} stages activated, {:.2} µJ total ({:.1} nJ/request)",
            self.total_ops.compute_ops(),
            self.stages_activated,
            self.energy_pj / 1e6,
            if self.completed > 0 {
                self.energy_pj / 1e3 / self.completed as f64
            } else {
                0.0
            },
        )
    }
}

/// One shard's slice of a [`RouterMetrics`] snapshot.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// The model name the shard was registered under.
    pub model: String,
    /// Requests the router routed (admitted) to this shard — counted at
    /// the router front-end, so it must equal `metrics.submitted` in any
    /// settled snapshot (a cross-check that nothing was mis-routed).
    pub routed: u64,
    /// The shard's own [`ServerMetrics`] snapshot.
    pub metrics: ServerMetrics,
}

/// A point-in-time snapshot across every shard of a [`crate::Router`]:
/// per-model breakdowns plus aggregate accessors (sums over shards).
///
/// Obtained from [`crate::Router::metrics`] (live) or returned by
/// [`crate::Router::shutdown`] (final). `Display` renders the aggregate
/// line followed by each shard's full report.
#[derive(Debug, Clone)]
pub struct RouterMetrics {
    /// Per-shard metrics, in model registration order ([`crate::ModelId`]
    /// index order).
    pub shards: Vec<ShardMetrics>,
}

impl RouterMetrics {
    /// Requests routed per model, in registration order — the routing
    /// histogram.
    pub fn routing_histogram(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.routed).collect()
    }

    /// Total requests admitted across shards.
    pub fn submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.submitted).sum()
    }

    /// Total `try_submit` rejections across shards.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.rejected).sum()
    }

    /// Total requests evaluated and delivered across shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.completed).sum()
    }

    /// Total requests cancelled across shards.
    pub fn cancelled(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.cancelled).sum()
    }

    /// Total requests failed across shards.
    pub fn failed(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.failed).sum()
    }

    /// Total in-flight requests across shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.metrics.queue_depth).sum()
    }

    /// Total batches evaluated across shards.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.batches).sum()
    }

    /// Element-wise sum of the shards' exit histograms (index `i` =
    /// completed requests that exited at stage `i` on *any* model; models
    /// with fewer stages simply contribute nothing to the deeper slots).
    pub fn exit_histogram(&self) -> Vec<u64> {
        let len = self
            .shards
            .iter()
            .map(|s| s.metrics.exit_histogram.len())
            .max()
            .unwrap_or(0);
        let mut total = vec![0u64; len];
        for shard in &self.shards {
            for (slot, &n) in shard.metrics.exit_histogram.iter().enumerate() {
                total[slot] += n;
            }
        }
        total
    }

    /// Cumulative operations of every completed request across shards.
    pub fn total_ops(&self) -> OpCount {
        self.shards.iter().map(|s| s.metrics.total_ops).sum()
    }

    /// Cumulative hardware stages activated across shards.
    pub fn stages_activated(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.stages_activated).sum()
    }

    /// Cumulative energy across shards, picojoules (each shard priced
    /// under its own [`EnergyModel`]).
    pub fn energy_pj(&self) -> f64 {
        self.shards.iter().map(|s| s.metrics.energy_pj).sum()
    }
}

impl fmt::Display for RouterMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let histogram: Vec<String> = self
            .shards
            .iter()
            .map(|s| format!("{}:{}", s.model, s.routed))
            .collect();
        writeln!(
            f,
            "router: {} models — {} routed ({}), {} completed, {} cancelled, \
             {} failed, {} rejected, {:.2} µJ total",
            self.shards.len(),
            self.submitted(),
            histogram.join(" "),
            self.completed(),
            self.cancelled(),
            self.failed(),
            self.rejected(),
            self.energy_pj() / 1e6,
        )?;
        for (i, shard) in self.shards.iter().enumerate() {
            writeln!(f, "── shard {} · {} ──", i, shard.model)?;
            if i + 1 < self.shards.len() {
                writeln!(f, "{}", shard.metrics)?;
            } else {
                write!(f, "{}", shard.metrics)?;
            }
        }
        Ok(())
    }
}

/// Mutable counters behind one mutex (updated per batch, so contention is
/// amortised over the batch size).
#[derive(Debug, Default)]
struct Counters {
    completed: u64,
    cancelled: u64,
    failed: u64,
    batches_full: u64,
    batches_deadline: u64,
    batches_flushed: u64,
    batch_sizes: Vec<u64>,
    latency_ring: Vec<u64>,
    latency_next: usize,
    latency_count: u64,
    latency_sum_ns: u64,
    latency_min_ns: u64,
    latency_max_ns: u64,
    exit_histogram: Vec<u64>,
    total_ops: OpCount,
    stages_activated: u64,
}

impl Counters {
    fn record_latency(&mut self, ns: u64) {
        self.latency_count += 1;
        self.latency_sum_ns += ns;
        self.latency_max_ns = self.latency_max_ns.max(ns);
        self.latency_min_ns = if self.latency_count == 1 {
            ns
        } else {
            self.latency_min_ns.min(ns)
        };
        if self.latency_ring.len() < LATENCY_WINDOW {
            self.latency_ring.push(ns);
        } else {
            self.latency_ring[self.latency_next] = ns;
            self.latency_next = (self.latency_next + 1) % LATENCY_WINDOW;
        }
    }

    fn latency_stats(&self) -> Option<LatencyStats> {
        if self.latency_count == 0 {
            return None;
        }
        let (p50, p99) = window_percentiles(&self.latency_ring);
        Some(LatencyStats {
            count: self.latency_count,
            min: Duration::from_nanos(self.latency_min_ns),
            mean: Duration::from_nanos(self.latency_sum_ns / self.latency_count),
            p50,
            p99,
            max: Duration::from_nanos(self.latency_max_ns),
        })
    }
}

/// Shared metrics sink for the submit path, the batcher and the workers.
#[derive(Debug)]
pub(crate) struct Recorder {
    started: Instant,
    energy_model: EnergyModel,
    submitted: AtomicU64,
    rejected: AtomicU64,
    counters: Mutex<Counters>,
}

impl Recorder {
    pub(crate) fn new(energy_model: EnergyModel) -> Self {
        Recorder {
            started: Instant::now(),
            energy_model,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            counters: Mutex::new(Counters::default()),
        }
    }

    pub(crate) fn admitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls back an [`Recorder::admitted`] whose send never reached the
    /// pipeline (the request cannot complete, so counting it would leave
    /// `submitted` permanently short of reality the other way).
    pub(crate) fn unadmitted(&self) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dispatched(&self, cause: BatchCause) {
        let mut c = self.counters.lock().unwrap();
        match cause {
            BatchCause::Full => c.batches_full += 1,
            BatchCause::Deadline => c.batches_deadline += 1,
            BatchCause::Flush => c.batches_flushed += 1,
        }
    }

    pub(crate) fn cancelled(&self, n: u64) {
        if n > 0 {
            self.counters.lock().unwrap().cancelled += n;
        }
    }

    pub(crate) fn batch_failed(&self, n: u64) {
        self.counters.lock().unwrap().failed += n;
    }

    /// Records one evaluated batch: per-request latencies, exits and op
    /// accounting.
    pub(crate) fn batch_completed(
        &self,
        outputs: impl Iterator<Item = (Duration, cdl_core::network::CdlOutput)>,
    ) {
        let mut c = self.counters.lock().unwrap();
        let mut size = 0usize;
        for (latency, out) in outputs {
            size += 1;
            c.completed += 1;
            c.record_latency(latency.as_nanos() as u64);
            if c.exit_histogram.len() <= out.exit_stage {
                c.exit_histogram.resize(out.exit_stage + 1, 0);
            }
            c.exit_histogram[out.exit_stage] += 1;
            c.total_ops += out.ops;
            c.stages_activated += out.stages_activated;
        }
        if size > 0 {
            if c.batch_sizes.len() <= size {
                c.batch_sizes.resize(size + 1, 0);
            }
            c.batch_sizes[size] += 1;
        }
    }

    /// Takes a consistent snapshot. `queue_depth` is sampled by the caller
    /// (it lives in the admission gate, not here).
    pub(crate) fn snapshot(&self, queue_depth: usize) -> ServerMetrics {
        let c = self.counters.lock().unwrap();
        let elapsed = self.started.elapsed();
        let batches: u64 = c.batch_sizes.iter().sum();
        let batched_requests: u64 = c
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(size, &n)| size as u64 * n)
            .sum();
        let latency = c.latency_stats();
        ServerMetrics {
            elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: c.completed,
            cancelled: c.cancelled,
            failed: c.failed,
            queue_depth,
            batches,
            batches_full: c.batches_full,
            batches_deadline: c.batches_deadline,
            batches_flushed: c.batches_flushed,
            batch_size_histogram: c.batch_sizes.clone(),
            mean_batch_size: if batches > 0 {
                batched_requests as f64 / batches as f64
            } else {
                0.0
            },
            throughput_rps: if elapsed > Duration::ZERO {
                c.completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            latency,
            exit_histogram: c.exit_histogram.clone(),
            total_ops: c.total_ops,
            stages_activated: c.stages_activated,
            energy_pj: self.energy_model.total_pj(&c.total_ops, c.stages_activated),
        }
    }
}

/// p50/p99 of a (non-empty) latency window; sorts a copy, which is bounded
/// by [`LATENCY_WINDOW`] entries.
fn window_percentiles(window: &[u64]) -> (Duration, Duration) {
    let mut sorted = window.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let pct = |q: f64| {
        let idx = ((n - 1) as f64 * q).round() as usize;
        Duration::from_nanos(sorted[idx])
    };
    (pct(0.5), pct(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdl_core::network::CdlOutput;

    fn out(exit_stage: usize, macs: u64) -> CdlOutput {
        CdlOutput {
            label: 0,
            exit_stage,
            confidence: 1.0,
            ops: OpCount {
                macs,
                ..OpCount::ZERO
            },
            stages_activated: exit_stage as u64 + 1,
            exited_early: exit_stage == 0,
        }
    }

    #[test]
    fn latency_percentiles() {
        let mut c = Counters::default();
        assert!(c.latency_stats().is_none());
        for i in 1..=100u64 {
            c.record_latency(i * 1000);
        }
        let stats = c.latency_stats().unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.min, Duration::from_nanos(1000));
        assert_eq!(stats.max, Duration::from_nanos(100_000));
        assert_eq!(stats.mean, Duration::from_nanos(50_500));
        assert_eq!(stats.p50, Duration::from_nanos(51_000));
        assert_eq!(stats.p99, Duration::from_nanos(99_000));
    }

    #[test]
    fn latency_window_slides_but_lifetime_stats_persist() {
        let mut c = Counters::default();
        let extra = 10u64;
        // one early outlier, then a window-and-a-bit of larger values
        c.record_latency(5);
        for i in 0..(LATENCY_WINDOW as u64 + extra) {
            c.record_latency(1_000_000 + i);
        }
        let stats = c.latency_stats().unwrap();
        assert_eq!(stats.count, LATENCY_WINDOW as u64 + extra + 1);
        // lifetime min survives even though the outlier left the window
        assert_eq!(stats.min, Duration::from_nanos(5));
        assert_eq!(
            stats.max,
            Duration::from_nanos(1_000_000 + LATENCY_WINDOW as u64 + extra - 1)
        );
        // percentiles see only the most recent LATENCY_WINDOW entries
        assert!(stats.p50 >= Duration::from_nanos(1_000_000));
        // memory stays bounded
        assert_eq!(c.latency_ring.len(), LATENCY_WINDOW);
    }

    #[test]
    fn latency_window_evicts_oldest_samples() {
        let mut c = Counters::default();
        // fill the ring with old samples…
        for _ in 0..LATENCY_WINDOW {
            c.record_latency(1_000);
        }
        // …then exactly LATENCY_WINDOW newer ones: every old sample must
        // have been evicted, so the ring holds only the new value
        for _ in 0..LATENCY_WINDOW {
            c.record_latency(5_000);
        }
        assert_eq!(c.latency_ring.len(), LATENCY_WINDOW);
        assert!(c.latency_ring.iter().all(|&ns| ns == 5_000));
        let stats = c.latency_stats().unwrap();
        assert_eq!(stats.p50, Duration::from_nanos(5_000));
        assert_eq!(stats.p99, Duration::from_nanos(5_000));
        // lifetime accumulators still remember the evicted era
        assert_eq!(stats.min, Duration::from_nanos(1_000));
        assert_eq!(stats.count, 2 * LATENCY_WINDOW as u64);
    }

    #[test]
    fn router_metrics_aggregate_shard_sums() {
        let mk = |n_batches: u64, exits: Vec<u64>| {
            let rec = Recorder::new(EnergyModel::cmos_45nm());
            let ms = Duration::from_millis(1);
            for _ in 0..n_batches {
                rec.admitted();
                rec.dispatched(BatchCause::Full);
            }
            for (stage, &count) in exits.iter().enumerate() {
                for _ in 0..count {
                    rec.batch_completed([(ms, out(stage, 50))].into_iter());
                }
            }
            rec.snapshot(1)
        };
        let metrics = RouterMetrics {
            shards: vec![
                ShardMetrics {
                    model: "A".into(),
                    routed: 3,
                    metrics: mk(3, vec![2, 1]),
                },
                ShardMetrics {
                    model: "B".into(),
                    routed: 4,
                    metrics: mk(4, vec![1, 0, 3]),
                },
            ],
        };
        assert_eq!(metrics.routing_histogram(), vec![3, 4]);
        assert_eq!(metrics.submitted(), 7);
        assert_eq!(metrics.completed(), 7);
        assert_eq!(metrics.batches(), 7);
        assert_eq!(metrics.queue_depth(), 2);
        assert_eq!(metrics.exit_histogram(), vec![3, 1, 3]);
        assert_eq!(metrics.total_ops().macs, 7 * 50);
        assert!(metrics.energy_pj() > 0.0);
        let text = metrics.to_string();
        assert!(text.contains("router: 2 models"));
        assert!(text.contains("shard 0 · A"));
        assert!(text.contains("shard 1 · B"));
    }

    #[test]
    fn recorder_aggregates_batches() {
        let rec = Recorder::new(EnergyModel::cmos_45nm());
        rec.admitted();
        rec.admitted();
        rec.admitted();
        rec.rejected();
        rec.dispatched(BatchCause::Full);
        rec.dispatched(BatchCause::Deadline);
        rec.cancelled(1);
        let ms = Duration::from_millis(1);
        rec.batch_completed([(ms, out(0, 100)), (ms, out(2, 300))].into_iter());
        rec.batch_completed([(ms, out(0, 100))].into_iter());
        let snap = rec.snapshot(7);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batches_full, 1);
        assert_eq!(snap.batches_deadline, 1);
        assert_eq!(snap.batch_size_histogram[1], 1);
        assert_eq!(snap.batch_size_histogram[2], 1);
        assert!((snap.mean_batch_size - 1.5).abs() < 1e-12);
        assert_eq!(snap.exit_histogram, vec![2, 0, 1]);
        assert_eq!(snap.total_ops.macs, 500);
        assert_eq!(snap.stages_activated, 1 + 3 + 1);
        assert!(snap.energy_pj > 0.0);
        assert!(snap.latency.is_some());
        // the report renders
        let text = snap.to_string();
        assert!(text.contains("batches"));
        assert!(text.contains("latency"));
    }
}
